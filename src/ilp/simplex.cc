#include "ilp/simplex.h"

#include <cassert>

namespace xicc {

namespace {

/// Dense phase-1 tableau over exact rationals.
///
/// Layout: rows 0..m-1 are constraints, row m is the phase-1 objective
/// (reduced costs). Columns 0..total-1 are variables (structural, then
/// slack, then artificial); column `total` is the rhs.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : cols_(cols), cells_(rows * cols) {}

  Rational& At(size_t row, size_t col) { return cells_[row * cols_ + col]; }
  const Rational& At(size_t row, size_t col) const {
    return cells_[row * cols_ + col];
  }

 private:
  size_t cols_;
  std::vector<Rational> cells_;
};

}  // namespace

LpResult SolveLpFeasibility(const LinearSystem& system, LpTableau* tableau) {
  const size_t m = system.NumConstraints();
  const size_t n = system.NumVariables();

  // Column plan: structural, then one slack per inequality, then artificials
  // for rows whose slack cannot seed the basis.
  std::vector<LpColumnInfo> columns;
  columns.reserve(n + m);
  for (size_t j = 0; j < n; ++j) {
    columns.push_back({LpColumnInfo::Kind::kStructural, static_cast<int>(j)});
  }
  std::vector<int> slack_col(m, -1);
  for (size_t i = 0; i < m; ++i) {
    if (system.constraints()[i].op != RelOp::kEq) {
      slack_col[i] = static_cast<int>(columns.size());
      columns.push_back({LpColumnInfo::Kind::kSlack, static_cast<int>(i)});
    }
  }
  const size_t num_structural_slack = columns.size();

  // A ≤-row with rhs ≥ 0 (or a ≥-row with rhs ≤ 0, which flips to one) can
  // use its slack as the initial basic variable; other rows need an
  // artificial. Decide per row, after rhs normalization.
  struct RowPlan {
    bool negate = false;       // Row multiplied by -1 to get rhs ≥ 0.
    bool use_slack = false;    // Slack seeds the basis.
    int artificial_col = -1;   // Otherwise: its artificial column.
  };
  std::vector<RowPlan> plan(m);
  size_t num_artificial = 0;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    bool rhs_negative = c.rhs.is_negative();
    plan[i].negate = rhs_negative;
    // After negation the slack coefficient is +1 for (kLe, rhs ≥ 0) and for
    // (kGe, rhs < 0); only then can the slack start basic.
    if (c.op == RelOp::kLe) {
      plan[i].use_slack = !rhs_negative;
    } else if (c.op == RelOp::kGe) {
      plan[i].use_slack = rhs_negative;
    }
    if (!plan[i].use_slack) ++num_artificial;
  }
  const size_t total = num_structural_slack + num_artificial;
  const size_t rhs_col = total;

  Tableau tab(m + 1, total + 1);
  std::vector<int> basis(m);
  size_t next_artificial = num_structural_slack;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    int sign = plan[i].negate ? -1 : 1;
    for (const auto& [var, coeff] : c.coeffs) {
      tab.At(i, static_cast<size_t>(var)) =
          Rational(sign < 0 ? -coeff : coeff);
    }
    tab.At(i, rhs_col) = Rational(plan[i].negate ? -c.rhs : c.rhs);
    if (slack_col[i] >= 0) {
      // Original slack sign: +1 for ≤, −1 for ≥; then the row negation.
      int slack_sign = (c.op == RelOp::kLe ? 1 : -1) * sign;
      tab.At(i, static_cast<size_t>(slack_col[i])) = Rational(slack_sign);
    }
    if (plan[i].use_slack) {
      basis[i] = slack_col[i];
    } else {
      plan[i].artificial_col = static_cast<int>(next_artificial);
      tab.At(i, next_artificial) = Rational(1);
      basis[i] = static_cast<int>(next_artificial);
      ++next_artificial;
    }
  }

  // Phase-1 objective: minimize the sum of artificial variables. In tableau
  // form the reduced-cost row is -(sum of artificial rows) over
  // non-artificial columns; the objective value sits in the rhs cell.
  for (size_t j = 0; j <= rhs_col; ++j) {
    if (j >= num_structural_slack && j < total) continue;  // Artificial.
    Rational sum;
    for (size_t i = 0; i < m; ++i) {
      if (!plan[i].use_slack) sum += tab.At(i, j);
    }
    tab.At(m, j) = -sum;
  }

  LpResult result;

  // Simplex iterations with Bland's rule (smallest entering index; ratio
  // ties broken by smallest basic index) — guarantees no cycling.
  for (;;) {
    size_t entering = total;
    for (size_t j = 0; j < total; ++j) {
      if (tab.At(m, j).sign() < 0) {
        entering = j;
        break;
      }
    }
    if (entering == total) break;  // Optimal.

    size_t pivot_row = m;
    Rational best_ratio;
    for (size_t i = 0; i < m; ++i) {
      if (tab.At(i, entering).sign() <= 0) continue;
      Rational ratio = tab.At(i, rhs_col) / tab.At(i, entering);
      if (pivot_row == m || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[pivot_row])) {
        pivot_row = i;
        best_ratio = ratio;
      }
    }
    if (pivot_row == m) break;  // Phase-1 cannot be unbounded; defensive.

    ++result.pivots;
    Rational pivot = tab.At(pivot_row, entering);
    for (size_t j = 0; j <= rhs_col; ++j) {
      Rational& cell = tab.At(pivot_row, j);
      if (!cell.is_zero()) cell /= pivot;
    }
    for (size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      Rational factor = tab.At(i, entering);
      if (factor.is_zero()) continue;
      for (size_t j = 0; j <= rhs_col; ++j) {
        // The tableaus of the cardinality encodings are sparse; skipping
        // zero cells in the pivot row is the single biggest speedup here.
        const Rational& p = tab.At(pivot_row, j);
        if (p.is_zero()) continue;
        tab.At(i, j) -= factor * p;
      }
    }
    basis[pivot_row] = static_cast<int>(entering);
  }

  // Feasible iff the artificial mass is zero (objective value = -tab(m,rhs)).
  if (!tab.At(m, rhs_col).is_zero()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;
  result.values.assign(n, Rational());
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] >= 0 && static_cast<size_t>(basis[i]) < n) {
      result.values[basis[i]] = tab.At(i, rhs_col);
    }
  }

  if (tableau != nullptr) {
    tableau->columns = columns;
    tableau->basis.assign(m, -1);
    tableau->rows.assign(m, std::vector<Rational>(num_structural_slack));
    tableau->rhs.assign(m, Rational());
    for (size_t i = 0; i < m; ++i) {
      // Rows still basic in an artificial are degenerate (value 0) and are
      // not exported for cuts.
      if (static_cast<size_t>(basis[i]) < num_structural_slack) {
        tableau->basis[i] = basis[i];
      }
      for (size_t j = 0; j < num_structural_slack; ++j) {
        tableau->rows[i][j] = tab.At(i, j);
      }
      tableau->rhs[i] = tab.At(i, rhs_col);
    }
  }
  return result;
}

}  // namespace xicc
