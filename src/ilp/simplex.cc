#include "ilp/simplex.h"

#include <cassert>

#include "base/arena.h"
#include "base/faults.h"

namespace xicc {

namespace {

/// Dense phase-1 tableau over the two-tier exact Num, backed by the calling
/// thread's bump arena: a solve allocates one flat cell block, pivots in
/// place (small-tier cells never touch any allocator), and the enclosing
/// ArenaScope reclaims everything wholesale on exit.
///
/// Layout: rows 0..m-1 are constraints, row m is the phase-1 objective
/// (reduced costs). Columns 0..total-1 are variables (structural, then
/// slack, then artificial); column `total` is the rhs.
class Tableau {
 public:
  Tableau(Arena* arena, size_t rows, size_t cols)
      : cols_(cols), cells_(rows * cols, Num(), ArenaAllocator<Num>(arena)) {}

  Num& At(size_t row, size_t col) { return cells_[row * cols_ + col]; }
  const Num& At(size_t row, size_t col) const {
    return cells_[row * cols_ + col];
  }
  Num* Row(size_t row) { return cells_.data() + row * cols_; }
  const Num* Row(size_t row) const { return cells_.data() + row * cols_; }

 private:
  size_t cols_;
  // Tableau is only ever a local inside the solve's own ArenaScope, so the
  // member cannot outlive the scope. xicc-lint: allow(arena-escape)
  ArenaVector<Num> cells_;
};

}  // namespace

LpResult SolveLpFeasibility(const LinearSystem& system, LpTableau* tableau,
                            const StopSignal* stop) {
  const size_t m = system.NumConstraints();
  const size_t n = system.NumVariables();

  // All scratch for this solve — the dense tableau — lives in the thread's
  // arena and dies when this scope closes. Only the exported LpTableau and
  // LpResult (regular vectors) survive.
  ArenaScope scratch(ThisThreadArena());

  // Column plan: structural, then one slack per inequality, then artificials
  // for rows whose slack cannot seed the basis.
  std::vector<LpColumnInfo> columns;
  columns.reserve(n + m);
  for (size_t j = 0; j < n; ++j) {
    columns.push_back(
        {LpColumnInfo::Kind::kStructural, static_cast<int>(j), 0});
  }
  std::vector<int> slack_col(m, -1);
  for (size_t i = 0; i < m; ++i) {
    const RelOp op = system.constraints()[i].op;
    if (op != RelOp::kEq) {
      slack_col[i] = static_cast<int>(columns.size());
      columns.push_back({LpColumnInfo::Kind::kSlack, static_cast<int>(i),
                         op == RelOp::kLe ? -1 : 1});
    }
  }
  const size_t num_structural_slack = columns.size();

  // A ≤-row with rhs ≥ 0 (or a ≥-row with rhs ≤ 0, which flips to one) can
  // use its slack as the initial basic variable; other rows need an
  // artificial. Decide per row, after rhs normalization.
  struct RowPlan {
    bool negate = false;       // Row multiplied by -1 to get rhs ≥ 0.
    bool use_slack = false;    // Slack seeds the basis.
    int artificial_col = -1;   // Otherwise: its artificial column.
  };
  std::vector<RowPlan> plan(m);
  size_t num_artificial = 0;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    bool rhs_negative = c.rhs.sign() < 0;
    plan[i].negate = rhs_negative;
    // After negation the slack coefficient is +1 for (kLe, rhs ≥ 0) and for
    // (kGe, rhs < 0); only then can the slack start basic.
    if (c.op == RelOp::kLe) {
      plan[i].use_slack = !rhs_negative;
    } else if (c.op == RelOp::kGe) {
      plan[i].use_slack = rhs_negative;
    }
    if (!plan[i].use_slack) ++num_artificial;
  }
  const size_t total = num_structural_slack + num_artificial;
  const size_t rhs_col = total;

  Tableau tab(&ThisThreadArena(), m + 1, total + 1);
  std::vector<int> basis(m);
  size_t next_artificial = num_structural_slack;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    int sign = plan[i].negate ? -1 : 1;
    for (const auto& [var, coeff] : c.coeffs) {
      tab.At(i, static_cast<size_t>(var)) = sign < 0 ? -coeff : coeff;
    }
    tab.At(i, rhs_col) = plan[i].negate ? -c.rhs : c.rhs;
    if (slack_col[i] >= 0) {
      // Original slack sign: +1 for ≤, −1 for ≥; then the row negation.
      int slack_sign = (c.op == RelOp::kLe ? 1 : -1) * sign;
      tab.At(i, static_cast<size_t>(slack_col[i])) = Num(slack_sign);
    }
    if (plan[i].use_slack) {
      basis[i] = slack_col[i];
    } else {
      plan[i].artificial_col = static_cast<int>(next_artificial);
      tab.At(i, next_artificial) = Num(1);
      basis[i] = static_cast<int>(next_artificial);
      ++next_artificial;
    }
  }

  // Phase-1 objective: minimize the sum of artificial variables. In tableau
  // form the reduced-cost row is -(sum of artificial rows) over
  // non-artificial columns; the objective value sits in the rhs cell.
  for (size_t j = 0; j <= rhs_col; ++j) {
    if (j >= num_structural_slack && j < total) continue;  // Artificial.
    Num sum;
    for (size_t i = 0; i < m; ++i) {
      if (!plan[i].use_slack) sum += tab.At(i, j);
    }
    tab.At(m, j) = -sum;
  }

  LpResult result;

  // Simplex iterations with Bland's rule (smallest entering index; ratio
  // ties broken by smallest basic index) — guarantees no cycling.
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    // Bounded-cost stop poll: every 64 pivots, two loads and (when a
    // deadline is armed) one clock read — noise next to a dense pivot.
    if (stop != nullptr && (result.pivots & 63) == 0 && stop->ShouldStop()) {
      result.aborted = true;
      result.feasible = false;
      return result;
    }
    size_t entering = total;
    for (size_t j = 0; j < total; ++j) {
      if (tab.At(m, j).sign() < 0) {
        entering = j;
        break;
      }
    }
    if (entering == total) break;  // Optimal.

    size_t pivot_row = m;
    Num best_ratio;
    for (size_t i = 0; i < m; ++i) {
      if (tab.At(i, entering).sign() <= 0) continue;
      Num ratio = tab.At(i, rhs_col) / tab.At(i, entering);
      if (pivot_row == m || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[pivot_row])) {
        pivot_row = i;
        best_ratio = ratio;
      }
    }
    if (pivot_row == m) break;  // Phase-1 cannot be unbounded; defensive.

    ++result.pivots;
    Num* pivot_cells = tab.Row(pivot_row);
    const Num pivot = pivot_cells[entering];
    for (size_t j = 0; j <= rhs_col; ++j) {
      Num& cell = pivot_cells[j];
      if (!cell.is_zero()) cell /= pivot;
    }
    for (size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      Num* cells = tab.Row(i);
      const Num factor = cells[entering];
      if (factor.is_zero()) continue;
      for (size_t j = 0; j <= rhs_col; ++j) {
        // The tableaus of the cardinality encodings are sparse; skipping
        // zero cells in the pivot row is the single biggest speedup here.
        const Num& p = pivot_cells[j];
        if (p.is_zero()) continue;
        cells[j] -= factor * p;
      }
    }
    basis[pivot_row] = static_cast<int>(entering);
  }

  // Feasible iff the artificial mass is zero (objective value = -tab(m,rhs)).
  if (!tab.At(m, rhs_col).is_zero()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;

  // Drive degenerate artificials (basic at value 0 — routine for equality
  // rows) out of the basis: pivot on any nonzero structural/slack entry in
  // the row. The pivot is at rhs = 0, so no value or feasibility changes —
  // it only makes the exported basis artificial-free, which the dual-simplex
  // warm re-solve requires. A row with no such entry is a redundant
  // constraint and keeps its artificial (basis[i] = -1 below).
  if (tableau != nullptr) {
    for (size_t i = 0; i < m; ++i) {
      if (static_cast<size_t>(basis[i]) < num_structural_slack) continue;
      size_t entering = num_structural_slack;
      for (size_t j = 0; j < num_structural_slack; ++j) {
        if (!tab.At(i, j).is_zero()) {
          entering = j;
          break;
        }
      }
      if (entering == num_structural_slack) continue;  // Redundant row.
      ++result.pivots;
      Num* pivot_cells = tab.Row(i);
      const Num pivot = pivot_cells[entering];
      for (size_t j = 0; j <= rhs_col; ++j) {
        Num& cell = pivot_cells[j];
        if (!cell.is_zero()) cell /= pivot;
      }
      for (size_t r = 0; r <= m; ++r) {
        if (r == i) continue;
        Num* cells = tab.Row(r);
        const Num factor = cells[entering];
        if (factor.is_zero()) continue;
        for (size_t j = 0; j <= rhs_col; ++j) {
          const Num& p = pivot_cells[j];
          if (p.is_zero()) continue;
          cells[j] -= factor * p;
        }
      }
      basis[i] = static_cast<int>(entering);
    }
  }
  result.values.assign(n, Num());
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] >= 0 && static_cast<size_t>(basis[i]) < n) {
      result.values[basis[i]] = tab.At(i, rhs_col);
    }
  }

  if (tableau != nullptr) {
    tableau->columns = columns;
    tableau->basis.assign(m, -1);
    tableau->rows.assign(m, std::vector<Num>(num_structural_slack));
    tableau->rhs.assign(m, Num());
    tableau->num_constraints = m;
    for (size_t i = 0; i < m; ++i) {
      // Rows still basic in an artificial are degenerate (value 0) and are
      // not exported for cuts; they also make the basis unusable for warm
      // re-solves (the artificial column is not exported).
      if (static_cast<size_t>(basis[i]) < num_structural_slack) {
        tableau->basis[i] = basis[i];
      }
      for (size_t j = 0; j < num_structural_slack; ++j) {
        tableau->rows[i][j] = tab.At(i, j);
      }
      tableau->rhs[i] = tab.At(i, rhs_col);
    }
  }
  return result;
}

WarmResult ReSolveLpFeasibilityDual(const LinearSystem& system,
                                    LpTableau* tableau,
                                    const StopSignal* stop) {
  WarmResult out;
  const size_t n = system.NumVariables();
  const size_t m_new = system.NumConstraints();

  // Usability: the parent basis must be artificial-free (artificials are not
  // exported, so a row basic in one cannot be re-seeded), the variable set
  // must not have grown since the parent solve, and the parent must actually
  // be a prefix of `system`.
  if (tableau->num_constraints > m_new) return out;
  size_t num_structural = 0;
  for (const LpColumnInfo& column : tableau->columns) {
    if (column.kind == LpColumnInfo::Kind::kStructural) ++num_structural;
  }
  if (num_structural != n) return out;
  for (int b : tableau->basis) {
    if (b < 0) return out;
  }

  const size_t old_rows = tableau->rows.size();
  const size_t old_cols = tableau->columns.size();

  // One working row per parent row, plus one per appended inequality and two
  // per appended equality (split into its ≤ and ≥ halves so each half gets a
  // basic slack — dual simplex needs a basic variable per row).
  struct NewRow {
    size_t constraint;  // Index into system.constraints().
    int sub_sign;       // -1: s = rhs − expr; +1: s = expr − rhs.
  };
  std::vector<NewRow> appended;
  for (size_t k = tableau->num_constraints; k < m_new; ++k) {
    const RelOp op = system.constraints()[k].op;
    if (op == RelOp::kLe || op == RelOp::kEq) appended.push_back({k, -1});
    if (op == RelOp::kGe || op == RelOp::kEq) appended.push_back({k, 1});
  }
  const size_t rows = old_rows + appended.size();
  const size_t total = old_cols + appended.size();
  const size_t rhs_col = total;

  // The private working copy pivots in arena scratch; only the final fold-
  // back below touches the caller's (regular-vector) tableau.
  ArenaScope scratch(ThisThreadArena());
  Tableau tab(&ThisThreadArena(), rows, total + 1);
  std::vector<int> basis(tableau->basis.begin(), tableau->basis.end());
  basis.reserve(rows);
  for (size_t i = 0; i < old_rows; ++i) {
    Num* cells = tab.Row(i);
    const std::vector<Num>& src = tableau->rows[i];
    for (size_t j = 0; j < old_cols; ++j) cells[j] = src[j];
    cells[rhs_col] = tableau->rhs[i];
  }

  for (size_t r = 0; r < appended.size(); ++r) {
    const size_t row = old_rows + r;
    const size_t slack = old_cols + r;
    const NewRow& plan = appended[r];
    const LinearConstraint& c = system.constraints()[plan.constraint];
    // ≤-half: expr + s = rhs. ≥-half, negated so the surplus comes out +1:
    // −expr + s = −rhs.
    const int sign = plan.sub_sign < 0 ? 1 : -1;
    Num* cells = tab.Row(row);
    for (const auto& [var, coeff] : c.coeffs) {
      cells[static_cast<size_t>(var)] = sign < 0 ? -coeff : coeff;
    }
    cells[slack] = Num(1);
    cells[rhs_col] = sign < 0 ? -c.rhs : c.rhs;
    // Price out the parent's basic variables so basic columns stay unit.
    // Parent rows carry zeros in the fresh slack columns, so elimination
    // never spills into other appended rows.
    for (size_t i = 0; i < old_rows; ++i) {
      const Num factor = cells[static_cast<size_t>(basis[i])];
      if (factor.is_zero()) continue;
      const Num* pivot_row = tab.Row(i);
      for (size_t j = 0; j <= rhs_col; ++j) {
        if (pivot_row[j].is_zero()) continue;
        cells[j] -= factor * pivot_row[j];
      }
    }
    basis.push_back(static_cast<int>(slack));
  }

  // Dual simplex with Bland's rule: leaving row = infeasible row whose basic
  // column index is smallest; entering = smallest column with a negative
  // entry in that row. The pivot cap is a defensive backstop — tripping it
  // reports kPivotLimit and the caller re-solves cold, so it can only cost
  // time, never correctness.
  const size_t pivot_cap = 200 + 16 * rows;
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    if (stop != nullptr && (out.lp.pivots & 63) == 0 && stop->ShouldStop()) {
      out.status = WarmStatus::kAborted;
      return out;
    }
    int leaving = -1;
    for (size_t i = 0; i < rows; ++i) {
      if (tab.At(i, rhs_col).sign() < 0 &&
          (leaving < 0 || basis[i] < basis[leaving])) {
        leaving = static_cast<int>(i);
      }
    }
    if (leaving < 0) break;  // Primal feasible again.

    Num* pivot_cells = tab.Row(leaving);
    size_t entering = total;
    for (size_t j = 0; j < total; ++j) {
      if (pivot_cells[j].sign() < 0) {
        entering = j;
        break;
      }
    }
    if (entering == total) {
      // Certificate: Σ (nonnegative coeffs)·(nonnegative vars) = rhs < 0.
      out.status = WarmStatus::kOk;
      out.lp.feasible = false;
      return out;
    }
    if (out.lp.pivots >= pivot_cap) {
      out.status = WarmStatus::kPivotLimit;
      return out;
    }
    ++out.lp.pivots;

    const Num pivot = pivot_cells[entering];
    for (size_t j = 0; j <= rhs_col; ++j) {
      Num& cell = pivot_cells[j];
      if (!cell.is_zero()) cell /= pivot;
    }
    for (size_t i = 0; i < rows; ++i) {
      if (i == static_cast<size_t>(leaving)) continue;
      Num* cells = tab.Row(i);
      const Num factor = cells[entering];
      if (factor.is_zero()) continue;
      for (size_t j = 0; j <= rhs_col; ++j) {
        if (pivot_cells[j].is_zero()) continue;
        cells[j] -= factor * pivot_cells[j];
      }
    }
    basis[leaving] = static_cast<int>(entering);
  }

  out.status = WarmStatus::kOk;
  out.lp.feasible = true;
  out.lp.values.assign(n, Num());
  for (size_t i = 0; i < rows; ++i) {
    if (static_cast<size_t>(basis[i]) < n) {
      out.lp.values[basis[i]] = tab.At(i, rhs_col);
    }
  }

  // Fold the extended state back into `tableau` so the next warm re-solve
  // (or a Gomory derivation) starts from here. Copies, not moves — the
  // tableau's vectors must outlive this solve's arena scope.
  for (const NewRow& plan : appended) {
    tableau->columns.push_back({LpColumnInfo::Kind::kSlack,
                                static_cast<int>(plan.constraint),
                                plan.sub_sign});
  }
  tableau->basis = std::move(basis);
  tableau->rhs.resize(rows);
  tableau->rows.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    tableau->rhs[i] = tab.At(i, rhs_col);
    std::vector<Num>& dst = tableau->rows[i];
    dst.resize(total);
    const Num* cells = tab.Row(i);
    for (size_t j = 0; j < total; ++j) dst[j] = cells[j];
  }
  tableau->num_constraints = m_new;
  return out;
}

WarmResult ReSolveLpFeasibilityDualInPlace(const LinearSystem& system,
                                           LpTableau* tableau,
                                           const StopSignal* stop) {
  WarmResult out;
  const size_t n = system.NumVariables();
  const size_t m_new = system.NumConstraints();

  // Usability gates identical to the copying variant; nothing has been
  // touched yet, so kUnusableBasis leaves the tableau intact.
  if (tableau->num_constraints > m_new) return out;
  size_t num_structural = 0;
  for (const LpColumnInfo& column : tableau->columns) {
    if (column.kind == LpColumnInfo::Kind::kStructural) ++num_structural;
  }
  if (num_structural != n) return out;
  for (int b : tableau->basis) {
    if (b < 0) return out;
  }

  const size_t old_rows = tableau->rows.size();
  const size_t old_cols = tableau->columns.size();

  struct NewRow {
    size_t constraint;
    int sub_sign;
  };
  std::vector<NewRow> appended;
  for (size_t k = tableau->num_constraints; k < m_new; ++k) {
    const RelOp op = system.constraints()[k].op;
    if (op == RelOp::kLe || op == RelOp::kEq) appended.push_back({k, -1});
    if (op == RelOp::kGe || op == RelOp::kEq) appended.push_back({k, 1});
  }
  const size_t rows = old_rows + appended.size();
  const size_t total = old_cols + appended.size();

  // Extend the tableau in place: zero cells for the fresh slack columns in
  // the parent rows (resize default-constructs zeros), then one slack-basic
  // row per appended half, priced out against the parent basis. Parent rows
  // carry zeros in the fresh slack columns, so elimination never spills into
  // other appended rows — construction only reads rows < old_rows, which
  // stay untouched until the pivot loop below.
  for (size_t i = 0; i < old_rows; ++i) tableau->rows[i].resize(total);
  tableau->rows.resize(rows);
  tableau->rhs.resize(rows);
  std::vector<int>& basis = tableau->basis;
  basis.reserve(rows);
  for (size_t r = 0; r < appended.size(); ++r) {
    const size_t row = old_rows + r;
    const size_t slack = old_cols + r;
    const NewRow& plan = appended[r];
    const LinearConstraint& c = system.constraints()[plan.constraint];
    const int sign = plan.sub_sign < 0 ? 1 : -1;
    std::vector<Num>& cells = tableau->rows[row];
    cells.assign(total, Num());
    for (const auto& [var, coeff] : c.coeffs) {
      cells[static_cast<size_t>(var)] = sign < 0 ? -coeff : coeff;
    }
    cells[slack] = Num(1);
    tableau->rhs[row] = sign < 0 ? -c.rhs : c.rhs;
    for (size_t i = 0; i < old_rows; ++i) {
      const Num factor = cells[static_cast<size_t>(basis[i])];
      if (factor.is_zero()) continue;
      const std::vector<Num>& pivot_row = tableau->rows[i];
      for (size_t j = 0; j < total; ++j) {
        if (pivot_row[j].is_zero()) continue;
        cells[j] -= factor * pivot_row[j];
      }
      if (!tableau->rhs[i].is_zero()) {
        tableau->rhs[row] -= factor * tableau->rhs[i];
      }
    }
    basis.push_back(static_cast<int>(slack));
    tableau->columns.push_back({LpColumnInfo::Kind::kSlack,
                                static_cast<int>(plan.constraint),
                                plan.sub_sign});
  }
  tableau->num_constraints = m_new;

  // Dual simplex with Bland's rule, pivoting the tableau's own rows.
  const size_t pivot_cap = 200 + 16 * rows;
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    // Aborting leaves the tableau mid-pivot — same discard contract as
    // kPivotLimit, already honored by every in-place caller.
    if (stop != nullptr && (out.lp.pivots & 63) == 0 && stop->ShouldStop()) {
      out.status = WarmStatus::kAborted;
      return out;
    }
    int leaving = -1;
    for (size_t i = 0; i < rows; ++i) {
      if (tableau->rhs[i].sign() < 0 &&
          (leaving < 0 || basis[i] < basis[leaving])) {
        leaving = static_cast<int>(i);
      }
    }
    if (leaving < 0) break;  // Primal feasible again.

    std::vector<Num>& pivot_cells = tableau->rows[leaving];
    size_t entering = total;
    for (size_t j = 0; j < total; ++j) {
      if (pivot_cells[j].sign() < 0) {
        entering = j;
        break;
      }
    }
    if (entering == total) {
      // Exact certificate; the half-pivoted tableau is the caller's to
      // discard, per the in-place contract.
      out.status = WarmStatus::kOk;
      out.lp.feasible = false;
      return out;
    }
    if (out.lp.pivots >= pivot_cap) {
      out.status = WarmStatus::kPivotLimit;
      return out;
    }
    ++out.lp.pivots;

    const Num pivot = pivot_cells[entering];
    for (size_t j = 0; j < total; ++j) {
      Num& cell = pivot_cells[j];
      if (!cell.is_zero()) cell /= pivot;
    }
    if (!tableau->rhs[leaving].is_zero()) tableau->rhs[leaving] /= pivot;
    for (size_t i = 0; i < rows; ++i) {
      if (i == static_cast<size_t>(leaving)) continue;
      std::vector<Num>& cells = tableau->rows[i];
      const Num factor = cells[entering];
      if (factor.is_zero()) continue;
      for (size_t j = 0; j < total; ++j) {
        if (pivot_cells[j].is_zero()) continue;
        cells[j] -= factor * pivot_cells[j];
      }
      if (!tableau->rhs[leaving].is_zero()) {
        tableau->rhs[i] -= factor * tableau->rhs[leaving];
      }
    }
    basis[leaving] = static_cast<int>(entering);
  }

  out.status = WarmStatus::kOk;
  out.lp.feasible = true;
  out.lp.values.assign(n, Num());
  for (size_t i = 0; i < rows; ++i) {
    if (static_cast<size_t>(basis[i]) < n) {
      out.lp.values[basis[i]] = tableau->rhs[i];
    }
  }
  return out;
}

}  // namespace xicc
