#include "ilp/simplex.h"

#include <cassert>
#include <utility>
#include <vector>

#include "base/arena.h"
#include "base/debug.h"
#include "base/faults.h"
#include "ilp/audit.h"

namespace xicc {

namespace {

using internal::Word;

thread_local LpPricingConfig g_lp_pricing_config;

// ---------------------------------------------------------------------------
// Dense reference kernel (SolveLpFeasibilityDenseBland).
// ---------------------------------------------------------------------------

/// Dense phase-1 tableau over the two-tier exact Num, backed by the calling
/// thread's bump arena: a solve allocates one flat cell block, pivots in
/// place (small-tier cells never touch any allocator), and the enclosing
/// ArenaScope reclaims everything wholesale on exit.
///
/// Layout: rows 0..m-1 are constraints, row m is the phase-1 objective
/// (reduced costs). Columns 0..total-1 are variables (structural, then
/// slack, then artificial); column `total` is the rhs.
class DenseTableau {
 public:
  DenseTableau(Arena* arena, size_t rows, size_t cols)
      : cols_(cols), cells_(rows * cols, Num(), ArenaAllocator<Num>(arena)) {}

  Num& At(size_t row, size_t col) { return cells_[row * cols_ + col]; }
  const Num& At(size_t row, size_t col) const {
    return cells_[row * cols_ + col];
  }
  Num* Row(size_t row) { return cells_.data() + row * cols_; }
  const Num* Row(size_t row) const { return cells_.data() + row * cols_; }

 private:
  size_t cols_;
  // DenseTableau is only ever a local inside the solve's own ArenaScope, so
  // the member cannot outlive the scope. xicc-lint: allow(arena-escape)
  ArenaVector<Num> cells_;
};

// ---------------------------------------------------------------------------
// Sparse pricing-driven kernel (SolveLpFeasibility).
// ---------------------------------------------------------------------------

/// Sparse phase-1 working state. Same row/column layout as DenseTableau
/// (rows 0..m-1 constraints, row m the objective; column `total` = cols-1 is
/// the rhs), but with two departures that make a pivot cost O(nnz) instead
/// of O(m·n):
///
///  - Each row carries a sorted packed list of its nonzero columns (the rhs
///    cell is tracked outside the supports). Pivot row-updates and entering
///    selection walk supports; elimination merges the pivot row's support
///    into the target's incrementally, counting fill-in.
///
///  - Two arithmetic lanes per row. The fast lane (default) keeps canonical
///    small-tier word pairs in structure-of-arrays numerator/denominator
///    arrays and runs the exact SmallAdd/SmallMul primitives Num's small
///    tier uses, so a fast cell is bit-identical to the Num it stands for
///    and stays branch-light (no tier dispatch per cell). The first op whose
///    result leaves the small domain promotes the whole row — sticky for the
///    rest of the solve — to an exact Num lane, and the op re-runs there.
class SparseKernel {
 public:
  SparseKernel(Arena* arena, size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        nums_(rows * cols, 0, ArenaAllocator<Word>(arena)),
        dens_(rows * cols, 1, ArenaAllocator<Word>(arena)),
        exact_(rows),
        support_(rows) {}

  size_t rows() const { return rows_; }
  std::vector<int>& support(size_t i) { return support_[i]; }
  const std::vector<int>& support(size_t i) const { return support_[i]; }
  bool IsFast(size_t i) const { return exact_[i].empty(); }

  bool IsZero(size_t i, size_t j) const {
    return exact_[i].empty() ? nums_[i * cols_ + j] == 0
                             : exact_[i][j].is_zero();
  }
  int SignAt(size_t i, size_t j) const {
    if (exact_[i].empty()) {
      const Word n = nums_[i * cols_ + j];
      return n < 0 ? -1 : (n > 0 ? 1 : 0);
    }
    return exact_[i][j].sign();
  }
  Num Get(size_t i, size_t j) const {
    if (exact_[i].empty()) {
      return Num::FromCanonicalWords(nums_[i * cols_ + j],
                                     dens_[i * cols_ + j]);
    }
    return exact_[i][j];
  }

  /// Construction-time store. Rows start fast; only a coefficient outside
  /// the small domain promotes here.
  void InitCell(size_t i, size_t j, const Num& value, LpResult* stats) {
    if (exact_[i].empty()) {
      Word n = 0;
      Word d = 1;
      if (value.SmallWords(&n, &d)) {
        NumRow(i)[j] = n;
        DenRow(i)[j] = d;
        return;
      }
      PromoteRow(i, stats);
    }
    exact_[i][j] = value;
  }

  /// One full pivot at (pivot_row, entering): normalize the pivot row, then
  /// eliminate the entering column from every other row (objective row
  /// included), walking only the pivot row's support.
  void PivotApply(size_t pivot_row, size_t entering, LpResult* stats) {
    ScaleRow(pivot_row, Get(pivot_row, entering), stats);
    for (size_t i = 0; i < rows_; ++i) {
      if (i == pivot_row) continue;
      if (IsZero(i, entering)) continue;
      const Num factor = Get(i, entering);
      AxpyRow(i, pivot_row, factor, stats);
    }
  }

  /// Support + canonical-word invariants of every row, for XICC_DCHECK_AUDIT
  /// at solve checkpoints.
  std::vector<std::string> AuditSupports() const {
    std::vector<std::string> out;
    std::vector<Num> dense(cols_);
    for (size_t i = 0; i < rows_; ++i) {
      for (size_t j = 0; j < cols_; ++j) dense[j] = Get(i, j);
      std::vector<std::string> row_out =
          AuditRowSupport(dense, cols_ - 1, support_[i], i);
      out.insert(out.end(), row_out.begin(), row_out.end());
    }
    return out;
  }

 private:
  Word* NumRow(size_t i) { return nums_.data() + i * cols_; }
  Word* DenRow(size_t i) { return dens_.data() + i * cols_; }

  /// Whole-row fast→exact promotion; sticky for the rest of the solve.
  void PromoteRow(size_t i, LpResult* stats) {
    std::vector<Num>& cells = exact_[i];
    cells.reserve(cols_);
    const Word* n = NumRow(i);
    const Word* d = DenRow(i);
    for (size_t j = 0; j < cols_; ++j) {
      cells.push_back(Num::FromCanonicalWords(n[j], d[j]));
    }
    ++stats->fast_row_promotions;
  }

  /// row /= pivot over the row's support and rhs. Support cells are nonzero
  /// by invariant, so the fast path runs no zero tests at all.
  void ScaleRow(size_t i, const Num& pivot, LpResult* stats) {
    const std::vector<int>& sup = support_[i];
    const size_t rhs = cols_ - 1;
    size_t k = 0;  // Support cells [0, k) (then the rhs) already scaled.
    Word pn = 0;
    Word pd = 1;
    if (exact_[i].empty() && pivot.SmallWords(&pn, &pd)) {
      // The reciprocal of a canonical word pair is canonical once the sign
      // moves to the numerator (pn is never INT64_MIN, so -pn is safe).
      const Word inv_n = pn < 0 ? -pd : pd;
      const Word inv_d = pn < 0 ? -pn : pn;
      Word* nr = NumRow(i);
      Word* dr = DenRow(i);
      for (; k <= sup.size(); ++k) {
        const size_t j = k < sup.size() ? static_cast<size_t>(sup[k]) : rhs;
        Word n = 0;
        Word d = 1;
        if (!internal::SmallMul(nr[j], dr[j], inv_n, inv_d, &n, &d)) break;
        XICC_DCHECK_AUDIT(AuditFastLaneOp('*', nr[j], dr[j], inv_n, inv_d,
                                          n, d));
        nr[j] = n;
        dr[j] = d;
      }
      if (k > sup.size()) return;
      // Overflow at support cell k (or the rhs): cells before k are already
      // scaled, so promote and finish from k in the exact lane.
      PromoteRow(i, stats);
    }
    std::vector<Num>& cells = exact_[i];
    for (; k <= sup.size(); ++k) {
      const size_t j = k < sup.size() ? static_cast<size_t>(sup[k]) : rhs;
      if (!cells[j].is_zero()) cells[j] /= pivot;
    }
  }

  /// row_i -= factor · row_p over row_p's support (+ rhs), then merges the
  /// supports and counts fill-in.
  void AxpyRow(size_t i, size_t p, const Num& factor, LpResult* stats) {
    const std::vector<int>& psup = support_[p];
    const size_t rhs = cols_ - 1;
    size_t k = 0;  // Support cells [0, k) (then the rhs) already updated.
    Word fn = 0;
    Word fd = 1;
    if (exact_[i].empty() && exact_[p].empty() &&
        factor.SmallWords(&fn, &fd)) {
      Word* ni = NumRow(i);
      Word* di = DenRow(i);
      const Word* np = NumRow(p);
      const Word* dp = DenRow(p);
      for (; k <= psup.size(); ++k) {
        const size_t j = k < psup.size() ? static_cast<size_t>(psup[k]) : rhs;
        Word tn = 0;
        Word td = 1;
        Word n = 0;
        Word d = 1;
        // SmallMul never yields INT64_MIN, so -tn below stays canonical.
        if (!internal::SmallMul(fn, fd, np[j], dp[j], &tn, &td)) break;
        if (!internal::SmallAdd(ni[j], di[j], -tn, td, &n, &d)) break;
        XICC_DCHECK_AUDIT(AuditFastLaneOp('*', fn, fd, np[j], dp[j], tn, td));
        XICC_DCHECK_AUDIT(AuditFastLaneOp('+', ni[j], di[j], -tn, td, n, d));
        ni[j] = n;
        di[j] = d;
      }
      if (k > psup.size()) {
        MergeSupport(i, p, stats);
        return;
      }
      PromoteRow(i, stats);
    } else if (exact_[i].empty()) {
      // Pivot row exact or factor big: the target leaves the fast lane too.
      PromoteRow(i, stats);
    }
    std::vector<Num>& cells = exact_[i];
    for (; k <= psup.size(); ++k) {
      const size_t j = k < psup.size() ? static_cast<size_t>(psup[k]) : rhs;
      const Num pj = Get(p, j);
      if (pj.is_zero()) continue;  // Only the rhs cell can be zero here.
      cells[j] -= factor * pj;
    }
    MergeSupport(i, p, stats);
  }

  /// support_i := sorted union of support_i and support_p minus cells that
  /// cancelled to zero. Cells only in support_i were untouched by the axpy
  /// and stay without a test; cells from support_p are tested, and the ones
  /// absent from support_i that came out nonzero are fill-in.
  void MergeSupport(size_t i, size_t p, LpResult* stats) {
    const std::vector<int>& a = support_[i];
    const std::vector<int>& b = support_[p];
    merge_scratch_.clear();
    size_t x = 0;
    size_t y = 0;
    while (x < a.size() || y < b.size()) {
      if (y >= b.size() || (x < a.size() && a[x] < b[y])) {
        merge_scratch_.push_back(a[x++]);
        continue;
      }
      const bool fresh = x >= a.size() || a[x] > b[y];
      const int col = b[y++];
      if (!fresh) ++x;
      if (!IsZero(i, static_cast<size_t>(col))) {
        merge_scratch_.push_back(col);
        if (fresh) ++stats->fill_in;
      }
    }
    support_[i].swap(merge_scratch_);
  }

  size_t rows_;
  size_t cols_;
  // SparseKernel is only ever a local inside the solve's own ArenaScope, so
  // the members cannot outlive the scope. xicc-lint: allow(arena-escape)
  ArenaVector<Word> nums_;
  // xicc-lint: allow(arena-escape)
  ArenaVector<Word> dens_;
  /// Exact lane; an empty inner vector means the row is still fast. Heap
  /// storage — promotions are rare and must survive arena-free pivoting.
  std::vector<std::vector<Num>> exact_;
  std::vector<std::vector<int>> support_;
  std::vector<int> merge_scratch_;
};

// ---------------------------------------------------------------------------
// Sparse overlay for the dual (warm) re-solves.
// ---------------------------------------------------------------------------

/// Transient sorted nonzero-column lists over caller-owned dense Num rows —
/// the arena working copy for the copying re-solve, the LpTableau's own rows
/// for the in-place one (which is how the in-place variant keeps its no-copy
/// advantage). Built once at entry for the cost of a single dense sweep,
/// then maintained incrementally so every dual pivot touches only nonzeros.
/// The rhs cells live outside the supports, one pointer per row.
class SparseDualView {
 public:
  SparseDualView(size_t rows, size_t width)
      : width_(width), rows_(rows), rhs_(rows), support_(rows) {}

  void Attach(size_t i, Num* cells, Num* rhs) {
    rows_[i] = cells;
    rhs_[i] = rhs;
  }

  /// Dense sweep building row i's support from scratch.
  void BuildSupport(size_t i) {
    std::vector<int>& sup = support_[i];
    sup.clear();
    const Num* cells = rows_[i];
    for (size_t j = 0; j < width_; ++j) {
      if (!cells[j].is_zero()) sup.push_back(static_cast<int>(j));
    }
  }

  const std::vector<int>& support(size_t i) const { return support_[i]; }
  size_t fill_in() const { return fill_in_; }
  size_t NnzCells() const {
    size_t nnz = 0;
    for (const std::vector<int>& sup : support_) nnz += sup.size();
    return nnz;
  }

  /// target -= factor · source over source's support (+ rhs), merging
  /// supports incrementally.
  void Axpy(size_t target, size_t source, const Num& factor) {
    Num* t = rows_[target];
    const Num* s = rows_[source];
    for (int j : support_[source]) {
      t[static_cast<size_t>(j)] -= factor * s[static_cast<size_t>(j)];
    }
    if (!rhs_[source]->is_zero()) *rhs_[target] -= factor * *rhs_[source];
    Merge(target, source);
  }

  /// Normalizes the leaving row by its pivot cell and eliminates column
  /// `entering` from every other row. The caller updates the basis.
  void ApplyPivot(size_t leaving, size_t entering) {
    Num* p = rows_[leaving];
    const Num pivot = p[entering];
    for (int j : support_[leaving]) {
      p[static_cast<size_t>(j)] /= pivot;  // Support cells are nonzero.
    }
    if (!rhs_[leaving]->is_zero()) *rhs_[leaving] /= pivot;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i == leaving) continue;
      const Num factor = rows_[i][entering];
      if (factor.is_zero()) continue;
      Axpy(i, leaving, factor);
    }
  }

  /// Support invariants of every attached row, for XICC_DCHECK_AUDIT.
  std::vector<std::string> AuditSupports() const {
    std::vector<std::string> out;
    for (size_t i = 0; i < rows_.size(); ++i) {
      const std::vector<Num> dense(rows_[i], rows_[i] + width_);
      std::vector<std::string> row_out =
          AuditRowSupport(dense, width_, support_[i], i);
      out.insert(out.end(), row_out.begin(), row_out.end());
    }
    return out;
  }

 private:
  void Merge(size_t target, size_t source) {
    const std::vector<int>& a = support_[target];
    const std::vector<int>& b = support_[source];
    const Num* cells = rows_[target];
    merge_scratch_.clear();
    size_t x = 0;
    size_t y = 0;
    while (x < a.size() || y < b.size()) {
      if (y >= b.size() || (x < a.size() && a[x] < b[y])) {
        merge_scratch_.push_back(a[x++]);
        continue;
      }
      const bool fresh = x >= a.size() || a[x] > b[y];
      const int col = b[y++];
      if (!fresh) ++x;
      if (!cells[static_cast<size_t>(col)].is_zero()) {
        merge_scratch_.push_back(col);
        if (fresh) ++fill_in_;
      }
    }
    support_[target].swap(merge_scratch_);
  }

  size_t width_;
  std::vector<Num*> rows_;
  std::vector<Num*> rhs_;
  std::vector<std::vector<int>> support_;
  std::vector<int> merge_scratch_;
  size_t fill_in_ = 0;
};

}  // namespace

LpPricingConfig GetLpPricingConfig() { return g_lp_pricing_config; }
void SetLpPricingConfig(const LpPricingConfig& config) {
  g_lp_pricing_config = config;
}

LpResult SolveLpFeasibility(const LinearSystem& system, LpTableau* tableau,
                            const StopSignal* stop) {
  const size_t m = system.NumConstraints();
  const size_t n = system.NumVariables();

  // All scratch for this solve — the kernel's word arrays — lives in the
  // thread's arena and dies when this scope closes. Only the exported
  // LpTableau and LpResult (regular vectors) survive.
  ArenaScope scratch(ThisThreadArena());

  // Column plan: structural, then one slack per inequality, then artificials
  // for rows whose slack cannot seed the basis.
  std::vector<LpColumnInfo> columns;
  columns.reserve(n + m);
  for (size_t j = 0; j < n; ++j) {
    columns.push_back(
        {LpColumnInfo::Kind::kStructural, static_cast<int>(j), 0});
  }
  std::vector<int> slack_col(m, -1);
  for (size_t i = 0; i < m; ++i) {
    const RelOp op = system.constraints()[i].op;
    if (op != RelOp::kEq) {
      slack_col[i] = static_cast<int>(columns.size());
      columns.push_back({LpColumnInfo::Kind::kSlack, static_cast<int>(i),
                         op == RelOp::kLe ? -1 : 1});
    }
  }
  const size_t num_structural_slack = columns.size();

  // A ≤-row with rhs ≥ 0 (or a ≥-row with rhs ≤ 0, which flips to one) can
  // use its slack as the initial basic variable; other rows need an
  // artificial. Decide per row, after rhs normalization.
  struct RowPlan {
    bool negate = false;       // Row multiplied by -1 to get rhs ≥ 0.
    bool use_slack = false;    // Slack seeds the basis.
    int artificial_col = -1;   // Otherwise: its artificial column.
  };
  std::vector<RowPlan> plan(m);
  size_t num_artificial = 0;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    bool rhs_negative = c.rhs.sign() < 0;
    plan[i].negate = rhs_negative;
    // After negation the slack coefficient is +1 for (kLe, rhs ≥ 0) and for
    // (kGe, rhs < 0); only then can the slack start basic.
    if (c.op == RelOp::kLe) {
      plan[i].use_slack = !rhs_negative;
    } else if (c.op == RelOp::kGe) {
      plan[i].use_slack = rhs_negative;
    }
    if (!plan[i].use_slack) ++num_artificial;
  }
  const size_t total = num_structural_slack + num_artificial;
  const size_t rhs_col = total;

  LpResult result;
  SparseKernel kernel(&ThisThreadArena(), m + 1, total + 1);
  std::vector<int> basis(m);
  size_t next_artificial = num_structural_slack;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    const int sign = plan[i].negate ? -1 : 1;
    // Cells arrive in ascending column order (coeffs are var-sorted; slack
    // and artificial columns sit past every structural id), so supports can
    // be appended directly.
    for (const auto& [var, coeff] : c.coeffs) {
      if (coeff.is_zero()) continue;
      kernel.InitCell(i, static_cast<size_t>(var),
                      sign < 0 ? -coeff : coeff, &result);
      kernel.support(i).push_back(static_cast<int>(var));
    }
    kernel.InitCell(i, rhs_col, plan[i].negate ? -c.rhs : c.rhs, &result);
    if (slack_col[i] >= 0) {
      // Original slack sign: +1 for ≤, −1 for ≥; then the row negation.
      const int slack_sign = (c.op == RelOp::kLe ? 1 : -1) * sign;
      kernel.InitCell(i, static_cast<size_t>(slack_col[i]), Num(slack_sign),
                      &result);
      kernel.support(i).push_back(slack_col[i]);
    }
    if (plan[i].use_slack) {
      basis[i] = slack_col[i];
    } else {
      plan[i].artificial_col = static_cast<int>(next_artificial);
      kernel.InitCell(i, next_artificial, Num(1), &result);
      kernel.support(i).push_back(static_cast<int>(next_artificial));
      basis[i] = static_cast<int>(next_artificial);
      ++next_artificial;
    }
  }
  for (size_t i = 0; i < m; ++i) result.nnz_cells += kernel.support(i).size();
  result.total_cells = m * total;

  // Phase-1 objective: minimize the sum of artificial variables. In tableau
  // form the reduced-cost row is -(sum of artificial rows) over
  // non-artificial columns; the objective value sits in the rhs cell.
  {
    std::vector<Num> objective(total + 1);
    for (size_t i = 0; i < m; ++i) {
      if (plan[i].use_slack) continue;
      for (int j : kernel.support(i)) {
        objective[static_cast<size_t>(j)] +=
            kernel.Get(i, static_cast<size_t>(j));
      }
      objective[rhs_col] += kernel.Get(i, rhs_col);
    }
    for (size_t j = 0; j <= rhs_col; ++j) {
      if (j >= num_structural_slack && j < total) continue;  // Artificial.
      if (objective[j].is_zero()) continue;
      kernel.InitCell(m, j, -objective[j], &result);
      if (j < total) kernel.support(m).push_back(static_cast<int>(j));
    }
  }
  XICC_DCHECK_AUDIT(kernel.AuditSupports());

  // Simplex iterations. Entering selection is Dantzig pricing (most negative
  // reduced cost over the objective row's support) until a degeneracy streak
  // trips the Bland fallback; Bland's smallest-index rule cannot cycle, and
  // it stays engaged until a pivot strictly improves the objective, which
  // restores termination: an infinite run would have an all-degenerate tail,
  // which locks Bland in permanently — contradiction. The ratio test
  // (smallest ratio, ties to the smallest basic index) is unchanged from the
  // dense reference.
  const LpPricingConfig pricing = GetLpPricingConfig();
  bool bland_mode = !pricing.dantzig;
  size_t degenerate_streak = 0;
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    // Bounded-cost stop poll: every 64 pivots, two loads and (when a
    // deadline is armed) one clock read — noise next to a pivot.
    if (stop != nullptr && (result.pivots & 63) == 0 && stop->ShouldStop()) {
      result.aborted = true;
      result.feasible = false;
      return result;
    }
    if (pricing.pivot_cap != 0 && result.pivots >= pricing.pivot_cap) {
      result.pivot_cap_hit = true;
      result.aborted = true;
      result.feasible = false;
      return result;
    }
    size_t entering = total;
    if (bland_mode) {
      for (int j : kernel.support(m)) {
        if (kernel.SignAt(m, static_cast<size_t>(j)) < 0) {
          entering = static_cast<size_t>(j);
          break;
        }
      }
    } else {
      Num best;
      for (int j : kernel.support(m)) {
        if (kernel.SignAt(m, static_cast<size_t>(j)) >= 0) continue;
        Num value = kernel.Get(m, static_cast<size_t>(j));
        if (entering == total || value < best) {
          best = std::move(value);
          entering = static_cast<size_t>(j);
        }
      }
    }
    if (entering == total) break;  // Optimal.

    size_t pivot_row = m;
    Num best_ratio;
    for (size_t i = 0; i < m; ++i) {
      if (kernel.SignAt(i, entering) <= 0) continue;
      Num ratio = kernel.Get(i, rhs_col) / kernel.Get(i, entering);
      if (pivot_row == m || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[pivot_row])) {
        pivot_row = i;
        best_ratio = std::move(ratio);
      }
    }
    if (pivot_row == m) break;  // Phase-1 cannot be unbounded; defensive.

    const bool degenerate = kernel.IsZero(pivot_row, rhs_col);
    ++result.pivots;
    if (bland_mode) {
      ++result.bland_pivots;
    } else {
      ++result.dantzig_pivots;
    }
    kernel.PivotApply(pivot_row, entering, &result);
    basis[pivot_row] = static_cast<int>(entering);
    if (degenerate) {
      ++degenerate_streak;
      if (!bland_mode && pricing.dantzig &&
          pricing.degenerate_streak_limit != 0 &&
          degenerate_streak >= pricing.degenerate_streak_limit) {
        bland_mode = true;
        ++result.bland_fallbacks;
      }
    } else {
      degenerate_streak = 0;
      bland_mode = !pricing.dantzig;
    }
  }
  XICC_DCHECK_AUDIT(kernel.AuditSupports());

  // Feasible iff the artificial mass is zero (objective value = -tab(m,rhs)).
  if (!kernel.IsZero(m, rhs_col)) {
    result.feasible = false;
    for (size_t i = 0; i <= m; ++i) {
      if (kernel.IsFast(i)) ++result.fast_rows;
    }
    return result;
  }
  result.feasible = true;

  // Drive degenerate artificials (basic at value 0 — routine for equality
  // rows) out of the basis: pivot on the smallest nonzero structural/slack
  // column in the row — the head of the support list, if it sits below the
  // artificial block. The pivot is at rhs = 0, so no value or feasibility
  // changes — it only makes the exported basis artificial-free, which the
  // dual-simplex warm re-solve requires. A row with no such entry is a
  // redundant constraint and keeps its artificial (basis[i] = -1 below).
  if (tableau != nullptr) {
    for (size_t i = 0; i < m; ++i) {
      if (static_cast<size_t>(basis[i]) < num_structural_slack) continue;
      const std::vector<int>& sup = kernel.support(i);
      if (sup.empty() ||
          sup.front() >= static_cast<int>(num_structural_slack)) {
        continue;  // Redundant row.
      }
      const size_t entering = static_cast<size_t>(sup.front());
      ++result.pivots;
      ++result.bland_pivots;
      kernel.PivotApply(i, entering, &result);
      basis[i] = static_cast<int>(entering);
    }
    XICC_DCHECK_AUDIT(kernel.AuditSupports());
  }
  result.values.assign(n, Num());
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] >= 0 && static_cast<size_t>(basis[i]) < n) {
      result.values[basis[i]] = kernel.Get(i, rhs_col);
    }
  }
  for (size_t i = 0; i <= m; ++i) {
    if (kernel.IsFast(i)) ++result.fast_rows;
  }

  if (tableau != nullptr) {
    tableau->columns = columns;
    tableau->basis.assign(m, -1);
    tableau->rows.assign(m, std::vector<Num>(num_structural_slack));
    tableau->rhs.assign(m, Num());
    tableau->num_constraints = m;
    for (size_t i = 0; i < m; ++i) {
      // Rows still basic in an artificial are degenerate (value 0) and are
      // not exported for cuts; they also make the basis unusable for warm
      // re-solves (the artificial column is not exported).
      if (static_cast<size_t>(basis[i]) < num_structural_slack) {
        tableau->basis[i] = basis[i];
      }
      std::vector<Num>& dst = tableau->rows[i];
      for (int j : kernel.support(i)) {
        if (static_cast<size_t>(j) < num_structural_slack) {
          dst[static_cast<size_t>(j)] = kernel.Get(i, static_cast<size_t>(j));
        }
      }
      tableau->rhs[i] = kernel.Get(i, rhs_col);
    }
  }
  return result;
}

LpResult SolveLpFeasibilityDenseBland(const LinearSystem& system,
                                      LpTableau* tableau,
                                      const StopSignal* stop) {
  const size_t m = system.NumConstraints();
  const size_t n = system.NumVariables();

  ArenaScope scratch(ThisThreadArena());

  std::vector<LpColumnInfo> columns;
  columns.reserve(n + m);
  for (size_t j = 0; j < n; ++j) {
    columns.push_back(
        {LpColumnInfo::Kind::kStructural, static_cast<int>(j), 0});
  }
  std::vector<int> slack_col(m, -1);
  for (size_t i = 0; i < m; ++i) {
    const RelOp op = system.constraints()[i].op;
    if (op != RelOp::kEq) {
      slack_col[i] = static_cast<int>(columns.size());
      columns.push_back({LpColumnInfo::Kind::kSlack, static_cast<int>(i),
                         op == RelOp::kLe ? -1 : 1});
    }
  }
  const size_t num_structural_slack = columns.size();

  struct RowPlan {
    bool negate = false;
    bool use_slack = false;
    int artificial_col = -1;
  };
  std::vector<RowPlan> plan(m);
  size_t num_artificial = 0;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    bool rhs_negative = c.rhs.sign() < 0;
    plan[i].negate = rhs_negative;
    if (c.op == RelOp::kLe) {
      plan[i].use_slack = !rhs_negative;
    } else if (c.op == RelOp::kGe) {
      plan[i].use_slack = rhs_negative;
    }
    if (!plan[i].use_slack) ++num_artificial;
  }
  const size_t total = num_structural_slack + num_artificial;
  const size_t rhs_col = total;

  DenseTableau tab(&ThisThreadArena(), m + 1, total + 1);
  std::vector<int> basis(m);
  size_t next_artificial = num_structural_slack;
  for (size_t i = 0; i < m; ++i) {
    const LinearConstraint& c = system.constraints()[i];
    int sign = plan[i].negate ? -1 : 1;
    for (const auto& [var, coeff] : c.coeffs) {
      tab.At(i, static_cast<size_t>(var)) = sign < 0 ? -coeff : coeff;
    }
    tab.At(i, rhs_col) = plan[i].negate ? -c.rhs : c.rhs;
    if (slack_col[i] >= 0) {
      int slack_sign = (c.op == RelOp::kLe ? 1 : -1) * sign;
      tab.At(i, static_cast<size_t>(slack_col[i])) = Num(slack_sign);
    }
    if (plan[i].use_slack) {
      basis[i] = slack_col[i];
    } else {
      plan[i].artificial_col = static_cast<int>(next_artificial);
      tab.At(i, next_artificial) = Num(1);
      basis[i] = static_cast<int>(next_artificial);
      ++next_artificial;
    }
  }

  for (size_t j = 0; j <= rhs_col; ++j) {
    if (j >= num_structural_slack && j < total) continue;  // Artificial.
    Num sum;
    for (size_t i = 0; i < m; ++i) {
      if (!plan[i].use_slack) sum += tab.At(i, j);
    }
    tab.At(m, j) = -sum;
  }

  LpResult result;

  // Simplex iterations with Bland's rule (smallest entering index; ratio
  // ties broken by smallest basic index) — guarantees no cycling.
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    if (stop != nullptr && (result.pivots & 63) == 0 && stop->ShouldStop()) {
      result.aborted = true;
      result.feasible = false;
      return result;
    }
    size_t entering = total;
    for (size_t j = 0; j < total; ++j) {
      if (tab.At(m, j).sign() < 0) {
        entering = j;
        break;
      }
    }
    if (entering == total) break;  // Optimal.

    size_t pivot_row = m;
    Num best_ratio;
    for (size_t i = 0; i < m; ++i) {
      if (tab.At(i, entering).sign() <= 0) continue;
      Num ratio = tab.At(i, rhs_col) / tab.At(i, entering);
      if (pivot_row == m || ratio < best_ratio ||
          (ratio == best_ratio && basis[i] < basis[pivot_row])) {
        pivot_row = i;
        best_ratio = ratio;
      }
    }
    if (pivot_row == m) break;  // Phase-1 cannot be unbounded; defensive.

    ++result.pivots;
    ++result.bland_pivots;
    Num* pivot_cells = tab.Row(pivot_row);
    const Num pivot = pivot_cells[entering];
    for (size_t j = 0; j <= rhs_col; ++j) {
      Num& cell = pivot_cells[j];
      if (!cell.is_zero()) cell /= pivot;
    }
    for (size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      Num* cells = tab.Row(i);
      const Num factor = cells[entering];
      if (factor.is_zero()) continue;
      for (size_t j = 0; j <= rhs_col; ++j) {
        // The tableaus of the cardinality encodings are sparse; skipping
        // zero cells in the pivot row is the single biggest speedup here.
        const Num& p = pivot_cells[j];
        if (p.is_zero()) continue;
        cells[j] -= factor * p;
      }
    }
    basis[pivot_row] = static_cast<int>(entering);
  }

  if (!tab.At(m, rhs_col).is_zero()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;

  if (tableau != nullptr) {
    for (size_t i = 0; i < m; ++i) {
      if (static_cast<size_t>(basis[i]) < num_structural_slack) continue;
      size_t entering = num_structural_slack;
      for (size_t j = 0; j < num_structural_slack; ++j) {
        if (!tab.At(i, j).is_zero()) {
          entering = j;
          break;
        }
      }
      if (entering == num_structural_slack) continue;  // Redundant row.
      ++result.pivots;
      ++result.bland_pivots;
      Num* pivot_cells = tab.Row(i);
      const Num pivot = pivot_cells[entering];
      for (size_t j = 0; j <= rhs_col; ++j) {
        Num& cell = pivot_cells[j];
        if (!cell.is_zero()) cell /= pivot;
      }
      for (size_t r = 0; r <= m; ++r) {
        if (r == i) continue;
        Num* cells = tab.Row(r);
        const Num factor = cells[entering];
        if (factor.is_zero()) continue;
        for (size_t j = 0; j <= rhs_col; ++j) {
          const Num& p = pivot_cells[j];
          if (p.is_zero()) continue;
          cells[j] -= factor * p;
        }
      }
      basis[i] = static_cast<int>(entering);
    }
  }
  result.values.assign(n, Num());
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] >= 0 && static_cast<size_t>(basis[i]) < n) {
      result.values[basis[i]] = tab.At(i, rhs_col);
    }
  }

  if (tableau != nullptr) {
    tableau->columns = columns;
    tableau->basis.assign(m, -1);
    tableau->rows.assign(m, std::vector<Num>(num_structural_slack));
    tableau->rhs.assign(m, Num());
    tableau->num_constraints = m;
    for (size_t i = 0; i < m; ++i) {
      if (static_cast<size_t>(basis[i]) < num_structural_slack) {
        tableau->basis[i] = basis[i];
      }
      for (size_t j = 0; j < num_structural_slack; ++j) {
        tableau->rows[i][j] = tab.At(i, j);
      }
      tableau->rhs[i] = tab.At(i, rhs_col);
    }
  }
  return result;
}

WarmResult ReSolveLpFeasibilityDual(const LinearSystem& system,
                                    LpTableau* tableau,
                                    const StopSignal* stop) {
  WarmResult out;
  const size_t n = system.NumVariables();
  const size_t m_new = system.NumConstraints();

  // Usability: the parent basis must be artificial-free (artificials are not
  // exported, so a row basic in one cannot be re-seeded), the variable set
  // must not have grown since the parent solve, and the parent must actually
  // be a prefix of `system`.
  if (tableau->num_constraints > m_new) return out;
  size_t num_structural = 0;
  for (const LpColumnInfo& column : tableau->columns) {
    if (column.kind == LpColumnInfo::Kind::kStructural) ++num_structural;
  }
  if (num_structural != n) return out;
  for (int b : tableau->basis) {
    if (b < 0) return out;
  }

  const size_t old_rows = tableau->rows.size();
  const size_t old_cols = tableau->columns.size();

  // One working row per parent row, plus one per appended inequality and two
  // per appended equality (split into its ≤ and ≥ halves so each half gets a
  // basic slack — dual simplex needs a basic variable per row).
  struct NewRow {
    size_t constraint;  // Index into system.constraints().
    int sub_sign;       // -1: s = rhs − expr; +1: s = expr − rhs.
  };
  std::vector<NewRow> appended;
  for (size_t k = tableau->num_constraints; k < m_new; ++k) {
    const RelOp op = system.constraints()[k].op;
    if (op == RelOp::kLe || op == RelOp::kEq) appended.push_back({k, -1});
    if (op == RelOp::kGe || op == RelOp::kEq) appended.push_back({k, 1});
  }
  const size_t rows = old_rows + appended.size();
  const size_t total = old_cols + appended.size();

  // The private working copy pivots in arena scratch; only the final fold-
  // back below touches the caller's (regular-vector) tableau. Cells and rhs
  // are separate flat blocks so the sparse overlay sees a uniform layout
  // across both warm variants.
  ArenaScope scratch(ThisThreadArena());
  ArenaVector<Num> cells_block(rows * total, Num(),
                               ArenaAllocator<Num>(&ThisThreadArena()));
  ArenaVector<Num> rhs_block(rows, Num(),
                             ArenaAllocator<Num>(&ThisThreadArena()));
  SparseDualView view(rows, total);
  std::vector<int> basis(tableau->basis.begin(), tableau->basis.end());
  basis.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    view.Attach(i, cells_block.data() + i * total, rhs_block.data() + i);
  }
  for (size_t i = 0; i < old_rows; ++i) {
    Num* cells = cells_block.data() + i * total;
    const std::vector<Num>& src = tableau->rows[i];
    for (size_t j = 0; j < old_cols; ++j) cells[j] = src[j];
    rhs_block[i] = tableau->rhs[i];
    view.BuildSupport(i);
  }

  for (size_t r = 0; r < appended.size(); ++r) {
    const size_t row = old_rows + r;
    const size_t slack = old_cols + r;
    const NewRow& plan = appended[r];
    const LinearConstraint& c = system.constraints()[plan.constraint];
    // ≤-half: expr + s = rhs. ≥-half, negated so the surplus comes out +1:
    // −expr + s = −rhs.
    const int sign = plan.sub_sign < 0 ? 1 : -1;
    Num* cells = cells_block.data() + row * total;
    for (const auto& [var, coeff] : c.coeffs) {
      cells[static_cast<size_t>(var)] = sign < 0 ? -coeff : coeff;
    }
    cells[slack] = Num(1);
    rhs_block[row] = sign < 0 ? -c.rhs : c.rhs;
    view.BuildSupport(row);
    // Price out the parent's basic variables so basic columns stay unit.
    // Parent rows carry zeros in the fresh slack columns, so elimination
    // never spills into other appended rows.
    for (size_t i = 0; i < old_rows; ++i) {
      const Num factor = cells[static_cast<size_t>(basis[i])];
      if (factor.is_zero()) continue;
      view.Axpy(row, i, factor);
    }
    basis.push_back(static_cast<int>(slack));
  }
  out.lp.nnz_cells = view.NnzCells();
  out.lp.total_cells = rows * total;
  XICC_DCHECK_AUDIT(view.AuditSupports());

  // Dual simplex with Bland's rule: leaving row = infeasible row whose basic
  // column index is smallest; entering = smallest column with a negative
  // entry in that row — the head scan of the leaving row's support. The
  // pivot cap is a defensive backstop — tripping it reports kPivotLimit and
  // the caller re-solves cold, so it can only cost time, never correctness.
  const size_t pivot_cap = 200 + 16 * rows;
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    if (stop != nullptr && (out.lp.pivots & 63) == 0 && stop->ShouldStop()) {
      out.status = WarmStatus::kAborted;
      return out;
    }
    int leaving = -1;
    for (size_t i = 0; i < rows; ++i) {
      if (rhs_block[i].sign() < 0 &&
          (leaving < 0 || basis[i] < basis[leaving])) {
        leaving = static_cast<int>(i);
      }
    }
    if (leaving < 0) break;  // Primal feasible again.

    const Num* pivot_cells =
        cells_block.data() + static_cast<size_t>(leaving) * total;
    size_t entering = total;
    for (int j : view.support(static_cast<size_t>(leaving))) {
      if (pivot_cells[static_cast<size_t>(j)].sign() < 0) {
        entering = static_cast<size_t>(j);
        break;
      }
    }
    if (entering == total) {
      // Certificate: Σ (nonnegative coeffs)·(nonnegative vars) = rhs < 0.
      out.status = WarmStatus::kOk;
      out.lp.feasible = false;
      return out;
    }
    if (out.lp.pivots >= pivot_cap) {
      out.status = WarmStatus::kPivotLimit;
      return out;
    }
    ++out.lp.pivots;
    ++out.lp.bland_pivots;
    view.ApplyPivot(static_cast<size_t>(leaving), entering);
    basis[leaving] = static_cast<int>(entering);
  }
  out.lp.fill_in = view.fill_in();
  XICC_DCHECK_AUDIT(view.AuditSupports());

  out.status = WarmStatus::kOk;
  out.lp.feasible = true;
  out.lp.values.assign(n, Num());
  for (size_t i = 0; i < rows; ++i) {
    if (static_cast<size_t>(basis[i]) < n) {
      out.lp.values[basis[i]] = rhs_block[i];
    }
  }

  // Fold the extended state back into `tableau` so the next warm re-solve
  // (or a Gomory derivation) starts from here. Copies, not moves — the
  // tableau's vectors must outlive this solve's arena scope. The supports
  // say where the nonzeros are, so the fold-back writes only those.
  for (const NewRow& plan : appended) {
    tableau->columns.push_back({LpColumnInfo::Kind::kSlack,
                                static_cast<int>(plan.constraint),
                                plan.sub_sign});
  }
  tableau->basis = std::move(basis);
  tableau->rhs.resize(rows);
  tableau->rows.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    // Num assignment deep-copies (the big tier reallocates on the heap), so
    // nothing arena-backed escapes here. xicc-lint: allow(arena-escape)
    tableau->rhs[i] = rhs_block[i];
    std::vector<Num>& dst = tableau->rows[i];
    dst.assign(total, Num());
    const Num* cells = cells_block.data() + i * total;
    for (int j : view.support(i)) {
      dst[static_cast<size_t>(j)] = cells[static_cast<size_t>(j)];
    }
  }
  tableau->num_constraints = m_new;
  return out;
}

WarmResult ReSolveLpFeasibilityDualInPlace(const LinearSystem& system,
                                           LpTableau* tableau,
                                           const StopSignal* stop) {
  WarmResult out;
  const size_t n = system.NumVariables();
  const size_t m_new = system.NumConstraints();

  // Usability gates identical to the copying variant; nothing has been
  // touched yet, so kUnusableBasis leaves the tableau intact.
  if (tableau->num_constraints > m_new) return out;
  size_t num_structural = 0;
  for (const LpColumnInfo& column : tableau->columns) {
    if (column.kind == LpColumnInfo::Kind::kStructural) ++num_structural;
  }
  if (num_structural != n) return out;
  for (int b : tableau->basis) {
    if (b < 0) return out;
  }

  const size_t old_rows = tableau->rows.size();
  const size_t old_cols = tableau->columns.size();

  struct NewRow {
    size_t constraint;
    int sub_sign;
  };
  std::vector<NewRow> appended;
  for (size_t k = tableau->num_constraints; k < m_new; ++k) {
    const RelOp op = system.constraints()[k].op;
    if (op == RelOp::kLe || op == RelOp::kEq) appended.push_back({k, -1});
    if (op == RelOp::kGe || op == RelOp::kEq) appended.push_back({k, 1});
  }
  const size_t rows = old_rows + appended.size();
  const size_t total = old_cols + appended.size();

  // Extend the tableau in place: zero cells for the fresh slack columns in
  // the parent rows (resize default-constructs zeros), then one slack-basic
  // row per appended half. All resizing happens before the sparse overlay
  // attaches row pointers below — nothing may reallocate after that.
  for (size_t i = 0; i < old_rows; ++i) tableau->rows[i].resize(total);
  tableau->rows.resize(rows);
  tableau->rhs.resize(rows);
  std::vector<int>& basis = tableau->basis;
  basis.reserve(rows);
  for (size_t r = 0; r < appended.size(); ++r) {
    const size_t row = old_rows + r;
    const size_t slack = old_cols + r;
    const NewRow& plan = appended[r];
    const LinearConstraint& c = system.constraints()[plan.constraint];
    const int sign = plan.sub_sign < 0 ? 1 : -1;
    std::vector<Num>& cells = tableau->rows[row];
    cells.assign(total, Num());
    for (const auto& [var, coeff] : c.coeffs) {
      cells[static_cast<size_t>(var)] = sign < 0 ? -coeff : coeff;
    }
    cells[slack] = Num(1);
    tableau->rhs[row] = sign < 0 ? -c.rhs : c.rhs;
    basis.push_back(static_cast<int>(slack));
    tableau->columns.push_back({LpColumnInfo::Kind::kSlack,
                                static_cast<int>(plan.constraint),
                                plan.sub_sign});
  }
  tableau->num_constraints = m_new;

  SparseDualView view(rows, total);
  for (size_t i = 0; i < rows; ++i) {
    view.Attach(i, tableau->rows[i].data(), &tableau->rhs[i]);
    view.BuildSupport(i);
  }
  // Price out the parent's basic variables from the appended rows so basic
  // columns stay unit. Parent rows carry zeros in the fresh slack columns,
  // so elimination never spills into other appended rows — it only reads
  // rows < old_rows, which stay untouched until the pivot loop below.
  for (size_t row = old_rows; row < rows; ++row) {
    const std::vector<Num>& cells = tableau->rows[row];
    for (size_t i = 0; i < old_rows; ++i) {
      const Num factor = cells[static_cast<size_t>(basis[i])];
      if (factor.is_zero()) continue;
      view.Axpy(row, i, factor);
    }
  }
  out.lp.nnz_cells = view.NnzCells();
  out.lp.total_cells = rows * total;
  XICC_DCHECK_AUDIT(view.AuditSupports());

  // Dual simplex with Bland's rule, pivoting the tableau's own rows through
  // the sparse overlay.
  const size_t pivot_cap = 200 + 16 * rows;
  for (;;) {
    XICC_FAULT_PROBE(kSimplexPivot);
    // Aborting leaves the tableau mid-pivot — same discard contract as
    // kPivotLimit, already honored by every in-place caller.
    if (stop != nullptr && (out.lp.pivots & 63) == 0 && stop->ShouldStop()) {
      out.status = WarmStatus::kAborted;
      return out;
    }
    int leaving = -1;
    for (size_t i = 0; i < rows; ++i) {
      if (tableau->rhs[i].sign() < 0 &&
          (leaving < 0 || basis[i] < basis[leaving])) {
        leaving = static_cast<int>(i);
      }
    }
    if (leaving < 0) break;  // Primal feasible again.

    const std::vector<Num>& pivot_cells =
        tableau->rows[static_cast<size_t>(leaving)];
    size_t entering = total;
    for (int j : view.support(static_cast<size_t>(leaving))) {
      if (pivot_cells[static_cast<size_t>(j)].sign() < 0) {
        entering = static_cast<size_t>(j);
        break;
      }
    }
    if (entering == total) {
      // Exact certificate; the half-pivoted tableau is the caller's to
      // discard, per the in-place contract.
      out.status = WarmStatus::kOk;
      out.lp.feasible = false;
      return out;
    }
    if (out.lp.pivots >= pivot_cap) {
      out.status = WarmStatus::kPivotLimit;
      return out;
    }
    ++out.lp.pivots;
    ++out.lp.bland_pivots;
    view.ApplyPivot(static_cast<size_t>(leaving), entering);
    basis[leaving] = static_cast<int>(entering);
  }
  out.lp.fill_in = view.fill_in();
  XICC_DCHECK_AUDIT(view.AuditSupports());

  out.status = WarmStatus::kOk;
  out.lp.feasible = true;
  out.lp.values.assign(n, Num());
  for (size_t i = 0; i < rows; ++i) {
    if (static_cast<size_t>(basis[i]) < n) {
      out.lp.values[basis[i]] = tableau->rhs[i];
    }
  }
  return out;
}

}  // namespace xicc
