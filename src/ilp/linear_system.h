#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/bigint.h"
#include "base/num.h"
#include "base/status.h"

namespace xicc {

/// Index of a variable within a LinearSystem.
using VarId = int;

/// A linear combination of variables plus a constant term. Terms with the
/// same variable are merged; zero-coefficient terms are dropped. Builders
/// pass BigInt (or int64) coefficients, which convert to the two-tier Num.
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(Num constant) : constant_(std::move(constant)) {}

  /// Adds coeff · var.
  LinearExpr& Add(VarId var, Num coeff);
  LinearExpr& AddConstant(const Num& value);

  const std::map<VarId, Num>& terms() const { return terms_; }
  const Num& constant() const { return constant_; }

  /// Convenience: the expression consisting of a single variable.
  static LinearExpr Var(VarId var) {
    LinearExpr e;
    e.Add(var, Num(1));
    return e;
  }

 private:
  std::map<VarId, Num> terms_;
  Num constant_;
};

enum class RelOp {
  kLe,  ///< expr <= rhs
  kGe,  ///< expr >= rhs
  kEq,  ///< expr == rhs
};

/// One row: expr (op) rhs, with rhs folded together with expr's constant.
/// Coefficients are a flat vector sorted by VarId — one allocation per row
/// instead of a map node (plus BigInt limbs) per term, which is what makes
/// trail push/pop and whole-system copies in the case-split fan-out cheap.
struct LinearConstraint {
  std::vector<std::pair<VarId, Num>> coeffs;
  RelOp op;
  Num rhs;
};

/// A system of linear constraints over nonnegative integer variables — the
/// target language of the paper's encodings (all cardinality variables are
/// counts, hence ≥ 0; Section 4 relies on this for the Papadimitriou bound).
class LinearSystem {
 public:
  /// Creates a variable; `name` is used in diagnostics and printouts.
  VarId AddVariable(std::string name);

  /// Adds `expr (op) rhs`. The expression's constant is moved to the rhs.
  void AddConstraint(const LinearExpr& expr, RelOp op, Num rhs);

  /// Adds an already-assembled row (used by the cut generator). `coeffs`
  /// must be sorted by VarId with no duplicates or zeros.
  void AddRaw(LinearConstraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  /// expr1 == expr2, expr1 <= expr2 conveniences.
  void AddEq(const LinearExpr& lhs, const LinearExpr& rhs);
  void AddLe(const LinearExpr& lhs, const LinearExpr& rhs);

  size_t NumVariables() const { return names_.size(); }
  size_t NumConstraints() const { return constraints_.size(); }
  const std::string& VarName(VarId var) const { return names_[var]; }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Largest absolute value among coefficients and right-hand sides — the
  /// `a` of the Papadimitriou bound. Rows are integral (the cut generator
  /// clears denominators), so this is the largest |numerator|.
  BigInt MaxAbsValue() const;

  /// Total stored coefficients across all rows — the numerator of the
  /// nonzero density the sparse simplex kernel and the benches report
  /// (coefficient lists carry no zeros, so stored == nonzero).
  size_t NumNonzeros() const;

  /// Trail checkpointing: since rows and variables are only ever appended,
  /// a checkpoint is the pair of current sizes and popping truncates back to
  /// it. This lets branch-and-bound, the Gomory cut loop, the case-split DFS
  /// and the presolve loop explore by push/solve/pop on ONE system — O(1)
  /// amortized per node — instead of deep-copying O(rows) at every node.
  void PushCheckpoint();
  /// Undoes every AddVariable/AddConstraint/AddRaw since the matching
  /// PushCheckpoint. Must pair with a prior push.
  void PopCheckpoint();
  size_t CheckpointDepth() const { return trail_.size(); }

  /// One trail entry: the system sizes at PushCheckpoint time.
  struct Checkpoint {
    size_t num_variables;
    size_t num_constraints;
  };
  /// The live trail, oldest first — read by AuditTrail (ilp/audit.h) to
  /// machine-check checkpoint discipline in XICC_AUDIT builds.
  const std::vector<Checkpoint>& checkpoints() const { return trail_; }

  /// Human-readable rendering, one constraint per line.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
  std::vector<Checkpoint> trail_;
};

/// RAII pairing of PushCheckpoint/PopCheckpoint: everything appended to the
/// system while the scope is alive is rolled back when it closes. Used to
/// guarantee a shared system (e.g. a compiled skeleton) is returned to its
/// entry state no matter which path leaves the solver.
class TrailScope {
 public:
  explicit TrailScope(LinearSystem* system) : system_(system) {
    system_->PushCheckpoint();
  }
  ~TrailScope() { system_->PopCheckpoint(); }
  TrailScope(const TrailScope&) = delete;
  TrailScope& operator=(const TrailScope&) = delete;

 private:
  LinearSystem* system_;
};

}  // namespace xicc
