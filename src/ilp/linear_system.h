#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/status.h"

namespace xicc {

/// Index of a variable within a LinearSystem.
using VarId = int;

/// A linear combination of variables plus a constant term. Terms with the
/// same variable are merged; zero-coefficient terms are dropped.
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(BigInt constant) : constant_(std::move(constant)) {}

  /// Adds coeff · var.
  LinearExpr& Add(VarId var, BigInt coeff);
  LinearExpr& AddConstant(const BigInt& value);

  const std::map<VarId, BigInt>& terms() const { return terms_; }
  const BigInt& constant() const { return constant_; }

  /// Convenience: the expression consisting of a single variable.
  static LinearExpr Var(VarId var) {
    LinearExpr e;
    e.Add(var, BigInt(1));
    return e;
  }

 private:
  std::map<VarId, BigInt> terms_;
  BigInt constant_;
};

enum class RelOp {
  kLe,  ///< expr <= rhs
  kGe,  ///< expr >= rhs
  kEq,  ///< expr == rhs
};

/// One row: expr (op) rhs, with rhs folded together with expr's constant.
struct LinearConstraint {
  std::map<VarId, BigInt> coeffs;
  RelOp op;
  BigInt rhs;
};

/// A system of linear constraints over nonnegative integer variables — the
/// target language of the paper's encodings (all cardinality variables are
/// counts, hence ≥ 0; Section 4 relies on this for the Papadimitriou bound).
class LinearSystem {
 public:
  /// Creates a variable; `name` is used in diagnostics and printouts.
  VarId AddVariable(std::string name);

  /// Adds `expr (op) rhs`. The expression's constant is moved to the rhs.
  void AddConstraint(const LinearExpr& expr, RelOp op, BigInt rhs);

  /// Adds an already-assembled row (used by the cut generator).
  void AddRaw(LinearConstraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  /// expr1 == expr2, expr1 <= expr2 conveniences.
  void AddEq(const LinearExpr& lhs, const LinearExpr& rhs);
  void AddLe(const LinearExpr& lhs, const LinearExpr& rhs);

  size_t NumVariables() const { return names_.size(); }
  size_t NumConstraints() const { return constraints_.size(); }
  const std::string& VarName(VarId var) const { return names_[var]; }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Largest absolute value among coefficients and right-hand sides — the
  /// `a` of the Papadimitriou bound.
  BigInt MaxAbsValue() const;

  /// Trail checkpointing: since rows and variables are only ever appended,
  /// a checkpoint is the pair of current sizes and popping truncates back to
  /// it. This lets branch-and-bound, the Gomory cut loop, the case-split DFS
  /// and the presolve loop explore by push/solve/pop on ONE system — O(1)
  /// amortized per node — instead of deep-copying O(rows) at every node.
  void PushCheckpoint();
  /// Undoes every AddVariable/AddConstraint/AddRaw since the matching
  /// PushCheckpoint. Must pair with a prior push.
  void PopCheckpoint();
  size_t CheckpointDepth() const { return trail_.size(); }

  /// One trail entry: the system sizes at PushCheckpoint time.
  struct Checkpoint {
    size_t num_variables;
    size_t num_constraints;
  };
  /// The live trail, oldest first — read by AuditTrail (ilp/audit.h) to
  /// machine-check checkpoint discipline in XICC_AUDIT builds.
  const std::vector<Checkpoint>& checkpoints() const { return trail_; }

  /// Human-readable rendering, one constraint per line.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
  std::vector<Checkpoint> trail_;
};

/// RAII pairing of PushCheckpoint/PopCheckpoint: everything appended to the
/// system while the scope is alive is rolled back when it closes. Used to
/// guarantee a shared system (e.g. a compiled skeleton) is returned to its
/// entry state no matter which path leaves the solver.
class TrailScope {
 public:
  explicit TrailScope(LinearSystem* system) : system_(system) {
    system_->PushCheckpoint();
  }
  ~TrailScope() { system_->PopCheckpoint(); }
  TrailScope(const TrailScope&) = delete;
  TrailScope& operator=(const TrailScope&) = delete;

 private:
  LinearSystem* system_;
};

}  // namespace xicc
