#include "core/incremental.h"

#include <algorithm>

namespace xicc {

Status IncrementalChecker::EnsureSession() {
  if (mode_ != Mode::kSession || session_ != nullptr) return Status::Ok();
  XICC_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledDtd> compiled,
                        CompileDtd(*dtd_));
  session_ = std::make_unique<SpecSession>(std::move(compiled), options_);
  return Status::Ok();
}

Result<IncrementalChecker::AddResult> IncrementalChecker::TryAdd(
    const Constraint& constraint) {
  {
    ConstraintSet single;
    single.Add(constraint);
    XICC_RETURN_IF_ERROR(single.CheckAgainst(*dtd_));
  }
  XICC_RETURN_IF_ERROR(EnsureSession());

  // Syntactic duplicates are redundant without any solving.
  {
    ConstraintSet normalized = accepted_.Normalize();
    const auto& all = normalized.constraints();
    ConstraintSet candidate_set;
    candidate_set.Add(constraint);
    ConstraintSet candidate_parts = candidate_set.Normalize();
    bool duplicate = true;
    for (const Constraint& part : candidate_parts.constraints()) {
      if (std::find(all.begin(), all.end(), part) == all.end()) {
        duplicate = false;
        break;
      }
    }
    if (duplicate) {
      accepted_.Add(constraint);
      return AddResult{Outcome::kAcceptedRedundant,
                       "already stated by the accepted constraints", {}};
    }
  }

  // Semantically implied? Then adding it cannot change anything. The
  // session answers this against its committed set (= accepted_); fresh
  // mode keeps the refutation verdict-only, as witnesses are never reported
  // for redundant additions.
  if (check_redundancy_) {
    ImplicationResult implication;
    if (session_ != nullptr) {
      XICC_ASSIGN_OR_RETURN(implication, session_->Implies(constraint));
    } else {
      ConsistencyOptions verdict_only = options_;
      verdict_only.build_witness = false;
      verdict_only.verify_witness = false;
      XICC_ASSIGN_OR_RETURN(
          implication,
          CheckImplication(*dtd_, accepted_, constraint, verdict_only));
    }
    if (implication.implied) {
      accepted_.Add(constraint);
      // Keep the session's committed set aligned with accepted_ (a
      // normalization-level duplicate, so every canonical key is unchanged).
      if (session_ != nullptr) {
        ConstraintSet delta;
        delta.Add(constraint);
        XICC_RETURN_IF_ERROR(session_->Commit(delta));
      }
      return AddResult{Outcome::kAcceptedRedundant,
                       "already implied by the accepted constraints", {}};
    }
  }

  ConsistencyResult consistency;
  if (session_ != nullptr) {
    // Σ-delta: accepted_ is committed in the session, so only the new
    // constraint's C_Σ rows ride the trail.
    ConstraintSet delta;
    delta.Add(constraint);
    XICC_ASSIGN_OR_RETURN(consistency, session_->Check(delta));
  } else {
    ConstraintSet candidate = accepted_;
    candidate.Add(constraint);
    XICC_ASSIGN_OR_RETURN(consistency,
                          CheckConsistency(*dtd_, candidate, options_));
  }
  if (!consistency.consistent) {
    return AddResult{
        Outcome::kRejected,
        "adding '" + constraint.ToString() +
            "' makes the specification inconsistent: " +
            consistency.explanation,
        {}};
  }
  accepted_.Add(constraint);
  if (session_ != nullptr) {
    ConstraintSet delta;
    delta.Add(constraint);
    XICC_RETURN_IF_ERROR(session_->Commit(delta));
  }
  return AddResult{Outcome::kAccepted, "", std::move(consistency.witness)};
}

Result<EquivalenceResult> CheckEquivalence(const Dtd& dtd,
                                           const ConstraintSet& sigma1,
                                           const ConstraintSet& sigma2,
                                           const ConsistencyOptions& options) {
  ConsistencyOptions verdict_only = options;
  verdict_only.build_witness = false;
  verdict_only.verify_witness = false;

  EquivalenceResult out;
  ConstraintSet normalized2 = sigma2.Normalize();
  for (const Constraint& c : normalized2.constraints()) {
    XICC_ASSIGN_OR_RETURN(ImplicationResult implied,
                          CheckImplication(dtd, sigma1, c, verdict_only));
    if (!implied.implied) {
      out.equivalent = false;
      out.separating_constraint =
          "Σ1 does not imply " + c.ToString();
      return out;
    }
  }
  ConstraintSet normalized1 = sigma1.Normalize();
  for (const Constraint& c : normalized1.constraints()) {
    XICC_ASSIGN_OR_RETURN(ImplicationResult implied,
                          CheckImplication(dtd, sigma2, c, verdict_only));
    if (!implied.implied) {
      out.equivalent = false;
      out.separating_constraint =
          "Σ2 does not imply " + c.ToString();
      return out;
    }
  }
  out.equivalent = true;
  return out;
}

}  // namespace xicc
