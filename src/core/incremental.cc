#include "core/incremental.h"

#include <algorithm>

namespace xicc {

Result<IncrementalChecker::AddResult> IncrementalChecker::TryAdd(
    const Constraint& constraint) {
  {
    ConstraintSet single;
    single.Add(constraint);
    XICC_RETURN_IF_ERROR(single.CheckAgainst(*dtd_));
  }

  // Syntactic duplicates are redundant without any solving.
  {
    ConstraintSet normalized = accepted_.Normalize();
    const auto& all = normalized.constraints();
    ConstraintSet candidate_set;
    candidate_set.Add(constraint);
    ConstraintSet candidate_parts = candidate_set.Normalize();
    bool duplicate = true;
    for (const Constraint& part : candidate_parts.constraints()) {
      if (std::find(all.begin(), all.end(), part) == all.end()) {
        duplicate = false;
        break;
      }
    }
    if (duplicate) {
      accepted_.Add(constraint);
      return AddResult{Outcome::kAcceptedRedundant,
                       "already stated by the accepted constraints"};
    }
  }

  // Semantically implied? Then adding it cannot change anything.
  if (check_redundancy_) {
    XICC_ASSIGN_OR_RETURN(
        ImplicationResult implication,
        CheckImplication(*dtd_, accepted_, constraint, options_));
    if (implication.implied) {
      accepted_.Add(constraint);
      return AddResult{Outcome::kAcceptedRedundant,
                       "already implied by the accepted constraints"};
    }
  }

  ConstraintSet candidate = accepted_;
  candidate.Add(constraint);
  XICC_ASSIGN_OR_RETURN(ConsistencyResult consistency,
                        CheckConsistency(*dtd_, candidate, options_));
  if (!consistency.consistent) {
    return AddResult{
        Outcome::kRejected,
        "adding '" + constraint.ToString() +
            "' makes the specification inconsistent: " +
            consistency.explanation};
  }
  accepted_ = std::move(candidate);
  return AddResult{Outcome::kAccepted, ""};
}

Result<EquivalenceResult> CheckEquivalence(const Dtd& dtd,
                                           const ConstraintSet& sigma1,
                                           const ConstraintSet& sigma2,
                                           const ConsistencyOptions& options) {
  ConsistencyOptions verdict_only = options;
  verdict_only.build_witness = false;
  verdict_only.verify_witness = false;

  EquivalenceResult out;
  ConstraintSet normalized2 = sigma2.Normalize();
  for (const Constraint& c : normalized2.constraints()) {
    XICC_ASSIGN_OR_RETURN(ImplicationResult implied,
                          CheckImplication(dtd, sigma1, c, verdict_only));
    if (!implied.implied) {
      out.equivalent = false;
      out.separating_constraint =
          "Σ1 does not imply " + c.ToString();
      return out;
    }
  }
  ConstraintSet normalized1 = sigma1.Normalize();
  for (const Constraint& c : normalized1.constraints()) {
    XICC_ASSIGN_OR_RETURN(ImplicationResult implied,
                          CheckImplication(dtd, sigma2, c, verdict_only));
    if (!implied.implied) {
      out.equivalent = false;
      out.separating_constraint =
          "Σ2 does not imply " + c.ToString();
      return out;
    }
  }
  out.equivalent = true;
  return out;
}

}  // namespace xicc
