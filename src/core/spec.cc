#include "core/spec.h"

#include "constraints/constraint_parser.h"
#include "constraints/evaluator.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"

namespace xicc {

Result<XmlSpec> XmlSpec::Parse(std::string_view dtd_text,
                               std::string_view constraints_text) {
  XmlSpec spec;
  XICC_ASSIGN_OR_RETURN(spec.dtd, ParseDtd(dtd_text));
  XICC_ASSIGN_OR_RETURN(spec.constraints,
                        ParseConstraints(constraints_text));
  XICC_RETURN_IF_ERROR(spec.constraints.CheckAgainst(spec.dtd));
  return spec;
}

Result<ConsistencyResult> XmlSpec::CheckConsistent(
    const ConsistencyOptions& options) const {
  return CheckConsistency(dtd, constraints, options);
}

Result<ImplicationResult> XmlSpec::Implies(
    const Constraint& phi, const ConsistencyOptions& options) const {
  return CheckImplication(dtd, constraints, phi, options);
}

Result<ImplicationResult> XmlSpec::Implies(
    std::string_view phi_text, const ConsistencyOptions& options) const {
  XICC_ASSIGN_OR_RETURN(Constraint phi, ParseConstraint(phi_text));
  return CheckImplication(dtd, constraints, phi, options);
}

XmlSpec::DocumentReport XmlSpec::CheckDocument(const XmlTree& tree) const {
  DocumentReport report;
  ValidationReport validation = ValidateXml(tree, dtd);
  EvaluationReport evaluation = Evaluate(tree, constraints);
  report.conforms = validation.valid && evaluation.satisfied;
  if (report.conforms) {
    report.details = "document conforms to the DTD and satisfies Σ";
    return report;
  }
  report.details = "";
  if (!validation.valid) {
    report.details += "DTD violations:\n" + validation.ToString();
  }
  if (!evaluation.satisfied) {
    if (!report.details.empty()) report.details += "\n";
    report.details += "constraint violations:\n" + evaluation.ToString();
  }
  return report;
}

}  // namespace xicc
