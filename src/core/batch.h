#pragma once

#include <memory>
#include <vector>

#include "base/deadline.h"
#include "base/stage_timer.h"
#include "core/spec_session.h"

namespace xicc {

struct BatchOptions {
  /// Worker count. 1 (the default) runs one session sequentially — fully
  /// deterministic, including statistics. With N > 1 the queries are split
  /// into chunks scheduled over a work-stealing pool of N workers sharing
  /// the CompiledDtd(s); per-query verdicts/results are deterministic
  /// either way (each query's answer depends only on its own constraint
  /// set), only memo locality differs. Requests beyond the hardware thread
  /// count are clamped to it — oversubscribing a CPU-bound batch only adds
  /// scheduler overhead.
  size_t num_threads = 1;
  /// Options applied by every worker session.
  ConsistencyOptions check;
  /// Per-worker memo contribution: the workers share ONE hash-sharded
  /// SharedSigmaMemo of `num_threads × memo_capacity` entries PER DTD, so
  /// an identical query hits no matter which chunk answered it first (and
  /// never leaks across DTDs — the canonical key is Σ-only). 0 turns
  /// memoization (and canonical-key hashing) off in every worker.
  size_t memo_capacity = 128;
  /// Queries per scheduled chunk (0 = auto: enough chunks for ~8 steals
  /// per worker, so one slow chunk rebalances). Each pool task runs one
  /// chunk through one REUSED worker session, so a chunk amortizes the
  /// session-setup cost (skeleton + tableau copy) over its items — the fix
  /// for tiny items whose per-stripe setup dwarfed their solve time. Chunk
  /// ranges are contiguous, so two workers never interleave writes within
  /// a cache line of the result vector.
  size_t chunk_size = 0;
  /// Per-item wall-clock budget in milliseconds (0 = none). An item whose
  /// check outlives its deadline is recorded kDeadlineExceeded — with the
  /// partial statistics of how far the search got — and the stripe moves on
  /// to the next item: one exploding query degrades to one degraded row,
  /// never a wedged batch.
  int64_t item_timeout_ms = 0;
  /// A deadline-exceeded item is retried once at `deadline_retry_factor ×
  /// item_timeout_ms` before being quarantined (0 disables the retry). The
  /// escalated budget rescues items that were merely unlucky — a cold memo,
  /// a slow first pivot phase — without letting a genuinely exploding item
  /// hold its stripe for more than factor+1 budgets.
  size_t deadline_retry_factor = 4;
  /// Optional batch-level cancel switch; must outlive the call. Firing it
  /// stops in-flight checks at their next poll, drops not-yet-started
  /// stripes (their items are recorded kCancelled), and wakes any parked
  /// pool workers — CheckBatch then returns instead of wedging.
  const CancelToken* cancel = nullptr;
};

/// Per-query outcome. `status` carries per-query failures (e.g. a query
/// referencing undeclared attributes, or the undecidable class) without
/// aborting the rest of the batch; `result` is meaningful iff status.ok().
struct BatchItemResult {
  Status status;
  ConsistencyResult result;
  /// For items WITHOUT a verdict (kDeadlineExceeded / kCancelled /
  /// kResourceExhausted): the statistics the check accumulated before it
  /// was stopped — nodes explored, pivots, deepest search level. Zero for
  /// successful items (their stats live in `result.stats`).
  ConsistencyStats partial;
};

/// Degradation tallies for one CheckBatch run — the "what did we give up
/// on, and did the safety nets work" section of the batch report.
struct BatchDegradedStats {
  /// Items recorded without a verdict, by terminal status code.
  size_t deadline_exceeded = 0;
  size_t cancelled = 0;
  size_t resource_exhausted = 0;
  /// Escalated-budget re-runs attempted after a first deadline miss, and
  /// how many of them produced a verdict after all.
  size_t retries = 0;
  size_t retry_rescues = 0;
  /// Items quarantined with any non-OK status while their chunk kept
  /// draining (includes the three counters above plus per-item input
  /// errors).
  size_t quarantined = 0;
};

/// Where one CheckBatch run's time went and how it was scheduled — the
/// "why doesn't this scale" section of the batch report. All numbers are
/// aggregated single-threadedly after the pool drains; per-worker session
/// tallies are merged into `stages`.
struct BatchRunStats {
  /// Effective pool width after the query-count and hardware clamps. When
  /// this is smaller than the requested num_threads the scaling curve is
  /// flat BY CONSTRUCTION — benches must report it so a 1-core runner's
  /// speedup ≈ 1.0 reads as a clamp, not a contention mystery.
  size_t workers = 0;
  /// HardwareConcurrency() at run time, for the same honesty reason.
  size_t hardware_threads = 0;
  /// Scheduled chunks and the resolved items-per-chunk target.
  size_t chunks = 0;
  size_t chunk_size = 0;
  /// Worker sessions constructed vs. chunks served by a reused session —
  /// sessions_created × session_setup_ms is the amortized setup bill.
  size_t sessions_created = 0;
  size_t session_reuses = 0;
  /// Shared-memo traffic summed over every worker session.
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  size_t memo_evictions = 0;
  /// Per-stage wall time summed over every worker session (stage_timer.h
  /// taxonomy: session setup, memo key/lookup/store, solve, result write).
  /// With W workers busy the stage sums can legitimately approach W × the
  /// batch wall time.
  StageTally stages;
};

/// Answers many consistency queries against one compiled DTD — the batch
/// shape of Corollary 4.11's fixed-DTD workflow. Queries are split into
/// contiguous chunks scheduled over a work-stealing pool; each chunk runs
/// through a pooled, reused SpecSession, and the CompiledDtd is shared
/// read-only (its artifacts are immutable and its frozen DFAs
/// thread-safe). `degraded` and `run`, when non-null, receive the run's
/// degradation tallies and scheduling/stage attribution.
std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries,
    const BatchOptions& options = {}, BatchDegradedStats* degraded = nullptr,
    BatchRunStats* run = nullptr);

/// One query of a heterogeneous batch: `dtd_index` picks which of the
/// batch's compiled DTDs `sigma` is checked against.
struct BatchQuery {
  size_t dtd_index = 0;
  ConstraintSet sigma;
};

/// The multi-DTD batch front-end: many compiled DTDs in flight within one
/// call, each query routed to its DTD's session pool and per-DTD shared
/// memo. Chunks never span DTDs (a chunk's session is bound to one
/// artifact), but chunks of different DTDs run concurrently on the same
/// worker pool. An out-of-range dtd_index quarantines that item with
/// kInvalidArgument; the rest of the batch is unaffected.
std::vector<BatchItemResult> CheckBatchMulti(
    const std::vector<std::shared_ptr<const CompiledDtd>>& compiled,
    const std::vector<BatchQuery>& queries, const BatchOptions& options = {},
    BatchDegradedStats* degraded = nullptr, BatchRunStats* run = nullptr);

}  // namespace xicc
