#pragma once

#include <memory>
#include <vector>

#include "core/spec_session.h"

namespace xicc {

struct BatchOptions {
  /// Worker count. 1 (the default) runs one session sequentially — fully
  /// deterministic, including statistics. With N > 1 the queries are striped
  /// round-robin over N sessions sharing the one CompiledDtd; per-query
  /// verdicts/results are deterministic either way (each query's answer
  /// depends only on its own constraint set), only the intra-worker memo
  /// locality differs. Requests beyond the hardware thread count are clamped
  /// to it — oversubscribing a CPU-bound batch only adds scheduler overhead.
  size_t num_threads = 1;
  /// Options applied by every worker session.
  ConsistencyOptions check;
  /// Per-worker memo contribution: the workers share ONE hash-sharded
  /// SharedSigmaMemo of `num_threads × memo_capacity` entries, so an
  /// identical query hits no matter which stripe answered it first. 0 turns
  /// memoization (and canonical-key hashing) off in every worker.
  size_t memo_capacity = 128;
};

/// Per-query outcome. `status` carries per-query failures (e.g. a query
/// referencing undeclared attributes, or the undecidable class) without
/// aborting the rest of the batch; `result` is meaningful iff status.ok().
struct BatchItemResult {
  Status status;
  ConsistencyResult result;
};

/// Answers many consistency queries against one compiled DTD — the batch
/// shape of Corollary 4.11's fixed-DTD workflow. Worker w handles queries
/// w, w + N, w + 2N, … with its own SpecSession; the CompiledDtd is shared
/// read-only (its artifacts are immutable and its frozen DFAs thread-safe).
std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries,
    const BatchOptions& options = {});

}  // namespace xicc
