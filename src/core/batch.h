#pragma once

#include <memory>
#include <vector>

#include "base/deadline.h"
#include "core/spec_session.h"

namespace xicc {

struct BatchOptions {
  /// Worker count. 1 (the default) runs one session sequentially — fully
  /// deterministic, including statistics. With N > 1 the queries are striped
  /// round-robin over N sessions sharing the one CompiledDtd; per-query
  /// verdicts/results are deterministic either way (each query's answer
  /// depends only on its own constraint set), only the intra-worker memo
  /// locality differs. Requests beyond the hardware thread count are clamped
  /// to it — oversubscribing a CPU-bound batch only adds scheduler overhead.
  size_t num_threads = 1;
  /// Options applied by every worker session.
  ConsistencyOptions check;
  /// Per-worker memo contribution: the workers share ONE hash-sharded
  /// SharedSigmaMemo of `num_threads × memo_capacity` entries, so an
  /// identical query hits no matter which stripe answered it first. 0 turns
  /// memoization (and canonical-key hashing) off in every worker.
  size_t memo_capacity = 128;
  /// Per-item wall-clock budget in milliseconds (0 = none). An item whose
  /// check outlives its deadline is recorded kDeadlineExceeded — with the
  /// partial statistics of how far the search got — and the stripe moves on
  /// to the next item: one exploding query degrades to one degraded row,
  /// never a wedged batch.
  int64_t item_timeout_ms = 0;
  /// A deadline-exceeded item is retried once at `deadline_retry_factor ×
  /// item_timeout_ms` before being quarantined (0 disables the retry). The
  /// escalated budget rescues items that were merely unlucky — a cold memo,
  /// a slow first pivot phase — without letting a genuinely exploding item
  /// hold its stripe for more than factor+1 budgets.
  size_t deadline_retry_factor = 4;
  /// Optional batch-level cancel switch; must outlive the call. Firing it
  /// stops in-flight checks at their next poll, drops not-yet-started
  /// stripes (their items are recorded kCancelled), and wakes any parked
  /// pool workers — CheckBatch then returns instead of wedging.
  const CancelToken* cancel = nullptr;
};

/// Per-query outcome. `status` carries per-query failures (e.g. a query
/// referencing undeclared attributes, or the undecidable class) without
/// aborting the rest of the batch; `result` is meaningful iff status.ok().
struct BatchItemResult {
  Status status;
  ConsistencyResult result;
  /// For items WITHOUT a verdict (kDeadlineExceeded / kCancelled /
  /// kResourceExhausted): the statistics the check accumulated before it
  /// was stopped — nodes explored, pivots, deepest search level. Zero for
  /// successful items (their stats live in `result.stats`).
  ConsistencyStats partial;
};

/// Degradation tallies for one CheckBatch run — the "what did we give up
/// on, and did the safety nets work" section of the batch report.
struct BatchDegradedStats {
  /// Items recorded without a verdict, by terminal status code.
  size_t deadline_exceeded = 0;
  size_t cancelled = 0;
  size_t resource_exhausted = 0;
  /// Escalated-budget re-runs attempted after a first deadline miss, and
  /// how many of them produced a verdict after all.
  size_t retries = 0;
  size_t retry_rescues = 0;
  /// Items quarantined with any non-OK status while their stripe kept
  /// draining (includes the three counters above plus per-item input
  /// errors).
  size_t quarantined = 0;
};

/// Answers many consistency queries against one compiled DTD — the batch
/// shape of Corollary 4.11's fixed-DTD workflow. Worker w handles queries
/// w, w + N, w + 2N, … with its own SpecSession; the CompiledDtd is shared
/// read-only (its artifacts are immutable and its frozen DFAs thread-safe).
/// `degraded`, when non-null, receives the run's degradation tallies.
std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries,
    const BatchOptions& options = {}, BatchDegradedStats* degraded = nullptr);

}  // namespace xicc
