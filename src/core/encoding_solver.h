#pragma once

#include <vector>

#include "core/cardinality_encoding.h"
#include "ilp/solver.h"

namespace xicc {

/// Strategy for discharging the conditional rows (see consistency.h for the
/// user-facing enum; this header is shared by consistency and implication).
enum class EncodingStrategy {
  kCaseSplit,
  kBigM,
};

struct EncodingSolveOptions {
  EncodingStrategy strategy = EncodingStrategy::kCaseSplit;
  IlpOptions ilp;
  /// Cap on lazy support-connectivity rounds.
  size_t max_connectivity_rounds = 64;
};

/// Solves `system` (the encoding's system, possibly extended by the caller)
/// under the encoding's conditionals, with *tree-realizability* enforced by
/// lazy support-connectivity cuts:
///
/// The Ψ_D equations alone admit solutions whose support is a disconnected
/// "phantom cycle" (e.g. P(a) = a | end allows k a-elements parenting each
/// other in a ring that no tree contains). A solution is realizable iff
/// every element type with ext(τ) > 0 is reachable from the root through
/// positive occurrence variables. Violations are repaired TSP-subtour
/// style: for the unreachable set U, add the sound conditional
///   Σ_{τ∈U} ext(τ) > 0  →  Σ_{occurrence edges entering U} x > 0
/// and re-solve. The loop is sound and complete; the round cap yields
/// kResourceExhausted (never a wrong verdict) if it binds.
Result<IlpSolution> SolveEncodingSystem(const CardinalityEncoding& encoding,
                                        const LinearSystem& system,
                                        const EncodingSolveOptions& options);

/// The Σ-delta entry point: same decision, but `*system` is solved in place
/// through its trail (restored to its entry state on return) and the
/// conditional set is the caller's — a spec session passes the conditionals
/// of the pairs its query mentions rather than the full encoding's.
/// `encoding` supplies only the support graph (ext_var / occurrences /
/// simplified root) for the lazy connectivity cuts. `warm` follows the
/// CaseSplitWarmContext contract: a caller-provided valid tableau must have
/// been solved against a row-prefix of `*system`'s entry state (the compiled
/// skeleton basis) and is then reused read-only across every round and call.
Result<IlpSolution> SolveEncodingSystemInPlace(
    const CardinalityEncoding& encoding, LinearSystem* system,
    const std::vector<Conditional>& conditionals,
    const EncodingSolveOptions& options, CaseSplitWarmContext* warm = nullptr);

/// True iff every element type with ext > 0 is reachable from the root via
/// occurrence variables with positive solution values. Exposed for tests.
bool SupportIsConnected(const CardinalityEncoding& encoding,
                        const IlpSolution& solution);

}  // namespace xicc
