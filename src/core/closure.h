#pragma once

#include <vector>

#include "core/implication.h"

namespace xicc {

/// Implied-constraint enumeration — the data-integration workflow from the
/// paper's introduction, batched: a mediator publishes (D, Σ) and an
/// optimizer wants to know every unary key and inclusion that *follows*
/// from the specification without being stated.
struct UnaryClosure {
  /// Unary keys τ.l → τ implied by (D, Σ) but not syntactically present.
  std::vector<Constraint> implied_keys;
  /// Unary inclusions τ1.l1 ⊆ τ2.l2 (distinct pairs) implied but absent.
  std::vector<Constraint> implied_inclusions;
};

struct ClosureOptions {
  ConsistencyOptions consistency;
  /// Also enumerate implied inclusions (quadratic in the number of
  /// attribute pairs; each candidate costs one Section 5 refutation).
  bool include_inclusions = true;
};

/// Runs one implication check per candidate over all attribute pairs of the
/// DTD. Σ must be unary (kUndecidableClass otherwise, per Corollary 3.4).
/// Note that over an inconsistent specification *everything* is implied —
/// check consistency first if that distinction matters.
Result<UnaryClosure> ComputeUnaryClosure(const Dtd& dtd,
                                         const ConstraintSet& sigma,
                                         const ClosureOptions& options = {});

/// Constraints φ ∈ Σ with (D, Σ \ {φ}) ⊢ φ — stated but redundant. Foreign
/// keys are redundant only if both components are implied by the rest.
Result<std::vector<Constraint>> FindRedundantConstraints(
    const Dtd& dtd, const ConstraintSet& sigma,
    const ConsistencyOptions& options = {});

}  // namespace xicc
