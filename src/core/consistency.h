#pragma once

#include <optional>
#include <string>

#include "base/deadline.h"
#include "constraints/constraint.h"
#include "core/cardinality_encoding.h"
#include "core/set_representation.h"
#include "core/witness.h"
#include "dtd/dtd.h"
#include "ilp/solver.h"
#include "xml/tree.h"

namespace xicc {

/// How the conditional rows (ext(τ) > 0 → ext(τ.l) > 0) are discharged.
enum class SolveStrategy {
  /// Exact DFS over the 9_X resolutions with LP pruning (default).
  kCaseSplit,
  /// The Theorem 4.1 big-M linearization c·y ≥ x with the Papadimitriou
  /// bound as c. Exact, single ILP call, but with astronomically large
  /// coefficients; kept for the ablation bench.
  kBigM,
};

struct ConsistencyStats;

struct ConsistencyOptions {
  SolveStrategy strategy = SolveStrategy::kCaseSplit;
  /// Materialize a witness document when consistent.
  bool build_witness = true;
  /// Require the witness to contain at least this many element nodes
  /// (0 = no requirement). Added as Σ_τ ext(τ) ≥ n to the cardinality
  /// system, so the verdict itself is unaffected unless the DTD cannot
  /// grow (then the result is honestly inconsistent *at that size*).
  /// Useful as a schema-aware test-data generator.
  size_t min_witness_nodes = 0;
  /// Re-validate the witness against the DTD and re-evaluate Σ on it
  /// (witnesses are checked, not trusted); a failure is reported as an
  /// internal error.
  bool verify_witness = true;
  IlpOptions ilp;
  SetRepresentationOptions set_representation;
  WitnessOptions witness;
  /// Cooperative stop for the whole check: deadline and/or cancel token,
  /// threaded into every ILP layer below (polled per branch-and-bound node,
  /// per cut round, and every 64 simplex pivots). When it fires the check
  /// returns kDeadlineExceeded / kCancelled — NEVER a consistency verdict;
  /// a timed-out check has not decided anything.
  StopSignal stop;
  /// When non-null and the check ends without a verdict (stop fired,
  /// resource budget tripped), receives the statistics accumulated so far:
  /// nodes explored, pivots, deepest search node reached.
  ConsistencyStats* partial_stats = nullptr;
};

struct ConsistencyStats {
  size_t system_variables = 0;
  size_t system_constraints = 0;
  size_t ilp_nodes = 0;
  size_t lp_pivots = 0;
  /// LP solves that restored feasibility via dual simplex from the parent
  /// node's basis, vs. those that fell back to a cold phase-1 solve.
  size_t warm_starts = 0;
  size_t cold_restarts = 0;
  /// Deepest branch-and-bound node reached (best-so-far depth): the most
  /// useful single number in a partial report of a stopped search.
  size_t search_depth = 0;
  /// Sparse LP kernel counters (DESIGN.md §12) summed over every LP solve
  /// of the check: pricing-rule pivot split, Dantzig→Bland degeneracy
  /// fallbacks, fill-in, initial tableau density, and the int64 fast lane's
  /// row/promotion tallies.
  LpKernelStats lp_kernel;
  /// Two-tier exact arithmetic (base/num.h): pivot-loop operations served by
  /// the packed 64-bit small tier vs the BigInt big tier, plus the tier
  /// transitions. num_promotions / num_small_ops is the promotion rate.
  uint64_t num_small_ops = 0;
  uint64_t num_big_ops = 0;
  uint64_t num_promotions = 0;
  uint64_t num_demotions = 0;
  /// Per-thread arena traffic (cumulative bytes bumped, not footprint)
  /// consumed by the check's solves.
  uint64_t arena_bytes = 0;
  /// Wall time spent inside the ILP search (case-split + branch-and-bound).
  double ilp_wall_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)

  // Spec-session counters (zero outside SpecSession / CheckBatch paths).
  /// Wall time spent compiling the DTD artifact bundle, charged to the
  /// query that triggered compilation (0 afterwards — that is the point).
  double compile_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  /// Queries answered by pushing only C_Σ rows onto the compiled skeleton's
  /// trail instead of rebuilding Ψ(D,Σ) from scratch.
  size_t sigma_delta_checks = 0;
  /// Memo-cache hits/misses for canonicalized Σ within a session.
  size_t memo_hits = 0;
  size_t memo_misses = 0;

  // Stage attribution (base/stage_timer.h taxonomy) — timing only, never a
  // verdict. Zero outside the SpecSession / CheckBatch paths.
  /// Session construction cost (skeleton + tableau copy), charged like
  /// compile_ms to the session's first answered query.
  double session_setup_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  /// Rendering + sorting this query's canonical Σ memo key.
  double memo_key_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  /// Shared-memo lookup: shard lock wait + hold (payload copies excluded).
  double memo_lookup_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  /// Shared-memo store: payload snapshot + shard lock wait + hold.
  double memo_store_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
};

struct ConsistencyResult {
  bool consistent = false;
  /// The Figure-5 class the input was dispatched to.
  ConstraintClass constraint_class = ConstraintClass::kEmpty;
  /// Which decision procedure ran: "grammar-emptiness" (Thm 3.5(1)),
  /// "keys-only" (Thm 3.5(2)), "ilp-case-split" / "ilp-big-m" (Thm 4.1 /
  /// Cor 4.9), "set-representation" (Thm 5.1).
  std::string method;
  std::string explanation;
  /// A checked witness document when consistent and requested.
  std::optional<XmlTree> witness;
  ConsistencyStats stats;
};

/// The XML SPECIFICATION CONSISTENCY problem: is there a finite tree T with
/// T ⊨ D and T ⊨ Σ?
///
/// Dispatch per Figure 5:
///  - Σ empty        → grammar emptiness, linear time (Theorem 3.5(1));
///  - keys only      → emptiness again, since any valid tree can be re-valued
///                     to satisfy all keys (Theorem 3.5(2)); multi-attribute
///                     keys included;
///  - unary keys/FKs/ICs (± negated keys) → the Ψ(D,Σ) integer encoding
///                     (Theorem 4.1, Corollary 4.9), NP;
///  - with negated inclusions → the Section 5 region system (Theorem 5.1);
///  - multi-attribute FKs/ICs → Status kUndecidableClass (Theorem 3.1: no
///                     algorithm exists).
Result<ConsistencyResult> CheckConsistency(
    const Dtd& dtd, const ConstraintSet& sigma,
    const ConsistencyOptions& options = {});

}  // namespace xicc
