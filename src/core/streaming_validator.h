#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "dtd/dtd.h"
#include "dtd/glushkov.h"
#include "xml/event_parser.h"

namespace xicc {

/// Single-pass validation of a document against a DTD and a constraint set,
/// without materializing the tree: content models run stepwise through the
/// Glushkov automaton on a stack of open elements, and constraints
/// accumulate only the attribute tuples they mention. Memory is O(open
/// depth + constrained values) instead of O(document).
///
/// Works for *every* constraint class, including the statically undecidable
/// multi-attribute C_{K,FK} — checking a given document is the easy
/// direction, and this is the form a production ingest pipeline uses.
class StreamingValidator : public XmlEventHandler {
 public:
  struct Summary {
    bool conforms = true;
    std::vector<std::string> problems;
    size_t elements_seen = 0;

    std::string ToString() const;
  };

  /// `dtd` and `sigma` must outlive the validator. `sigma` may contain any
  /// constraint forms; foreign keys are expanded internally.
  StreamingValidator(const Dtd* dtd, const ConstraintSet* sigma);

  // XmlEventHandler: these never return errors — problems are collected so
  // one pass reports everything, matching ValidateXml/Evaluate behaviour.
  Status StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override;
  Status Text(const std::string& value) override;
  Status EndElement(const std::string& name) override;

  /// End-of-document checks (inclusions and negations need the whole
  /// document) and the verdict.
  Summary Finish();

 private:
  struct OpenElement {
    std::string type;
    int match_state;
    bool tracked;       // False for undeclared types (content not checked).
    bool had_children;  // Any element/text child consumed.
  };

  /// Per-constraint accumulated state.
  struct KeyState {
    Constraint constraint;
    std::set<std::vector<std::string>> seen;
    bool duplicate_seen = false;
  };
  struct InclusionState {
    Constraint constraint;
    std::set<std::vector<std::string>> left;
    std::set<std::vector<std::string>> right;
  };

  void Problem(const std::string& message);
  ContentModelMatcher* MatcherFor(const std::string& type);
  void FeedChild(const std::string& symbol);
  /// Extracts the constraint-relevant tuples of this element.
  void RecordTuples(const std::string& type,
                    const std::vector<std::pair<std::string, std::string>>&
                        attrs);

  const Dtd* dtd_;
  ConstraintSet normalized_;
  std::map<std::string, ContentModelMatcher> matchers_;
  std::vector<OpenElement> stack_;
  bool root_seen_ = false;

  // Indexes from element type to the states interested in it.
  std::vector<KeyState> keys_;        // kKey and kNegKey.
  std::vector<InclusionState> inclusions_;  // kInclusion and kNegInclusion.
  std::map<std::string, std::vector<size_t>> keys_by_type_;
  // (inclusion index, side): side 0 = left/type1, 1 = right/type2.
  std::map<std::string, std::vector<std::pair<size_t, int>>>
      inclusions_by_type_;

  Summary summary_;
};

/// Convenience: parse + validate in one pass.
Result<StreamingValidator::Summary> ValidateStream(
    std::string_view xml, const Dtd& dtd, const ConstraintSet& sigma,
    const XmlParseOptions& options = {});

}  // namespace xicc
