#include "core/conditional_solver.h"

#include "ilp/simplex.h"

namespace xicc {

namespace {

class CaseSplitSolver {
 public:
  CaseSplitSolver(const LinearSystem& base,
                  const std::vector<Conditional>& conditionals,
                  const IlpOptions& options)
      : base_(base), conditionals_(conditionals), options_(options) {}

  Result<IlpSolution> Run() {
    // Optimistic leaf: resolve every conditional to its conclusion ≥ 1 and
    // try that single system first. Consistent specifications normally
    // populate all their element types, so this one ILP call settles them
    // without touching the exponential split.
    {
      LinearSystem optimistic = base_;
      for (const Conditional& cond : conditionals_) {
        optimistic.AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
      }
      XICC_ASSIGN_OR_RETURN(IlpSolution leaf,
                            SolveIlp(optimistic, options_));
      if (leaf.feasible) return leaf;
      stats_nodes_ += leaf.nodes_explored;
      stats_pivots_ += leaf.lp_pivots;
    }

    // Presolve: a conditional whose premise cannot vanish (base + premise=0
    // is LP-infeasible) has a forced conclusion; install it as a hard row
    // and drop the conditional from the exponential split. Typical win:
    // ext(τ) of unavoidable element types, which the DTD pins ≥ 1.
    LinearSystem system = base_;
    for (const Conditional& cond : conditionals_) {
      LinearSystem test = system;
      test.AddConstraint(cond.premise, RelOp::kEq, BigInt(0));
      LpResult lp = SolveLpFeasibility(test);
      stats_pivots_ += lp.pivots;
      if (!lp.feasible) {
        system.AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
      } else {
        active_.push_back(cond);
      }
    }
    Status status = Explore(&system, 0);
    if (!status.ok()) return status;
    if (!found_) {
      IlpSolution out;
      out.feasible = false;
      out.nodes_explored = stats_nodes_;
      out.lp_pivots = stats_pivots_;
      return out;
    }
    solution_.nodes_explored += stats_nodes_;
    solution_.lp_pivots += stats_pivots_;
    return std::move(solution_);
  }

 private:
  /// Resolves conditionals from index `depth` on; `system` carries the
  /// resolutions made so far.
  Status Explore(LinearSystem* system, size_t depth) {
    if (found_) return Status::Ok();
    ++stats_nodes_;
    if (options_.max_nodes != 0 && stats_nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "conditional case-split exceeded node budget");
    }

    // LP pruning: if even the relaxation (ignoring unresolved conditionals)
    // is infeasible, no resolution below can succeed.
    LpResult lp = SolveLpFeasibility(*system);
    stats_pivots_ += lp.pivots;
    if (!lp.feasible) return Status::Ok();

    if (depth == active_.size()) {
      // Fully resolved: the conditionals now hold for *any* solution of
      // `system`, so plain integer feasibility decides this leaf.
      XICC_ASSIGN_OR_RETURN(IlpSolution leaf, SolveIlp(*system, options_));
      if (leaf.feasible) {
        found_ = true;
        solution_ = std::move(leaf);
      }
      return Status::Ok();
    }

    const Conditional& cond = active_[depth];

    // Branch 1: conclusion ≥ 1 (the conditional is discharged outright).
    {
      LinearSystem extended = *system;
      extended.AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
      XICC_RETURN_IF_ERROR(Explore(&extended, depth + 1));
      if (found_) return Status::Ok();
    }
    // Branch 2: premise = 0 (the premise is false; over nonnegative
    // variables this pins every term of the premise to zero).
    {
      LinearSystem extended = *system;
      extended.AddConstraint(cond.premise, RelOp::kEq, BigInt(0));
      XICC_RETURN_IF_ERROR(Explore(&extended, depth + 1));
    }
    return Status::Ok();
  }

  const LinearSystem& base_;
  const std::vector<Conditional>& conditionals_;
  std::vector<Conditional> active_;  // Survivors of presolve.
  IlpOptions options_;
  bool found_ = false;
  IlpSolution solution_;
  size_t stats_nodes_ = 0;
  size_t stats_pivots_ = 0;
};

}  // namespace

Result<IlpSolution> SolveWithConditionals(
    const LinearSystem& base, const std::vector<Conditional>& conditionals,
    const IlpOptions& options) {
  CaseSplitSolver solver(base, conditionals, options);
  return solver.Run();
}

}  // namespace xicc
