#include "core/conditional_solver.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <utility>

#include "base/arena.h"
#include "base/debug.h"
#include "base/num.h"
#include "base/thread_annotations.h"
#include "base/worksteal.h"
#include "ilp/audit.h"
#include "ilp/simplex.h"

namespace xicc {

namespace {

/// Search state shared by every DFS worker of one solve — a single worker
/// sequentially (num_threads = 1), or one per fanned-out prefix in the
/// parallel regime. Only the node counter and the terminal flags are
/// contended; per-worker statistics are accumulated locally and flushed
/// once per task.
struct SearchShared {
  const std::vector<Conditional>* active = nullptr;
  IlpOptions options;
  /// Armed stop signal shared by every worker (null when unarmed); points at
  /// the solver's options, which outlive the search.
  const StopSignal* stop = nullptr;
  std::atomic<size_t> nodes{0};
  std::atomic<bool> found{false};
  std::atomic<bool> budget_hit{false};
  std::atomic<bool> failed{false};
  /// The stop signal fired somewhere in the search — deadline expiry, an
  /// external cancel, or a leaf solve observing either. Not a failure: the
  /// final status comes from the signal, with partial statistics attached.
  std::atomic<bool> stopped{false};
  Mutex mu;  // xicc-analyze: lock-leaf
  /// `solution` carries feasible + values only (statistics are assembled
  /// from the aggregated counters); `error` is the first leaf failure.
  IlpSolution solution XICC_GUARDED_BY(mu);
  Status error XICC_GUARDED_BY(mu);
};

/// One case-split DFS over a private trail-managed system. Resolutions are
/// pushed/popped on the trail — O(1) amortized per node instead of an
/// O(rows) system copy — and each node's LP prune warm starts from the
/// parent's basis; the basis that survives the prune then seeds the leaf
/// ILP's root.
class SplitWorker {
 public:
  SplitWorker(SearchShared* shared, LinearSystem* system)
      : shared_(shared), system_(system) {}

  /// Resolves conditionals from index `depth` on; `system_` carries the
  /// resolutions made so far, `parent` the basis of the node above (null →
  /// cold).
  void Explore(size_t depth, const LpTableau* parent) {
    if (Done()) return;
    if (shared_->stop != nullptr && shared_->stop->ShouldStop()) {
      shared_->stopped.store(true, std::memory_order_relaxed);
      return;
    }
    XICC_DCHECK_AUDIT(AuditTrail(*system_));
    size_t node = shared_->nodes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (shared_->options.max_nodes != 0 &&
        node > shared_->options.max_nodes) {
      shared_->budget_hit.store(true, std::memory_order_relaxed);
      return;
    }

    // LP pruning: if even the relaxation (ignoring unresolved conditionals)
    // is infeasible, no resolution below can succeed.
    LpTableau tab;
    bool have_tab = false;
    if (parent != nullptr && shared_->options.warm_start) {
      tab = *parent;
      WarmResult warm =
          ReSolveLpFeasibilityDualInPlace(*system_, &tab, shared_->stop);
      pivots += warm.lp.pivots;
      kernel.Add(warm.lp);
      if (warm.status == WarmStatus::kAborted) {
        shared_->stopped.store(true, std::memory_order_relaxed);
        return;
      }
      if (warm.status == WarmStatus::kOk) {
        ++warm_starts;
        if (!warm.lp.feasible) return;
        have_tab = true;
      }
    }
    if (!have_tab) {
      ++cold_restarts;
      LpResult lp = SolveLpFeasibility(*system_, &tab, shared_->stop);
      pivots += lp.pivots;
      kernel.Add(lp);
      if (lp.aborted) {
        shared_->stopped.store(true, std::memory_order_relaxed);
        return;
      }
      if (!lp.feasible) return;
    }

    if (depth == shared_->active->size()) {
      // Fully resolved: the conditionals now hold for *any* solution of
      // `system`, so plain integer feasibility decides this leaf — its root
      // LP warm-seeded from the pruning basis just computed.
      IlpOptions leaf_options = shared_->options;
      IlpSolution leaf_partial;
      leaf_options.partial = &leaf_partial;
      Result<IlpSolution> leaf = SolveIlp(*system_, leaf_options, &tab);
      if (!leaf.ok()) {
        // A stopped leaf is the search being stopped, not failing: keep the
        // work it did (flushed with this worker's counters) and let the
        // solver report the stop status with partial statistics.
        const StatusCode code = leaf.status().code();
        if (code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kCancelled) {
          ilp_nodes += leaf_partial.nodes_explored;
          pivots += leaf_partial.lp_pivots;
          cuts += leaf_partial.cuts_added;
          warm_starts += leaf_partial.warm_starts;
          cold_restarts += leaf_partial.cold_restarts;
          kernel.Add(leaf_partial.lp_kernel);
          if (leaf_partial.max_depth > max_depth) {
            max_depth = leaf_partial.max_depth;
          }
          MutexLock lock(&shared_->mu);
          if (shared_->error.ok()) shared_->error = leaf.status();
          shared_->stopped.store(true, std::memory_order_relaxed);
          return;
        }
        MutexLock lock(&shared_->mu);
        if (shared_->error.ok()) shared_->error = leaf.status();
        shared_->failed.store(true, std::memory_order_relaxed);
        return;
      }
      ilp_nodes += leaf->nodes_explored;
      pivots += leaf->lp_pivots;
      cuts += leaf->cuts_added;
      warm_starts += leaf->warm_starts;
      cold_restarts += leaf->cold_restarts;
      kernel.Add(leaf->lp_kernel);
      if (leaf->max_depth > max_depth) max_depth = leaf->max_depth;
      if (leaf->feasible) {
        MutexLock lock(&shared_->mu);
        if (!shared_->found.load(std::memory_order_relaxed)) {
          shared_->solution.feasible = true;
          shared_->solution.values = std::move(leaf->values);
          shared_->found.store(true, std::memory_order_relaxed);
        }
      }
      return;
    }

    const Conditional& cond = (*shared_->active)[depth];

    // Branch 1: conclusion ≥ 1 (the conditional is discharged outright).
    system_->PushCheckpoint();
    system_->AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
    Explore(depth + 1, &tab);
    system_->PopCheckpoint();
    if (Done()) return;
    // Branch 2: premise = 0 (the premise is false; over nonnegative
    // variables this pins every term of the premise to zero).
    system_->PushCheckpoint();
    system_->AddConstraint(cond.premise, RelOp::kEq, BigInt(0));
    Explore(depth + 1, &tab);
    system_->PopCheckpoint();
  }

  // Per-worker statistics, flushed by the caller after the task finishes.
  size_t pivots = 0;
  size_t warm_starts = 0;
  size_t cold_restarts = 0;
  size_t cuts = 0;
  size_t ilp_nodes = 0;  ///< Branch-and-bound nodes inside leaf solves.
  size_t max_depth = 0;  ///< Deepest branch-and-bound node over all leaves.
  LpKernelStats kernel;  ///< Sparse LP kernel counters (DESIGN.md §12).

 private:
  bool Done() const {
    return shared_->found.load(std::memory_order_relaxed) ||
           shared_->failed.load(std::memory_order_relaxed) ||
           shared_->budget_hit.load(std::memory_order_relaxed) ||
           shared_->stopped.load(std::memory_order_relaxed);
  }

  SearchShared* shared_;
  LinearSystem* system_;
};

class CaseSplitSolver {
 public:
  /// Copying mode: the solver works on a private copy of `base`.
  CaseSplitSolver(const LinearSystem& base,
                  const std::vector<Conditional>& conditionals,
                  const IlpOptions& options, CaseSplitWarmContext* warm)
      : owned_(base),
        work_(&*owned_),
        conditionals_(conditionals),
        options_(options),
        warm_(warm) {}

  /// In-place mode: the solver appends onto `*base`'s trail. The caller owns
  /// the enclosing checkpoint that rolls those rows back.
  CaseSplitSolver(LinearSystem* base,
                  const std::vector<Conditional>& conditionals,
                  const IlpOptions& options, CaseSplitWarmContext* warm)
      : work_(base),
        conditionals_(conditionals),
        options_(options),
        warm_(warm) {}

  Result<IlpSolution> Run() {
    const auto start = std::chrono::steady_clock::now();
    if (options_.stop.Armed()) stop_ = &options_.stop;
    // Two-tier arithmetic + arena traffic: everything this solve does on the
    // calling thread (leaf ILPs, presolve probes, the sequential DFS) lands
    // in this thread's counters, so one delta at the end captures it without
    // double-counting the nested SolveIlp's own accounting. Pool workers
    // measure their own thread-local deltas and flush them atomically (see
    // RunSearch).
    counters_before_ = ThisThreadNumCounters();
    arena_before_ = ThisThreadArena().total_allocated();

    // The base basis: factorized cold exactly once — taken from the caller's
    // cross-round context when available (the connectivity-cut loop re-enters
    // here with the same base every round), solved otherwise. It warm-seeds
    // the optimistic leaf, the presolve probes, and the DFS root alike.
    // On the warm path the leaf reads the context's basis in place — no
    // copy. `base_tab` (the solver's own mutable basis for presolve and the
    // DFS) is only materialized if the leaf fails to settle the query, which
    // keeps the common consistent-spec round at a single tableau duplication
    // (the leaf root's, into the context's capacity-warmed scratch).
    LpTableau base_tab;
    const LpTableau* base_ro = nullptr;
    bool tab_ok = false;
    if (options_.warm_start && warm_ != nullptr && warm_->valid) {
      XICC_DCHECK_AUDIT(AuditTableau(*work_, warm_->base_tableau));
      base_ro = &warm_->base_tableau;
      tab_ok = true;
    } else {
      ++cold_restarts_;
      LpResult lp = SolveLpFeasibility(*work_, &base_tab, stop_);
      pivots_ += lp.pivots;
      kernel_.Add(lp);
      if (lp.aborted) return NoVerdict(stop_->ToStatus(), nullptr, start);
      if (!lp.feasible) return AssembleInfeasible(start);
      tab_ok = true;
      base_ro = &base_tab;
      if (warm_ != nullptr) {
        warm_->base_tableau = base_tab;
        warm_->valid = true;
      }
    }

    // Optimistic leaf: resolve every conditional to its conclusion ≥ 1 and
    // try that single system first. Consistent specifications normally
    // populate all their element types, so this one ILP call settles them
    // without touching the exponential split.
    {
      work_->PushCheckpoint();
      for (const Conditional& cond : conditionals_) {
        work_->AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
      }
      IlpOptions leaf_options = options_;
      if (warm_ != nullptr && leaf_options.root_scratch == nullptr) {
        leaf_options.root_scratch = &warm_->root_scratch;
      }
      // Private partial sink: a stopped leaf's work must fold into THIS
      // solver's totals before they reach the caller's partial pointer.
      IlpSolution leaf_partial;
      leaf_options.partial = &leaf_partial;
      Result<IlpSolution> leaf =
          SolveIlp(*work_, leaf_options, tab_ok ? base_ro : nullptr);
      work_->PopCheckpoint();
      if (!leaf.ok()) {
        Accumulate(leaf_partial);
        return NoVerdict(leaf.status(), nullptr, start);
      }
      if (leaf->feasible) {
        Accumulate(*leaf);
        IlpSolution out = std::move(*leaf);
        out.nodes_explored = nodes_;
        out.lp_pivots = pivots_;
        out.cuts_added = cuts_;
        out.warm_starts = warm_starts_;
        out.cold_restarts = cold_restarts_;
        out.lp_kernel = kernel_;
        out.max_depth = max_depth_;
        FillNumStats(&out);
        out.wall_ms = ElapsedMs(start);
        return out;
      }
      Accumulate(*leaf);
    }

    // The split machinery below mutates its basis (presolve extends it over
    // forced rows); give it a private copy if it is still aliasing the
    // caller's context.
    if (base_ro != &base_tab) base_tab = *base_ro;

    // Presolve: a conditional whose premise cannot vanish (base + premise=0
    // is LP-infeasible) has a forced conclusion; install it as a hard row
    // and drop the conditional from the exponential split. Typical win:
    // ext(τ) of unavoidable element types, which the DTD pins ≥ 1. Each
    // probe is a push/solve/pop round on the one working system, re-solved
    // warm from the base basis.
    for (const Conditional& cond : conditionals_) {
      if (stop_ != nullptr && stop_->ShouldStop()) {
        return NoVerdict(stop_->ToStatus(), nullptr, start);
      }
      work_->PushCheckpoint();
      work_->AddConstraint(cond.premise, RelOp::kEq, BigInt(0));
      bool premise_can_vanish = ProbeLp(base_tab, tab_ok);
      work_->PopCheckpoint();
      if (stopped_) return NoVerdict(stop_->ToStatus(), nullptr, start);
      if (premise_can_vanish) {
        active_.push_back(cond);
        continue;
      }
      work_->AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
      if (tab_ok && options_.warm_start) {
        // Extend the working basis over the freshly forced row so later
        // probes and the DFS root stay warm; on failure the basis simply
        // keeps covering its old prefix (still a valid warm seed).
        WarmResult warm = ReSolveLpFeasibilityDual(*work_, &base_tab, stop_);
        pivots_ += warm.lp.pivots;
        kernel_.Add(warm.lp);
        if (warm.status == WarmStatus::kAborted) {
          return NoVerdict(stop_->ToStatus(), nullptr, start);
        }
        if (warm.status == WarmStatus::kOk) {
          ++warm_starts_;
          // Forced conclusions hold in every solution satisfying the
          // conditionals, so their joint infeasibility settles the verdict.
          if (!warm.lp.feasible) return AssembleInfeasible(start);
        }
      }
    }

    // The (possibly parallel) case-split DFS over the surviving
    // conditionals.
    SearchShared shared;
    shared.active = &active_;
    shared.options = options_;
    shared.stop = stop_;
    // DFS leaf solves may run on pool threads — a shared scratch or a shared
    // partial sink would race; workers keep private ones.
    shared.options.root_scratch = nullptr;
    shared.options.partial = nullptr;
    RunSearch(&base_tab, tab_ok, &shared);
    XICC_DCHECK_AUDIT(AuditTrail(*work_));

    if (shared.found.load()) {
      // All workers have exited (pool.Wait / sequential return), but the
      // annotated discipline still wants the lock for the guarded move.
      MutexLock lock(&shared.mu);
      IlpSolution out = std::move(shared.solution);
      FillStats(&out, shared);
      out.wall_ms = ElapsedMs(start);
      return out;
    }
    if (shared.failed.load()) {
      MutexLock lock(&shared.mu);
      return shared.error;
    }
    if (shared.stopped.load()) {
      // A worker observed the stop (or a leaf returned a stop status, kept
      // in shared.error). The signal's own status wins so the caller sees
      // why the check has no verdict.
      Status status;
      {
        MutexLock lock(&shared.mu);
        status = !shared.error.ok()
                     ? shared.error
                     : (stop_ != nullptr
                            ? stop_->ToStatus()
                            : Status::Cancelled("case-split was stopped"));
      }
      return NoVerdict(status, &shared, start);
    }
    if (shared.budget_hit.load()) {
      return NoVerdict(Status::ResourceExhausted(
                           "conditional case-split exceeded node budget"),
                       &shared, start);
    }
    IlpSolution out;
    out.feasible = false;
    FillStats(&out, shared);
    out.wall_ms = ElapsedMs(start);
    return out;
  }

 private:
  // Timing only, never a verdict. xicc-lint: allow(exact-arithmetic)
  static double ElapsedMs(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(  // xicc-lint: allow(exact-arithmetic)
               std::chrono::steady_clock::now() - start)
        .count();
  }

  void Accumulate(const IlpSolution& partial) {
    nodes_ += partial.nodes_explored;
    pivots_ += partial.lp_pivots;
    cuts_ += partial.cuts_added;
    warm_starts_ += partial.warm_starts;
    cold_restarts_ += partial.cold_restarts;
    kernel_.Add(partial.lp_kernel);
    if (partial.max_depth > max_depth_) max_depth_ = partial.max_depth;
  }

  /// LP feasibility of the current work_ state, warm from `base_tab` when
  /// usable; used by the presolve probes (verdict only, no tableau kept).
  bool ProbeLp(const LpTableau& base_tab, bool tab_ok) {
    if (tab_ok && options_.warm_start) {
      LpTableau probe = base_tab;
      WarmResult warm = ReSolveLpFeasibilityDualInPlace(*work_, &probe, stop_);
      pivots_ += warm.lp.pivots;
      kernel_.Add(warm.lp);
      if (warm.status == WarmStatus::kAborted) {
        stopped_ = true;
        return false;  // Meaningless; the caller checks stopped_ first.
      }
      if (warm.status == WarmStatus::kOk) {
        ++warm_starts_;
        return warm.lp.feasible;
      }
    }
    ++cold_restarts_;
    LpResult lp = SolveLpFeasibility(*work_, nullptr, stop_);
    pivots_ += lp.pivots;
    kernel_.Add(lp);
    if (lp.aborted) {
      stopped_ = true;
      return false;
    }
    return lp.feasible;
  }

  void RunSearch(LpTableau* root_tab, bool tab_ok, SearchShared* shared) {
    const LpTableau* root = tab_ok ? root_tab : nullptr;
    const size_t threads = options_.num_threads;
    if (threads <= 1 || active_.size() < 2) {
      SplitWorker worker(shared, work_);
      worker.Explore(0, root);
      FlushWorker(worker);
      return;
    }

    // Fan the first `levels` resolutions out as 2^levels prefix tasks on a
    // work-stealing pool; each task owns a private copy of the system and
    // runs the deeper levels sequential-warm-started. One extra level past
    // log2(threads) oversubscribes the pool so an uneven subtree cannot
    // leave workers idle.
    size_t levels = 1;
    while (levels < active_.size() && (size_t{1} << levels) < 2 * threads) {
      ++levels;
    }
    if (levels > active_.size()) levels = active_.size();
    const size_t num_tasks = size_t{1} << levels;

    std::atomic<size_t> pivots{0};
    std::atomic<size_t> warm_starts{0};
    std::atomic<size_t> cold_restarts{0};
    std::atomic<size_t> cuts{0};
    std::atomic<size_t> ilp_nodes{0};
    std::atomic<size_t> deepest{0};
    std::atomic<uint64_t> small_ops{0};
    std::atomic<uint64_t> big_ops{0};
    std::atomic<uint64_t> promotions{0};
    std::atomic<uint64_t> demotions{0};
    std::atomic<uint64_t> arena_bytes{0};
    // The eight sparse-kernel counters travel as one struct under a leaf
    // mutex instead of eight more atomics — the flush runs once per prefix
    // task, never inside a pivot loop.
    Mutex kernel_mu;  // xicc-analyze: lock-leaf
    LpKernelStats kernel_delta;
    {
      // Constructed with the solve's cancel token (when any): Cancel() then
      // wakes parked workers and the pool drains unstarted prefix tasks
      // without running them — the fan-out itself honors the stop.
      WorkStealingPool pool(threads,
                            stop_ != nullptr ? stop_->cancel : nullptr);
      for (size_t mask = 0; mask < num_tasks; ++mask) {
        // Bit i of `mask` picks conditional i's resolution; enumeration
        // order matches the sequential DFS (conclusion side first).
        pool.Submit([this, mask, levels, root, shared, &pivots, &warm_starts,
                     &cold_restarts, &cuts, &ilp_nodes, &deepest, &small_ops,
                     &big_ops, &promotions, &demotions, &arena_bytes,
                     &kernel_mu, &kernel_delta] {
          if (shared->found.load(std::memory_order_relaxed) ||
              shared->failed.load(std::memory_order_relaxed) ||
              shared->budget_hit.load(std::memory_order_relaxed) ||
              shared->stopped.load(std::memory_order_relaxed)) {
            return;
          }
          if (shared->stop != nullptr && shared->stop->ShouldStop()) {
            shared->stopped.store(true, std::memory_order_relaxed);
            return;
          }
          // Thread-local arithmetic/arena deltas per task: several tasks run
          // back-to-back on one pool thread, so each brackets its own slice.
          const NumCounters num_before = ThisThreadNumCounters();
          const uint64_t bytes_before = ThisThreadArena().total_allocated();
          LinearSystem local = *work_;
          for (size_t level = 0; level < levels; ++level) {
            const Conditional& cond = active_[level];
            if ((mask >> level) & 1) {
              local.AddConstraint(cond.premise, RelOp::kEq, BigInt(0));
            } else {
              local.AddConstraint(cond.conclusion, RelOp::kGe, BigInt(1));
            }
          }
          SplitWorker worker(shared, &local);
          worker.Explore(levels, root);
          pivots.fetch_add(worker.pivots, std::memory_order_relaxed);
          warm_starts.fetch_add(worker.warm_starts,
                                std::memory_order_relaxed);
          cold_restarts.fetch_add(worker.cold_restarts,
                                  std::memory_order_relaxed);
          cuts.fetch_add(worker.cuts, std::memory_order_relaxed);
          ilp_nodes.fetch_add(worker.ilp_nodes, std::memory_order_relaxed);
          {
            MutexLock lock(&kernel_mu);
            kernel_delta.Add(worker.kernel);
          }
          size_t seen = deepest.load(std::memory_order_relaxed);
          while (worker.max_depth > seen &&
                 !deepest.compare_exchange_weak(seen, worker.max_depth,
                                                std::memory_order_relaxed)) {
          }
          const NumCounters& num_after = ThisThreadNumCounters();
          small_ops.fetch_add(num_after.small_ops - num_before.small_ops,
                              std::memory_order_relaxed);
          big_ops.fetch_add(num_after.big_ops - num_before.big_ops,
                            std::memory_order_relaxed);
          promotions.fetch_add(num_after.promotions - num_before.promotions,
                               std::memory_order_relaxed);
          demotions.fetch_add(num_after.demotions - num_before.demotions,
                              std::memory_order_relaxed);
          arena_bytes.fetch_add(
              ThisThreadArena().total_allocated() - bytes_before,
              std::memory_order_relaxed);
        });
      }
      pool.Wait();
    }
    pivots_ += pivots.load();
    warm_starts_ += warm_starts.load();
    cold_restarts_ += cold_restarts.load();
    cuts_ += cuts.load();
    nodes_ += ilp_nodes.load();
    kernel_.Add(kernel_delta);
    if (deepest.load() > max_depth_) max_depth_ = deepest.load();
    worker_small_ops_ += small_ops.load();
    worker_big_ops_ += big_ops.load();
    worker_promotions_ += promotions.load();
    worker_demotions_ += demotions.load();
    worker_arena_bytes_ += arena_bytes.load();
  }

  void FlushWorker(const SplitWorker& worker) {
    pivots_ += worker.pivots;
    warm_starts_ += worker.warm_starts;
    cold_restarts_ += worker.cold_restarts;
    cuts_ += worker.cuts;
    nodes_ += worker.ilp_nodes;
    kernel_.Add(worker.kernel);
    if (worker.max_depth > max_depth_) max_depth_ = worker.max_depth;
  }

  void FillStats(IlpSolution* out, const SearchShared& shared) {
    out->nodes_explored = nodes_ + shared.nodes.load();
    out->lp_pivots = pivots_;
    out->cuts_added = cuts_;
    out->warm_starts = warm_starts_;
    out->cold_restarts = cold_restarts_;
    out->lp_kernel = kernel_;
    out->max_depth = max_depth_;
    FillNumStats(out);
  }

  /// Assembles the no-verdict exit: `status` says why there is no answer,
  /// and the caller's partial sink (when given) receives everything counted
  /// so far — the work already done is part of the contract.
  Status NoVerdict(Status status, const SearchShared* shared,
                   std::chrono::steady_clock::time_point start) {
    if (options_.partial != nullptr) {
      IlpSolution out;
      out.feasible = false;
      out.nodes_explored =
          nodes_ + (shared != nullptr ? shared->nodes.load() : 0);
      out.lp_pivots = pivots_;
      out.cuts_added = cuts_;
      out.warm_starts = warm_starts_;
      out.cold_restarts = cold_restarts_;
      out.lp_kernel = kernel_;
      out.max_depth = max_depth_;
      FillNumStats(&out);
      out.wall_ms = ElapsedMs(start);
      *options_.partial = out;
    }
    return status;
  }

  /// Calling-thread delta since Run() started, plus whatever the pool
  /// workers flushed. Leaf SolveIlp calls report their own slices too, but
  /// those slices are *contained* in this thread's running counters, so the
  /// delta counts them exactly once.
  void FillNumStats(IlpSolution* out) const {
    const NumCounters& now = ThisThreadNumCounters();
    out->num_small_ops =
        now.small_ops - counters_before_.small_ops + worker_small_ops_;
    out->num_big_ops = now.big_ops - counters_before_.big_ops + worker_big_ops_;
    out->num_promotions =
        now.promotions - counters_before_.promotions + worker_promotions_;
    out->num_demotions =
        now.demotions - counters_before_.demotions + worker_demotions_;
    out->arena_bytes = ThisThreadArena().total_allocated() - arena_before_ +
                       worker_arena_bytes_;
  }

  Result<IlpSolution> AssembleInfeasible(
      std::chrono::steady_clock::time_point start) {
    IlpSolution out;
    out.feasible = false;
    out.nodes_explored = nodes_;
    out.lp_pivots = pivots_;
    out.cuts_added = cuts_;
    out.warm_starts = warm_starts_;
    out.cold_restarts = cold_restarts_;
    out.lp_kernel = kernel_;
    FillNumStats(&out);
    out.wall_ms = ElapsedMs(start);
    return out;
  }

  std::optional<LinearSystem> owned_;  // Copying mode only.
  LinearSystem* work_;                 // Points at owned_ or the caller's.
  const std::vector<Conditional>& conditionals_;
  std::vector<Conditional> active_;  // Survivors of presolve.
  IlpOptions options_;
  CaseSplitWarmContext* warm_;
  /// Non-null iff options_.stop is armed; points into options_.
  const StopSignal* stop_ = nullptr;
  /// Set when a presolve-phase LP solve was aborted by the stop signal
  /// (ProbeLp cannot return the fact any other way).
  bool stopped_ = false;

  // Statistics accumulated outside the DFS (optimistic leaf, presolve) and
  // flushed from workers after it.
  size_t nodes_ = 0;
  size_t pivots_ = 0;
  size_t cuts_ = 0;
  size_t warm_starts_ = 0;
  size_t cold_restarts_ = 0;
  size_t max_depth_ = 0;
  LpKernelStats kernel_;

  // Two-tier arithmetic accounting (see Run/FillNumStats): calling-thread
  // baselines plus the pool workers' flushed deltas.
  NumCounters counters_before_;
  uint64_t arena_before_ = 0;
  uint64_t worker_small_ops_ = 0;
  uint64_t worker_big_ops_ = 0;
  uint64_t worker_promotions_ = 0;
  uint64_t worker_demotions_ = 0;
  uint64_t worker_arena_bytes_ = 0;
};

}  // namespace

Result<IlpSolution> SolveWithConditionals(
    const LinearSystem& base, const std::vector<Conditional>& conditionals,
    const IlpOptions& options, CaseSplitWarmContext* warm) {
  CaseSplitSolver solver(base, conditionals, options, warm);
  return solver.Run();
}

Result<IlpSolution> SolveWithConditionalsInPlace(
    LinearSystem* base, const std::vector<Conditional>& conditionals,
    const IlpOptions& options, CaseSplitWarmContext* warm) {
  // One enclosing checkpoint rolls back everything the solver appends —
  // including presolve's forced-conclusion rows, which land outside the
  // solver's own per-branch checkpoints by design (they hold for the whole
  // solve, but not beyond it).
  TrailScope scope(base);
  CaseSplitSolver solver(base, conditionals, options, warm);
  return solver.Run();
}

}  // namespace xicc
