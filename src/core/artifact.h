#pragma once

// Persistent CompiledDtd artifacts.
//
// CompileDtd is fully deterministic in the DTD, but until this layer its
// output died with the process — every CLI run and bench re-derived grammar
// facts, Glushkov DFAs, the minimal-tree plan, and the attribute-pair LP
// skeleton from scratch. This header gives the Σ-independent bundle a
// durable form: a versioned, endian-stable container (base/serde) whose
// flat sections — DFA transition tables, LP tableau rows — load zero-copy
// from a mmap'd file, so a warm start does integrity checks and fix-ups
// instead of simplification, subset construction, and phase-1 simplex.
//
// Integrity is layered:
//  1. serde header + per-section FNV-1a checksums reject truncation,
//     bit flips, foreign endianness, and format-version skew;
//  2. the container's content key must equal DtdContentHash of the DTD the
//     artifact decodes to (and of the DTD the caller wants, when loading
//     through the cache);
//  3. optionally (ArtifactVerify::kDeep), CompiledDtdDigest (the semantic
//     digest over the skeleton system, variable tables, tableau, and facts)
//     is recomputed after decode and compared against the digest stamped at
//     compile time — the same bit-identical-inputs check XICC_AUDIT uses
//     for the sharing contract, so a loaded artifact provably seeds session
//     warm starts exactly like the compile it was stored from. Layer 3
//     guards against decoder bugs, not disk corruption (layers 1–2 already
//     reject every flipped bit); the round-trip tests run it on every
//     artifact shape, so the default load path skips the recompute — it
//     costs as much as the rest of the decode combined.
// Every failure is Status::kInvalidArgument; callers fall back to a cold
// CompileDtd.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "core/spec_session.h"
#include "dtd/dtd.h"

namespace xicc {

/// Bump on ANY change to the serialized layout; readers reject other
/// versions and the cache treats them as misses (the version is part of the
/// cache file name, so old artifacts are simply never opened).
inline constexpr uint32_t kArtifactFormatVersion = 1;

/// FNV-1a 64 over the DTD's canonical rendering — the artifact cache key.
/// Two DTDs with the same declarations (same order, same content models)
/// hash alike regardless of how they were built.
uint64_t DtdContentHash(const Dtd& dtd);

/// Cache file name for `dtd` under the current format version:
/// "xicc-<content-hash-hex>-v<version>.xac".
std::string ArtifactFileName(const Dtd& dtd);

/// Serializes the full bundle into a standalone artifact container.
Result<std::string> SerializeCompiledDtd(const CompiledDtd& compiled);

/// Integrity depth for artifact decode (see the layer list above).
enum class ArtifactVerify {
  kChecksums,  ///< Layers 1–2: serde checksums + content-key match.
  kDeep,       ///< Additionally recompute and match the semantic digest.
};

/// Decodes an artifact. When `backing` is non-null the returned bundle's
/// flat tables point directly into `bytes` and `backing` is retained to
/// keep that memory alive (the zero-copy path); when null, flat tables are
/// copied so `bytes` may be discarded. Any integrity failure is
/// kInvalidArgument.
Result<std::shared_ptr<const CompiledDtd>> DeserializeCompiledDtd(
    std::string_view bytes, std::shared_ptr<const void> backing = nullptr,
    ArtifactVerify verify = ArtifactVerify::kChecksums);

/// Serializes and durably writes `compiled` to `path` (atomic
/// write-then-rename; concurrent readers never see a torn file).
Status StoreCompiledDtd(const CompiledDtd& compiled, const std::string& path);

/// How a LoadCompiledDtd call sourced its bytes.
struct ArtifactLoadInfo {
  bool mmap = false;   ///< Zero-copy mapping vs. read-into-memory fallback.
  size_t bytes = 0;    ///< Artifact size on disk.
};

/// Loads an artifact from disk, preferring the zero-copy mmap path and
/// falling back to a buffered read when mapping fails. The mapping (or
/// buffer) is owned by the returned bundle and lives as long as it does.
Result<std::shared_ptr<const CompiledDtd>> LoadCompiledDtd(
    const std::string& path, ArtifactLoadInfo* info = nullptr,
    ArtifactVerify verify = ArtifactVerify::kChecksums);

}  // namespace xicc
