#pragma once

// A bounded, self-healing table of long-lived SpecSessions — the core-layer
// state store behind xiccd's session verbs, factored here (not in src/net)
// because eviction, quarantine, and exclusive checkout are session
// semantics, not transport semantics.
//
// Degradation model, in order of preference:
//
//   1. LRU idle eviction — a full table first evicts its least-recently
//      used non-busy session (and a periodic sweep reclaims sessions idle
//      past a TTL) before refusing work. Clients are expected to handle
//      "unknown session" by reopening; the artifact behind the session is
//      shared and cheap to re-bind.
//   2. Quarantine — a session whose queries keep ending in faults
//      (deadline/cancel/resource, `quarantine_faults` of them
//      consecutively, a verdict resets the streak) stops being schedulable:
//      Acquire answers kUnavailable without touching the SpecSession. This
//      is the CheckBatch quarantine rule applied to interactive sessions —
//      one pathological constraint stream cannot keep burning worker
//      threads.
//   3. Shedding — only when every resident session is busy or quarantined
//      and nothing is evictable does Open refuse (kUnavailable, retryable).
//
// Thread-safety: the registry is fully thread-safe; the SpecSessions it
// stores are NOT. The checkout protocol bridges that — Acquire hands out a
// session exclusively (busy flag) and Release returns it — so any number
// of pool workers can serve session verbs concurrently while each
// SpecSession still sees the single-threaded discipline it requires. The
// internal mutex is a leaf: no callee under it takes any other lock.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/thread_annotations.h"
#include "core/spec_session.h"

namespace xicc {

struct SessionRegistryLimits {
  /// Resident-session cap; Open at the cap evicts the LRU idle session or
  /// sheds.
  size_t max_sessions = 256;
  /// Consecutive faulting queries (deadline/cancelled/resource-exhausted)
  /// after which a session is quarantined. 0 disables quarantine.
  size_t quarantine_after_faults = 3;
  /// Idle TTL for the periodic sweep (SweepIdle); 0 disables TTL eviction
  /// (LRU-on-full still applies).
  int64_t idle_ttl_ms = 300'000;
};

/// Cumulative counters (monotone) plus point-in-time gauges.
struct SessionRegistryStats {
  uint64_t opened = 0;
  uint64_t closed = 0;
  uint64_t evicted = 0;      ///< LRU-on-full + TTL sweep victims.
  uint64_t quarantined = 0;  ///< Sessions that crossed the fault threshold.
  size_t resident = 0;       ///< Gauge: sessions in the table now.
  size_t busy = 0;           ///< Gauge: sessions checked out right now.
};

class SessionRegistry {
 public:
  explicit SessionRegistry(const SessionRegistryLimits& limits);
  ~SessionRegistry();

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Creates a session over `compiled` and returns its id (ids are never
  /// reused). At capacity, evicts the LRU non-busy non-doomed session
  /// first; if nothing is evictable, sheds with kUnavailable.
  Result<uint64_t> Open(std::shared_ptr<const CompiledDtd> compiled,
                        const ConsistencyOptions& options,
                        size_t memo_capacity);

  /// Exclusive checkout. Errors: kInvalidArgument (unknown id — closed,
  /// evicted, or never existed), kUnavailable (busy: one request per
  /// session at a time; or quarantined). On success the caller MUST pair
  /// with Release; the session stays exclusively theirs until then.
  Result<SpecSession*> Acquire(uint64_t id);

  /// Returns a checked-out session. `faulted` = the query ended without a
  /// verdict for a load-shaped reason (deadline/cancel/resource); a
  /// `faulted` streak of quarantine_after_faults quarantines the session,
  /// a non-faulted Release resets the streak. A session doomed by Close
  /// while busy is destroyed here.
  void Release(uint64_t id, bool faulted);

  /// Closes a session. Busy sessions are marked doomed and die on Release
  /// (Close never blocks). kInvalidArgument on unknown id.
  Status CloseSession(uint64_t id);

  /// TTL sweep: evicts every non-busy session idle for more than
  /// idle_ttl_ms. `now_ms` is the caller's monotonic clock (NowMs());
  /// returns the number evicted. No-op when idle_ttl_ms == 0.
  size_t SweepIdle(int64_t now_ms);

  /// Evicts everything not busy; dooms what is busy. After the owning
  /// server has drained (no checkouts outstanding), the registry is empty.
  void CloseAll();

  SessionRegistryStats stats() const;

  /// Monotonic milliseconds for SweepIdle callers (steady clock — wall
  /// time never goes backwards on it).
  static int64_t NowMs();

 private:
  struct Entry {
    std::unique_ptr<SpecSession> session;
    bool busy = false;
    bool doomed = false;       // Close() arrived while busy.
    bool quarantined = false;
    size_t fault_streak = 0;
    int64_t last_touch_ms = 0;
    uint64_t lru_stamp = 0;    // Logical clock; min = least recently used.
  };

  /// Drops `it`'s entry (caller holds mu_). Precondition: !busy.
  void EraseLocked(std::unordered_map<uint64_t, Entry>::iterator it)
      XICC_REQUIRES(mu_);

  const SessionRegistryLimits limits_;
  mutable Mutex mu_;  // xicc-analyze: lock-leaf
  std::unordered_map<uint64_t, Entry> table_ XICC_GUARDED_BY(mu_);
  uint64_t next_id_ XICC_GUARDED_BY(mu_) = 1;
  uint64_t lru_clock_ XICC_GUARDED_BY(mu_) = 0;
  SessionRegistryStats stats_ XICC_GUARDED_BY(mu_);
};

}  // namespace xicc
