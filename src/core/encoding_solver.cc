#include "core/encoding_solver.h"

#include <deque>
#include <map>
#include <set>
#include <string>

namespace xicc {

namespace {

/// Element types with ext(τ) > 0 that no chain of positive occurrence
/// variables connects to the root; empty set ⇔ realizable as a tree.
std::set<std::string> PhantomSupport(const CardinalityEncoding& encoding,
                                     const IlpSolution& solution) {
  const Dtd& dn = encoding.simplified.dtd;
  // Support adjacency: parent type → child symbols along positive edges.
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& occ : encoding.occurrences) {
    if (solution.values[occ.var] > BigInt(0)) {
      edges[occ.parent].push_back(occ.child);
    }
  }
  std::set<std::string> reached;
  std::deque<std::string> queue;
  reached.insert(dn.root());
  queue.push_back(dn.root());
  while (!queue.empty()) {
    std::string type = queue.front();
    queue.pop_front();
    auto it = edges.find(type);
    if (it == edges.end()) continue;
    for (const std::string& child : it->second) {
      if (child == "S") continue;
      if (reached.insert(child).second) queue.push_back(child);
    }
  }

  std::set<std::string> phantom;
  for (const auto& [symbol, var] : encoding.ext_var) {
    if (symbol == "S") continue;
    if (solution.values[var] > BigInt(0) && reached.count(symbol) == 0) {
      phantom.insert(symbol);
    }
  }
  return phantom;
}

}  // namespace

bool SupportIsConnected(const CardinalityEncoding& encoding,
                        const IlpSolution& solution) {
  return PhantomSupport(encoding, solution).empty();
}

Result<IlpSolution> SolveEncodingSystem(const CardinalityEncoding& encoding,
                                        const LinearSystem& system,
                                        const EncodingSolveOptions& options) {
  LinearSystem work = system;
  return SolveEncodingSystemInPlace(encoding, &work, encoding.conditionals,
                                    options, /*warm=*/nullptr);
}

Result<IlpSolution> SolveEncodingSystemInPlace(
    const CardinalityEncoding& encoding, LinearSystem* system,
    const std::vector<Conditional>& base_conditionals,
    const EncodingSolveOptions& options, CaseSplitWarmContext* warm) {
  std::vector<Conditional> conditionals = base_conditionals;
  IlpSolution accumulated;
  // The base system never changes across connectivity rounds — only the
  // conditional set grows by one lazy cut per round — so the base LP basis
  // is factorized cold once (or supplied pre-factorized by a session) and
  // every later round's presolve probes and DFS root become warm
  // dual-simplex re-solves against it.
  CaseSplitWarmContext local_warm;
  if (warm == nullptr) warm = &local_warm;
  for (size_t round = 0; round < options.max_connectivity_rounds; ++round) {
    Result<IlpSolution> solved =
        options.strategy == EncodingStrategy::kCaseSplit
            ? SolveWithConditionalsInPlace(system, conditionals, options.ilp,
                                           warm)
            : SolveIlp(ApplyBigMLinearization(*system, conditionals),
                       options.ilp);
    if (!solved.ok()) return solved.status();
    solved->nodes_explored += accumulated.nodes_explored;
    solved->lp_pivots += accumulated.lp_pivots;
    solved->cuts_added += accumulated.cuts_added;
    solved->warm_starts += accumulated.warm_starts;
    solved->cold_restarts += accumulated.cold_restarts;
    solved->num_small_ops += accumulated.num_small_ops;
    solved->num_big_ops += accumulated.num_big_ops;
    solved->num_promotions += accumulated.num_promotions;
    solved->num_demotions += accumulated.num_demotions;
    solved->arena_bytes += accumulated.arena_bytes;
    solved->wall_ms += accumulated.wall_ms;
    if (!solved->feasible) return solved;

    std::set<std::string> phantom = PhantomSupport(encoding, *solved);
    if (phantom.empty()) return solved;

    // Subtour-style cut: if any phantom type is populated, some occurrence
    // edge must enter the set from outside.
    Conditional cut;
    for (const std::string& type : phantom) {
      cut.premise.Add(encoding.ext_var.at(type), BigInt(1));
    }
    for (const auto& occ : encoding.occurrences) {
      if (phantom.count(occ.child) > 0 && phantom.count(occ.parent) == 0) {
        cut.conclusion.Add(occ.var, BigInt(1));
      }
    }
    conditionals.push_back(std::move(cut));
    accumulated = std::move(*solved);
  }
  return Status::ResourceExhausted(
      "support-connectivity cuts did not converge within " +
      std::to_string(options.max_connectivity_rounds) + " rounds");
}

}  // namespace xicc
