#include "core/encoding_solver.h"

#include <deque>
#include <map>
#include <set>
#include <string>

namespace xicc {

namespace {

/// Element types with ext(τ) > 0 that no chain of positive occurrence
/// variables connects to the root; empty set ⇔ realizable as a tree.
std::set<std::string> PhantomSupport(const CardinalityEncoding& encoding,
                                     const IlpSolution& solution) {
  const Dtd& dn = encoding.simplified.dtd;
  // Support adjacency: parent type → child symbols along positive edges.
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& occ : encoding.occurrences) {
    if (solution.values[occ.var] > BigInt(0)) {
      edges[occ.parent].push_back(occ.child);
    }
  }
  std::set<std::string> reached;
  std::deque<std::string> queue;
  reached.insert(dn.root());
  queue.push_back(dn.root());
  while (!queue.empty()) {
    std::string type = queue.front();
    queue.pop_front();
    auto it = edges.find(type);
    if (it == edges.end()) continue;
    for (const std::string& child : it->second) {
      if (child == "S") continue;
      if (reached.insert(child).second) queue.push_back(child);
    }
  }

  std::set<std::string> phantom;
  for (const auto& [symbol, var] : encoding.ext_var) {
    if (symbol == "S") continue;
    if (solution.values[var] > BigInt(0) && reached.count(symbol) == 0) {
      phantom.insert(symbol);
    }
  }
  return phantom;
}

/// Adds `from`'s statistics into `into` (values/feasible untouched) — used
/// both to chain connectivity rounds and to hand earlier rounds' work to the
/// caller's partial sink when a later round is stopped.
void FoldStats(const IlpSolution& from, IlpSolution* into) {
  into->nodes_explored += from.nodes_explored;
  into->lp_pivots += from.lp_pivots;
  into->cuts_added += from.cuts_added;
  into->warm_starts += from.warm_starts;
  into->cold_restarts += from.cold_restarts;
  into->lp_kernel.Add(from.lp_kernel);
  if (from.max_depth > into->max_depth) into->max_depth = from.max_depth;
  into->num_small_ops += from.num_small_ops;
  into->num_big_ops += from.num_big_ops;
  into->num_promotions += from.num_promotions;
  into->num_demotions += from.num_demotions;
  into->arena_bytes += from.arena_bytes;
  into->wall_ms += from.wall_ms;
}

}  // namespace

bool SupportIsConnected(const CardinalityEncoding& encoding,
                        const IlpSolution& solution) {
  return PhantomSupport(encoding, solution).empty();
}

Result<IlpSolution> SolveEncodingSystem(const CardinalityEncoding& encoding,
                                        const LinearSystem& system,
                                        const EncodingSolveOptions& options) {
  LinearSystem work = system;
  return SolveEncodingSystemInPlace(encoding, &work, encoding.conditionals,
                                    options, /*warm=*/nullptr);
}

Result<IlpSolution> SolveEncodingSystemInPlace(
    const CardinalityEncoding& encoding, LinearSystem* system,
    const std::vector<Conditional>& base_conditionals,
    const EncodingSolveOptions& options, CaseSplitWarmContext* warm) {
  std::vector<Conditional> conditionals = base_conditionals;
  IlpSolution accumulated;
  // The base system never changes across connectivity rounds — only the
  // conditional set grows by one lazy cut per round — so the base LP basis
  // is factorized cold once (or supplied pre-factorized by a session) and
  // every later round's presolve probes and DFS root become warm
  // dual-simplex re-solves against it.
  CaseSplitWarmContext local_warm;
  if (warm == nullptr) warm = &local_warm;
  for (size_t round = 0; round < options.max_connectivity_rounds; ++round) {
    // Per-round stop poll: a round can only end by solving, so checking
    // between rounds plus the solver's own internal polls bounds the
    // overshoot past a deadline by one poll interval, not one round.
    if (options.ilp.stop.Armed() && options.ilp.stop.ShouldStop()) {
      if (options.ilp.partial != nullptr) {
        FoldStats(accumulated, options.ilp.partial);
      }
      return options.ilp.stop.ToStatus();
    }
    Result<IlpSolution> solved =
        options.strategy == EncodingStrategy::kCaseSplit
            ? SolveWithConditionalsInPlace(system, conditionals, options.ilp,
                                           warm)
            : SolveIlp(ApplyBigMLinearization(*system, conditionals),
                       options.ilp);
    if (!solved.ok()) {
      // The inner solver reported only its own round into the partial sink;
      // fold in what the earlier rounds already did.
      if (options.ilp.partial != nullptr) {
        FoldStats(accumulated, options.ilp.partial);
      }
      return solved.status();
    }
    FoldStats(accumulated, &*solved);
    if (!solved->feasible) return solved;

    std::set<std::string> phantom = PhantomSupport(encoding, *solved);
    if (phantom.empty()) return solved;

    // Subtour-style cut: if any phantom type is populated, some occurrence
    // edge must enter the set from outside.
    Conditional cut;
    for (const std::string& type : phantom) {
      cut.premise.Add(encoding.ext_var.at(type), BigInt(1));
    }
    for (const auto& occ : encoding.occurrences) {
      if (phantom.count(occ.child) > 0 && phantom.count(occ.parent) == 0) {
        cut.conclusion.Add(occ.var, BigInt(1));
      }
    }
    conditionals.push_back(std::move(cut));
    accumulated = std::move(*solved);
  }
  return Status::ResourceExhausted(
      "support-connectivity cuts did not converge within " +
      std::to_string(options.max_connectivity_rounds) + " rounds");
}

}  // namespace xicc
