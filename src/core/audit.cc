#include "core/audit.h"

#include <cstdint>
#include <string>
#include <vector>

namespace xicc {

namespace {

/// FNV-1a, 64-bit.
struct Digest {
  uint64_t state = 14695981039346656037ull;

  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
};

}  // namespace

uint64_t CompiledDtdDigest(const CompiledDtd& compiled) {
  Digest d;

  // The Σ-independent skeleton: every row and variable of Ψ's shared part.
  d.Str(compiled.skeleton.system.ToString());
  d.U64(compiled.skeleton.system.NumVariables());
  d.U64(compiled.skeleton.system.CheckpointDepth());
  for (const auto& [symbol, var] : compiled.skeleton.ext_var) {
    d.Str(symbol);
    d.U64(static_cast<uint64_t>(var));
  }
  for (const auto& [pair, var] : compiled.skeleton.attr_var) {
    d.Str(pair.first);
    d.Str(pair.second);
    d.U64(static_cast<uint64_t>(var));
  }

  // The factorized skeleton basis every session warm-starts from.
  d.U64(compiled.skeleton_tableau_valid ? 1 : 0);
  const LpTableau& tab = compiled.skeleton_tableau;
  d.U64(tab.num_constraints);
  d.U64(tab.columns.size());
  for (const LpColumnInfo& column : tab.columns) {
    d.U64(column.kind == LpColumnInfo::Kind::kStructural ? 0 : 1);
    d.U64(static_cast<uint64_t>(static_cast<int64_t>(column.index)));
    d.U64(static_cast<uint64_t>(static_cast<int64_t>(column.sub_sign)));
  }
  d.U64(tab.basis.size());
  for (int b : tab.basis) d.U64(static_cast<uint64_t>(static_cast<int64_t>(b)));
  for (const Num& r : tab.rhs) d.Str(r.ToString());
  for (const std::vector<Num>& row : tab.rows) {
    for (const Num& r : row) {
      if (!r.is_zero()) d.Str(r.ToString());
      d.U64(r.is_zero() ? 0 : 1);
    }
  }

  // The linear-cell facts.
  d.U64(compiled.facts.has_valid_tree ? 1 : 0);
  for (const auto& [symbol, mult] : compiled.facts.multiplicity) {
    d.Str(symbol);
    d.U64(static_cast<uint64_t>(mult));
  }
  return d.state;
}

std::vector<std::string> AuditCompiledDtd(const CompiledDtd& compiled) {
  std::vector<std::string> out;
  const uint64_t now = CompiledDtdDigest(compiled);
  if (compiled.audit_digest != 0 && now != compiled.audit_digest) {
    out.push_back(
        "compiled-DTD digest changed: compiled with " +
        std::to_string(compiled.audit_digest) + ", now " +
        std::to_string(now) +
        " — a session or solver wrote through the shared read-only artifact");
  }
  return out;
}

}  // namespace xicc
