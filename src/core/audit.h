#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec_session.h"

namespace xicc {

/// Content digest of the shared compiled artifact: the skeleton system's
/// full rendering, the variable tables, the factorized skeleton basis, and
/// the grammar facts that answer linear-cell queries. Two structurally
/// identical artifacts digest equal; any mutation of a supposedly immutable
/// field changes it.
uint64_t CompiledDtdDigest(const CompiledDtd& compiled);

/// Re-digests `compiled` and compares against the digest stored by
/// CompileDtd. A mismatch means some session or solver path wrote through
/// the shared read-only artifact — the immutability contract that makes one
/// CompiledDtd safe to share across CheckBatch workers and SpecSessions.
/// Returns the violations (empty = intact), like the ilp/audit.h auditors.
std::vector<std::string> AuditCompiledDtd(const CompiledDtd& compiled);

}  // namespace xicc
