#include "core/batch.h"

#include <utility>

#include "base/worksteal.h"

namespace xicc {

namespace {

/// Per-stripe retry tallies — the only degradation numbers that cannot be
/// reconstructed from the final per-item statuses. Each worker owns its own
/// instance; no locking.
struct StripeRetries {
  size_t retries = 0;
  size_t rescues = 0;
};

/// Runs queries `worker`, `worker + stride`, … through one session. Items
/// that end without a verdict (deadline, cancel, per-item input errors) are
/// quarantined into their slot — with partial statistics — and the stripe
/// keeps draining.
void RunStripe(const std::shared_ptr<const CompiledDtd>& compiled,
               const std::vector<ConstraintSet>& queries,
               const BatchOptions& options,
               const std::shared_ptr<SharedSigmaMemo>& memo, size_t worker,
               size_t stride, std::vector<BatchItemResult>* results,
               StripeRetries* retries) {
  SpecSession session(compiled, options.check, memo);
  for (size_t i = worker; i < queries.size(); i += stride) {
    BatchItemResult& slot = (*results)[i];
    if (options.cancel != nullptr && options.cancel->Cancelled()) {
      // Leave the pre-filled kCancelled sentinel in every remaining slot;
      // re-deriving fresh deadlines after a cancel would be busywork.
      return;
    }
    // Arm this item's stop: the shared batch cancel plus a fresh per-item
    // deadline. The deadline starts when the item starts, not when the
    // batch does — a slow predecessor must not starve its successors.
    StopSignal stop;
    stop.cancel = options.cancel;
    if (options.item_timeout_ms > 0) {
      stop.deadline = Deadline::After(options.item_timeout_ms);
    }
    session.SetStop(stop);
    Result<ConsistencyResult> checked = session.Check(queries[i]);
    if (!checked.ok() &&
        checked.status().code() == StatusCode::kDeadlineExceeded &&
        options.deadline_retry_factor > 0 &&
        !(options.cancel != nullptr && options.cancel->Cancelled())) {
      // One retry at the escalated budget: rescues the merely-unlucky item
      // (cold memo, slow warm-up) without letting a genuinely exploding one
      // hold the stripe past factor+1 budgets.
      ++retries->retries;
      stop.deadline = Deadline::After(
          options.item_timeout_ms *
          static_cast<int64_t>(options.deadline_retry_factor));
      session.SetStop(stop);
      checked = session.Check(queries[i]);
      if (checked.ok()) ++retries->rescues;
    }
    if (checked.ok()) {
      slot.status = Status::Ok();
      slot.result = std::move(*checked);
      slot.partial = ConsistencyStats{};
    } else {
      slot.status = checked.status();
      slot.partial = session.LastPartialStats();
    }
  }
}

}  // namespace

std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries, const BatchOptions& options,
    BatchDegradedStats* degraded) {
  std::vector<BatchItemResult> results(queries.size());
  if (degraded != nullptr) *degraded = BatchDegradedStats{};
  if (queries.empty()) return results;

  // Pre-fill every slot with the cancelled sentinel: a cancelled pool drains
  // queued stripe tasks WITHOUT running them, and those stripes' items must
  // not read as OK-with-empty-result.
  for (BatchItemResult& slot : results) {
    slot.status =
        Status::Cancelled("the batch was cancelled before this query ran");
  }

  size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  if (threads > queries.size()) threads = queries.size();
  // Oversubscription never helps a CPU-bound batch: extra workers only add
  // context switches and deque contention, which shows up as the 4-thread
  // run losing to the 1-thread run on small machines. Cap the pool at the
  // hardware width (verdicts are thread-count-independent by contract).
  const size_t hardware = HardwareConcurrency();
  if (threads > hardware) threads = hardware;
  // One memo across every stripe (hash-sharded, so workers only collide on
  // keys that share a shard); null when memoization is off so sessions skip
  // canonical-key hashing entirely.
  std::shared_ptr<SharedSigmaMemo> memo;
  if (options.memo_capacity > 0) {
    memo = std::make_shared<SharedSigmaMemo>(threads * options.memo_capacity);
  }
  std::vector<StripeRetries> retries(threads);
  if (threads <= 1) {
    RunStripe(compiled, queries, options, memo, 0, 1, &results, &retries[0]);
  } else {
    // Each worker writes only its own stripe's slots, so the result vector
    // needs no locking; the pool is just transport for the N stripes. The
    // batch cancel token rides into the pool too: Cancel() wakes parked
    // workers and drops unstarted stripes, so Wait() returns promptly.
    WorkStealingPool pool(threads, options.cancel);
    for (size_t worker = 0; worker < threads; ++worker) {
      pool.Submit([&, worker] {
        RunStripe(compiled, queries, options, memo, worker, threads, &results,
                  &retries[worker]);
      });
    }
    pool.Wait();
  }

  if (degraded != nullptr) {
    for (const StripeRetries& r : retries) {
      degraded->retries += r.retries;
      degraded->retry_rescues += r.rescues;
    }
    // Status-code tallies come from the final slots — that also counts
    // items whose stripe task was dropped by a cancelled pool.
    for (const BatchItemResult& slot : results) {
      if (slot.status.ok()) continue;
      ++degraded->quarantined;
      switch (slot.status.code()) {
        case StatusCode::kDeadlineExceeded:
          ++degraded->deadline_exceeded;
          break;
        case StatusCode::kCancelled:
          ++degraded->cancelled;
          break;
        case StatusCode::kResourceExhausted:
          ++degraded->resource_exhausted;
          break;
        default:
          break;
      }
    }
  }
  return results;
}

}  // namespace xicc
