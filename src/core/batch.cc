#include "core/batch.h"

#include <utility>

#include "base/worksteal.h"

namespace xicc {

namespace {

/// Runs queries `worker`, `worker + stride`, … through one session.
void RunStripe(const std::shared_ptr<const CompiledDtd>& compiled,
               const std::vector<ConstraintSet>& queries,
               const BatchOptions& options,
               const std::shared_ptr<SharedSigmaMemo>& memo, size_t worker,
               size_t stride, std::vector<BatchItemResult>* results) {
  SpecSession session(compiled, options.check, memo);
  for (size_t i = worker; i < queries.size(); i += stride) {
    Result<ConsistencyResult> checked = session.Check(queries[i]);
    BatchItemResult& slot = (*results)[i];
    if (checked.ok()) {
      slot.status = Status::Ok();
      slot.result = std::move(*checked);
    } else {
      slot.status = checked.status();
    }
  }
}

}  // namespace

std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries, const BatchOptions& options) {
  std::vector<BatchItemResult> results(queries.size());
  if (queries.empty()) return results;

  size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  if (threads > queries.size()) threads = queries.size();
  // Oversubscription never helps a CPU-bound batch: extra workers only add
  // context switches and deque contention, which shows up as the 4-thread
  // run losing to the 1-thread run on small machines. Cap the pool at the
  // hardware width (verdicts are thread-count-independent by contract).
  const size_t hardware = HardwareConcurrency();
  if (threads > hardware) threads = hardware;
  // One memo across every stripe (hash-sharded, so workers only collide on
  // keys that share a shard); null when memoization is off so sessions skip
  // canonical-key hashing entirely.
  std::shared_ptr<SharedSigmaMemo> memo;
  if (options.memo_capacity > 0) {
    memo = std::make_shared<SharedSigmaMemo>(threads * options.memo_capacity);
  }
  if (threads <= 1) {
    RunStripe(compiled, queries, options, memo, 0, 1, &results);
    return results;
  }

  // Each worker writes only its own stripe's slots, so the result vector
  // needs no locking; the pool is just transport for the N stripes.
  WorkStealingPool pool(threads);
  for (size_t worker = 0; worker < threads; ++worker) {
    pool.Submit([&, worker] {
      RunStripe(compiled, queries, options, memo, worker, threads, &results);
    });
  }
  pool.Wait();
  return results;
}

}  // namespace xicc
