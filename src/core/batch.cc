#include "core/batch.h"

#include <algorithm>
#include <utility>

#include "base/worksteal.h"

namespace xicc {

namespace {

/// Uniform view over the single-DTD and multi-DTD entry points, so the
/// scheduler below has exactly one implementation. No copies: both shapes
/// are referenced in place.
struct QueryView {
  const std::vector<ConstraintSet>* single = nullptr;
  const std::vector<BatchQuery>* multi = nullptr;

  size_t size() const {
    return single != nullptr ? single->size() : multi->size();
  }
  size_t DtdIndex(size_t i) const {
    return single != nullptr ? 0 : (*multi)[i].dtd_index;
  }
  const ConstraintSet& Sigma(size_t i) const {
    return single != nullptr ? (*single)[i] : (*multi)[i].sigma;
  }
};

/// One chunk of work: a run of query indices, all against the same DTD.
struct Chunk {
  size_t dtd_index = 0;
  std::vector<size_t> items;
};

/// Per-chunk tallies — owned by exactly one pool task, merged after the
/// pool drains. Retry counts cannot be reconstructed from final statuses;
/// session acquire outcomes feed the setup-amortization stats.
struct ChunkTally {
  size_t retries = 0;
  size_t rescues = 0;
  size_t session_reused = 0;  // 1 if the chunk ran on a pooled session.
  size_t session_created = 0;
};

/// A free-list of reusable worker sessions over one CompiledDtd. Chunks
/// acquire at start and release at end, so the lock is taken twice per
/// CHUNK (not per query) and held for O(1) pointer work — session setup
/// (the skeleton + tableau copy inside the SpecSession constructor) is
/// paid once per worker per DTD in the steady state, not once per stripe.
class SessionPool {
 public:
  SessionPool(std::shared_ptr<const CompiledDtd> compiled,
              const ConsistencyOptions& check,
              std::shared_ptr<SharedSigmaMemo> memo)
      : compiled_(std::move(compiled)), check_(check), memo_(std::move(memo)) {}

  std::unique_ptr<SpecSession> Acquire(ChunkTally* tally) {
    {
      MutexLock lock(&mu_);
      if (!free_.empty()) {
        std::unique_ptr<SpecSession> session = std::move(free_.back());
        free_.pop_back();
        tally->session_reused = 1;
        return session;
      }
    }
    tally->session_created = 1;
    return std::make_unique<SpecSession>(compiled_, check_, memo_);
  }

  void Release(std::unique_ptr<SpecSession> session) {
    MutexLock lock(&mu_);
    free_.push_back(std::move(session));
  }

  /// Post-drain aggregation: every session ever created is back in the
  /// free list once the pool has no tasks in flight.
  template <typename Fn>
  void ForEachSession(Fn fn) {
    MutexLock lock(&mu_);
    for (const std::unique_ptr<SpecSession>& session : free_) fn(*session);
  }

 private:
  std::shared_ptr<const CompiledDtd> compiled_;
  ConsistencyOptions check_;
  std::shared_ptr<SharedSigmaMemo> memo_;
  Mutex mu_;  // xicc-analyze: lock-leaf
  std::vector<std::unique_ptr<SpecSession>> free_ XICC_GUARDED_BY(mu_);
};

/// Runs one chunk's queries through one pooled session. Items that end
/// without a verdict (deadline, cancel, per-item input errors) are
/// quarantined into their slot — with partial statistics — and the chunk
/// keeps draining.
void RunChunk(const QueryView& queries, const Chunk& chunk,
              const BatchOptions& options, SessionPool* pool,
              std::vector<BatchItemResult>* results, ChunkTally* tally) {
  if (options.cancel != nullptr && options.cancel->Cancelled()) {
    // Leave the pre-filled kCancelled sentinel in every slot; re-deriving
    // fresh deadlines after a cancel would be busywork.
    return;
  }
  std::unique_ptr<SpecSession> session = pool->Acquire(tally);
  for (size_t i : chunk.items) {
    BatchItemResult& slot = (*results)[i];
    if (options.cancel != nullptr && options.cancel->Cancelled()) break;
    // Arm this item's stop: the shared batch cancel plus a fresh per-item
    // deadline. The deadline starts when the item starts, not when the
    // batch does — a slow predecessor must not starve its successors.
    StopSignal stop;
    stop.cancel = options.cancel;
    if (options.item_timeout_ms > 0) {
      stop.deadline = Deadline::After(options.item_timeout_ms);
    }
    session->SetStop(stop);
    Result<ConsistencyResult> checked = session->Check(queries.Sigma(i));
    if (!checked.ok() &&
        checked.status().code() == StatusCode::kDeadlineExceeded &&
        options.deadline_retry_factor > 0 &&
        !(options.cancel != nullptr && options.cancel->Cancelled())) {
      // One retry at the escalated budget: rescues the merely-unlucky item
      // (cold memo, slow warm-up) without letting a genuinely exploding one
      // hold the chunk past factor+1 budgets.
      ++tally->retries;
      stop.deadline = Deadline::After(
          options.item_timeout_ms *
          static_cast<int64_t>(options.deadline_retry_factor));
      session->SetStop(stop);
      checked = session->Check(queries.Sigma(i));
      if (checked.ok()) ++tally->rescues;
    }
    StageTimer write_timer(&session->stage_tally(), Stage::kResultWrite);
    if (checked.ok()) {
      slot.status = Status::Ok();
      slot.result = std::move(*checked);
      slot.partial = ConsistencyStats{};
    } else {
      slot.status = checked.status();
      slot.partial = session->LastPartialStats();
    }
  }
  // Disarm before pooling: the next chunk arms its own stop signal.
  session->SetStop(StopSignal{});
  pool->Release(std::move(session));
}

std::vector<BatchItemResult> CheckBatchImpl(
    const std::vector<std::shared_ptr<const CompiledDtd>>& compiled,
    const QueryView& queries, const BatchOptions& options,
    BatchDegradedStats* degraded, BatchRunStats* run) {
  std::vector<BatchItemResult> results(queries.size());
  if (degraded != nullptr) *degraded = BatchDegradedStats{};
  if (run != nullptr) *run = BatchRunStats{};
  if (queries.size() == 0) return results;

  // Pre-fill every slot with the cancelled sentinel: a cancelled pool drains
  // queued chunk tasks WITHOUT running them, and those chunks' items must
  // not read as OK-with-empty-result.
  for (BatchItemResult& slot : results) {
    slot.status =
        Status::Cancelled("the batch was cancelled before this query ran");
  }

  size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  if (threads > queries.size()) threads = queries.size();
  // Oversubscription never helps a CPU-bound batch: extra workers only add
  // context switches and deque contention, which shows up as the 4-thread
  // run losing to the 1-thread run on small machines. Cap the pool at the
  // hardware width (verdicts are thread-count-independent by contract) —
  // and REPORT the clamp through BatchRunStats, so a flat scaling curve on
  // a narrow machine is attributable instead of mysterious.
  const size_t hardware = HardwareConcurrency();
  if (threads > hardware) threads = hardware;

  // Resolve the chunk size: enough chunks that work-stealing can rebalance
  // around a slow item (~8 per worker), but each chunk big enough that one
  // session acquire amortizes over its items.
  size_t chunk_size = options.chunk_size;
  if (chunk_size == 0) {
    chunk_size = std::max<size_t>(1, queries.size() / (threads * 8));
  }

  // Per-DTD session pools, each with its own shared memo (the canonical
  // memo key is Σ-only, so sharing a memo across DTDs would cross-serve
  // verdicts between different schemas).
  std::vector<std::unique_ptr<SessionPool>> pools;
  pools.reserve(compiled.size());
  for (const std::shared_ptr<const CompiledDtd>& artifact : compiled) {
    std::shared_ptr<SharedSigmaMemo> memo;
    if (options.memo_capacity > 0) {
      memo = std::make_shared<SharedSigmaMemo>(
          threads * options.memo_capacity,
          /*num_shards=*/std::max<size_t>(16, threads * 4));
    }
    pools.push_back(
        std::make_unique<SessionPool>(artifact, options.check, memo));
  }

  // Build chunks: group indices by DTD (preserving batch order within each
  // group) and split every group into runs of `chunk_size`. Out-of-range
  // dtd_index values quarantine immediately — per-item failure, never a
  // batch abort.
  std::vector<Chunk> chunks;
  {
    std::vector<std::vector<size_t>> by_dtd(compiled.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const size_t dtd = queries.DtdIndex(i);
      if (dtd >= compiled.size()) {
        results[i].status = Status::InvalidArgument(
            "query references DTD index " + std::to_string(dtd) +
            " but the batch has " + std::to_string(compiled.size()) +
            " compiled DTD(s)");
        continue;
      }
      by_dtd[dtd].push_back(i);
    }
    for (size_t dtd = 0; dtd < by_dtd.size(); ++dtd) {
      const std::vector<size_t>& indices = by_dtd[dtd];
      for (size_t begin = 0; begin < indices.size(); begin += chunk_size) {
        const size_t end = std::min(indices.size(), begin + chunk_size);
        Chunk chunk;
        chunk.dtd_index = dtd;
        chunk.items.assign(indices.begin() + begin, indices.begin() + end);
        chunks.push_back(std::move(chunk));
      }
    }
  }

  std::vector<ChunkTally> tallies(chunks.size());
  if (threads <= 1) {
    for (size_t c = 0; c < chunks.size(); ++c) {
      RunChunk(queries, chunks[c], options, pools[chunks[c].dtd_index].get(),
               &results, &tallies[c]);
    }
  } else {
    // Each chunk writes only its own items' slots, so the result vector
    // needs no locking; the pool is just transport for the chunks. The
    // batch cancel token rides into the pool too: Cancel() wakes parked
    // workers and drops unstarted chunks, so Wait() returns promptly.
    WorkStealingPool pool(threads, options.cancel);
    for (size_t c = 0; c < chunks.size(); ++c) {
      pool.Submit([&, c] {
        RunChunk(queries, chunks[c], options, pools[chunks[c].dtd_index].get(),
                 &results, &tallies[c]);
      });
    }
    pool.Wait();
  }

  if (run != nullptr) {
    run->workers = threads;
    run->hardware_threads = hardware;
    run->chunks = chunks.size();
    run->chunk_size = chunk_size;
    for (const ChunkTally& tally : tallies) {
      run->session_reuses += tally.session_reused;
      run->sessions_created += tally.session_created;
    }
    for (const std::unique_ptr<SessionPool>& pool : pools) {
      pool->ForEachSession([&](const SpecSession& session) {
        run->stages.Merge(session.stage_tally());
        run->memo_hits += session.stats().memo_hits;
        run->memo_misses += session.stats().memo_misses;
        run->memo_evictions += session.stats().memo_evictions;
      });
    }
  }

  if (degraded != nullptr) {
    for (const ChunkTally& tally : tallies) {
      degraded->retries += tally.retries;
      degraded->retry_rescues += tally.rescues;
    }
    // Status-code tallies come from the final slots — that also counts
    // items whose chunk task was dropped by a cancelled pool.
    for (const BatchItemResult& slot : results) {
      if (slot.status.ok()) continue;
      ++degraded->quarantined;
      switch (slot.status.code()) {
        case StatusCode::kDeadlineExceeded:
          ++degraded->deadline_exceeded;
          break;
        case StatusCode::kCancelled:
          ++degraded->cancelled;
          break;
        case StatusCode::kResourceExhausted:
          ++degraded->resource_exhausted;
          break;
        default:
          break;
      }
    }
  }
  return results;
}

}  // namespace

std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries, const BatchOptions& options,
    BatchDegradedStats* degraded, BatchRunStats* run) {
  std::vector<std::shared_ptr<const CompiledDtd>> artifacts;
  artifacts.push_back(std::move(compiled));
  QueryView view;
  view.single = &queries;
  return CheckBatchImpl(artifacts, view, options, degraded, run);
}

std::vector<BatchItemResult> CheckBatchMulti(
    const std::vector<std::shared_ptr<const CompiledDtd>>& compiled,
    const std::vector<BatchQuery>& queries, const BatchOptions& options,
    BatchDegradedStats* degraded, BatchRunStats* run) {
  QueryView view;
  view.multi = &queries;
  return CheckBatchImpl(compiled, view, options, degraded, run);
}

}  // namespace xicc
