#include "core/batch.h"

#include <utility>

#include "base/worksteal.h"

namespace xicc {

namespace {

/// Runs queries `worker`, `worker + stride`, … through one session.
void RunStripe(const std::shared_ptr<const CompiledDtd>& compiled,
               const std::vector<ConstraintSet>& queries,
               const BatchOptions& options, size_t worker, size_t stride,
               std::vector<BatchItemResult>* results) {
  SpecSession session(compiled, options.check, options.memo_capacity);
  for (size_t i = worker; i < queries.size(); i += stride) {
    Result<ConsistencyResult> checked = session.Check(queries[i]);
    BatchItemResult& slot = (*results)[i];
    if (checked.ok()) {
      slot.status = Status::Ok();
      slot.result = std::move(*checked);
    } else {
      slot.status = checked.status();
    }
  }
}

}  // namespace

std::vector<BatchItemResult> CheckBatch(
    std::shared_ptr<const CompiledDtd> compiled,
    const std::vector<ConstraintSet>& queries, const BatchOptions& options) {
  std::vector<BatchItemResult> results(queries.size());
  if (queries.empty()) return results;

  size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  if (threads > queries.size()) threads = queries.size();
  if (threads <= 1) {
    RunStripe(compiled, queries, options, 0, 1, &results);
    return results;
  }

  // Each worker writes only its own stripe's slots, so the result vector
  // needs no locking; the pool is just transport for the N stripes.
  WorkStealingPool pool(threads);
  for (size_t worker = 0; worker < threads; ++worker) {
    pool.Submit([&, worker] {
      RunStripe(compiled, queries, options, worker, threads, &results);
    });
  }
  pool.Wait();
  return results;
}

}  // namespace xicc
