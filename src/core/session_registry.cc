#include "core/session_registry.h"

#include <chrono>

namespace xicc {

SessionRegistry::SessionRegistry(const SessionRegistryLimits& limits)
    : limits_(limits) {}

SessionRegistry::~SessionRegistry() = default;

int64_t SessionRegistry::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SessionRegistry::EraseLocked(
    std::unordered_map<uint64_t, Entry>::iterator it) {
  table_.erase(it);
  --stats_.resident;
}

Result<uint64_t> SessionRegistry::Open(
    std::shared_ptr<const CompiledDtd> compiled,
    const ConsistencyOptions& options, size_t memo_capacity) {
  // Construct outside the lock: session setup copies the skeleton system
  // and tableau, which is real work the registry mutex must not serialize.
  auto session =
      std::make_unique<SpecSession>(std::move(compiled), options,
                                    memo_capacity);
  MutexLock lock(&mu_);
  if (table_.size() >= limits_.max_sessions) {
    // LRU-on-full: evict the least recently used session nobody holds.
    auto victim = table_.end();
    for (auto it = table_.begin(); it != table_.end(); ++it) {
      if (it->second.busy) continue;
      if (victim == table_.end() ||
          it->second.lru_stamp < victim->second.lru_stamp) {
        victim = it;
      }
    }
    if (victim == table_.end()) {
      return Status::Unavailable(
          "session table full and every session is busy; retry");
    }
    EraseLocked(victim);
    ++stats_.evicted;
  }
  const uint64_t id = next_id_++;
  Entry entry;
  entry.session = std::move(session);
  entry.last_touch_ms = NowMs();
  entry.lru_stamp = ++lru_clock_;
  table_.emplace(id, std::move(entry));
  ++stats_.opened;
  ++stats_.resident;
  return id;
}

Result<SpecSession*> SessionRegistry::Acquire(uint64_t id) {
  MutexLock lock(&mu_);
  auto it = table_.find(id);
  if (it == table_.end()) {
    return Status::InvalidArgument("unknown session " + std::to_string(id) +
                                   " (closed, evicted, or never opened)");
  }
  Entry& entry = it->second;
  if (entry.quarantined) {
    return Status::Unavailable(
        "session " + std::to_string(id) + " is quarantined after " +
        std::to_string(entry.fault_streak) +
        " consecutive faulting queries; close it and open a fresh one");
  }
  if (entry.busy) {
    return Status::Unavailable("session " + std::to_string(id) +
                               " is serving another request");
  }
  entry.busy = true;
  entry.last_touch_ms = NowMs();
  entry.lru_stamp = ++lru_clock_;
  ++stats_.busy;
  return entry.session.get();
}

void SessionRegistry::Release(uint64_t id, bool faulted) {
  MutexLock lock(&mu_);
  auto it = table_.find(id);
  if (it == table_.end() || !it->second.busy) return;  // Defensive: no-op.
  Entry& entry = it->second;
  entry.busy = false;
  --stats_.busy;
  entry.last_touch_ms = NowMs();
  entry.lru_stamp = ++lru_clock_;
  if (entry.doomed) {
    EraseLocked(it);
    ++stats_.closed;
    return;
  }
  if (faulted) {
    ++entry.fault_streak;
    if (limits_.quarantine_after_faults != 0 && !entry.quarantined &&
        entry.fault_streak >= limits_.quarantine_after_faults) {
      entry.quarantined = true;
      ++stats_.quarantined;
    }
  } else {
    entry.fault_streak = 0;
  }
}

Status SessionRegistry::CloseSession(uint64_t id) {
  MutexLock lock(&mu_);
  auto it = table_.find(id);
  if (it == table_.end()) {
    return Status::InvalidArgument("unknown session " + std::to_string(id));
  }
  if (it->second.busy) {
    it->second.doomed = true;  // Release() finishes the job.
    return Status::Ok();
  }
  EraseLocked(it);
  ++stats_.closed;
  return Status::Ok();
}

size_t SessionRegistry::SweepIdle(int64_t now_ms) {
  if (limits_.idle_ttl_ms <= 0) return 0;
  MutexLock lock(&mu_);
  size_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    Entry& entry = it->second;
    if (!entry.busy && now_ms - entry.last_touch_ms > limits_.idle_ttl_ms) {
      it = table_.erase(it);
      --stats_.resident;
      ++stats_.evicted;
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

void SessionRegistry::CloseAll() {
  MutexLock lock(&mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.busy) {
      it->second.doomed = true;
      ++it;
    } else {
      it = table_.erase(it);
      --stats_.resident;
      ++stats_.closed;
    }
  }
}

SessionRegistryStats SessionRegistry::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace xicc
