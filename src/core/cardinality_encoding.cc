#include "core/cardinality_encoding.h"

#include <set>

#include "dtd/analysis.h"
#include "ilp/solver.h"

namespace xicc {

namespace {

/// The atom at one operand position of a simple production: an element-type
/// name or "S".
std::string AtomName(const Regex& node) {
  return node.kind() == Regex::Kind::kString ? "S" : node.name();
}

}  // namespace

Result<CardinalityEncoding> BuildCardinalityEncoding(
    const Dtd& dtd, const ConstraintSet& sigma,
    const std::vector<std::pair<std::string, std::string>>& extra_pairs) {
  for (const Constraint& c : sigma.constraints()) {
    if (c.kind == ConstraintKind::kForeignKey) {
      return Status::InvalidArgument(
          "BuildCardinalityEncoding expects a normalized constraint set");
    }
    if (c.kind == ConstraintKind::kNegInclusion) {
      return Status::InvalidArgument(
          "negated inclusions require the Section 5 set-representation "
          "system");
    }
    if (!c.IsUnary()) {
      return Status::InvalidArgument("constraint '" + c.ToString() +
                                     "' is not unary");
    }
  }

  CardinalityEncoding enc;
  XICC_ASSIGN_OR_RETURN(enc.simplified, SimplifyDtd(dtd));
  const Dtd& dn = enc.simplified.dtd;

  // ext variables for every element type of D_N plus the text type S.
  for (const std::string& type : dn.elements()) {
    enc.ext_var[type] = enc.system.AddVariable("ext(" + type + ")");
  }
  enc.ext_var["S"] = enc.system.AddVariable("ext(S)");

  // Occurrence variables and the ψ_τ production rows (Lemma 4.5).
  // incoming[a] accumulates the x^i_{a,τ} vars for the global sum rows.
  std::map<std::string, std::vector<VarId>> incoming;
  auto add_occurrence = [&](const std::string& parent, const Regex& atom,
                            int slot) {
    std::string child = AtomName(atom);
    VarId var = enc.system.AddVariable("x" + std::to_string(slot + 1) + "(" +
                                       child + "," + parent + ")");
    enc.occurrences.push_back({child, parent, slot, var});
    incoming[child].push_back(var);
    return var;
  };

  for (const std::string& type : dn.elements()) {
    const Regex& content = *dn.ContentOf(type);
    VarId ext = enc.ext_var[type];
    switch (content.kind()) {
      case Regex::Kind::kEpsilon:
        break;
      case Regex::Kind::kString:
      case Regex::Kind::kElement: {
        // P(τ) = a: each τ element has exactly one a child.
        VarId x1 = add_occurrence(type, content, 0);
        enc.system.AddEq(LinearExpr::Var(ext), LinearExpr::Var(x1));
        break;
      }
      case Regex::Kind::kConcat: {
        // P(τ) = (a, b): one a child and one b child per τ element.
        VarId x1 = add_occurrence(type, *content.left(), 0);
        VarId x2 = add_occurrence(type, *content.right(), 1);
        enc.system.AddEq(LinearExpr::Var(ext), LinearExpr::Var(x1));
        enc.system.AddEq(LinearExpr::Var(ext), LinearExpr::Var(x2));
        break;
      }
      case Regex::Kind::kUnion: {
        // P(τ) = (a | b): each τ element has an a child or a b child.
        VarId x1 = add_occurrence(type, *content.left(), 0);
        VarId x2 = add_occurrence(type, *content.right(), 1);
        LinearExpr sum;
        sum.Add(x1, BigInt(1));
        sum.Add(x2, BigInt(1));
        enc.system.AddEq(LinearExpr::Var(ext), sum);
        break;
      }
      case Regex::Kind::kStar:
        return Status::Internal("simplified DTD contains a Kleene star");
    }
  }

  // ext(r) = 1; every other symbol's extension is the sum of its occurrence
  // slots (zero occurrences ⇒ ext = 0).
  enc.system.AddConstraint(LinearExpr::Var(enc.ext_var[dn.root()]), RelOp::kEq,
                           BigInt(1));
  for (const auto& [symbol, var] : enc.ext_var) {
    if (symbol == dn.root()) continue;
    LinearExpr sum;
    auto it = incoming.find(symbol);
    if (it != incoming.end()) {
      for (VarId x : it->second) sum.Add(x, BigInt(1));
    }
    enc.system.AddEq(LinearExpr::Var(var), sum);
  }

  // Unproductive element types derive no finite tree, so no finite document
  // contains them; pin their extensions to zero. Without these rows the
  // equations admit "phantom cycle" solutions — e.g. P(foo) = foo allows
  // ext(foo) = k with k foo-elements parenting each other in a cycle, which
  // no tree realizes. (Reachable-but-productive phantom support is handled
  // lazily by the connectivity cuts in consistency.cc.)
  std::set<std::string> productive = ProductiveElements(dn);
  for (const std::string& type : dn.elements()) {
    if (productive.count(type) == 0) {
      enc.system.AddConstraint(LinearExpr::Var(enc.ext_var.at(type)),
                               RelOp::kEq, BigInt(0));
    }
  }

  // C_Σ (Lemma 4.4) over the attribute pairs mentioned in Σ.
  std::set<std::pair<std::string, std::string>> mentioned(
      extra_pairs.begin(), extra_pairs.end());
  for (const Constraint& c : sigma.constraints()) {
    mentioned.emplace(c.type1, c.attrs1[0]);
    if (c.kind == ConstraintKind::kInclusion) {
      mentioned.emplace(c.type2, c.attrs2[0]);
    }
  }
  for (const auto& pair : mentioned) {
    if (!dtd.HasAttribute(pair.first, pair.second)) {
      return Status::InvalidArgument("constraint attribute '" + pair.first +
                                     "." + pair.second +
                                     "' is not declared in the DTD");
    }
    VarId y = enc.system.AddVariable("ext(" + pair.first + "." + pair.second +
                                     ")");
    enc.attr_var[pair] = y;
    VarId x = enc.ext_var.at(pair.first);
    // 0 ≤ ext(τ.l) ≤ ext(τ); the lower bound is implicit (all variables are
    // nonnegative), the conditional strengthens it when ext(τ) > 0.
    enc.system.AddLe(LinearExpr::Var(y), LinearExpr::Var(x));
    enc.conditionals.push_back({LinearExpr::Var(x), LinearExpr::Var(y)});
  }

  for (const Constraint& c : sigma.constraints()) {
    VarId y1 = enc.attr_var.at({c.type1, c.attrs1[0]});
    VarId x1 = enc.ext_var.at(c.type1);
    switch (c.kind) {
      case ConstraintKind::kKey:
        // ext(τ.l) = ext(τ).
        enc.system.AddEq(LinearExpr::Var(y1), LinearExpr::Var(x1));
        break;
      case ConstraintKind::kNegKey: {
        // ext(τ.l) < ext(τ), i.e. ext(τ.l) ≤ ext(τ) − 1 over the integers.
        LinearExpr rhs;
        rhs.Add(x1, BigInt(1));
        rhs.AddConstant(BigInt(-1));
        enc.system.AddLe(LinearExpr::Var(y1), rhs);
        break;
      }
      case ConstraintKind::kInclusion: {
        VarId y2 = enc.attr_var.at({c.type2, c.attrs2[0]});
        enc.system.AddLe(LinearExpr::Var(y1), LinearExpr::Var(y2));
        break;
      }
      default:
        break;
    }
  }

  return enc;
}

LinearSystem ApplyBigMLinearization(
    const LinearSystem& system,
    const std::vector<Conditional>& conditionals) {
  // The bound c must dominate every component of some solution of each
  // feasible case-split system 9_X (Theorem 4.1). 9_X has the base rows plus
  // two fixing rows per conditional; its magnitudes match the base system's.
  LinearSystem out = system;
  size_t m = system.NumConstraints() + 2 * conditionals.size();
  BigInt c = PapadimitriouBound(m, system.NumVariables(),
                                system.MaxAbsValue());
  for (const Conditional& cond : conditionals) {
    // c·conclusion ≥ premise: forces conclusion ≥ 1 whenever premise > 0;
    // admissible solutions stay within the bound, so c·conclusion ≥ c ≥
    // premise holds on the conclusion ≥ 1 side.
    LinearExpr expr;
    for (const auto& [var, coeff] : cond.conclusion.terms()) {
      expr.Add(var, coeff * c);
    }
    for (const auto& [var, coeff] : cond.premise.terms()) {
      expr.Add(var, -coeff);
    }
    out.AddConstraint(expr, RelOp::kGe, BigInt(0));
  }
  return out;
}

}  // namespace xicc
