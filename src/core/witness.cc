#include "core/witness.h"

#include <array>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <set>

#include "dtd/analysis.h"

namespace xicc {

namespace {

constexpr int64_t kInfiniteCost = std::numeric_limits<int64_t>::max() / 4;

/// The backward half of Lemma 4.3: erases the synthetic element types of
/// the simplified DTD by splicing their children into the parent, turning a
/// tree valid w.r.t. D_N into one valid w.r.t. D (ext(τ) and attribute
/// values of original types are untouched).
void SpliceChildren(const XmlTree& in, NodeId from,
                    const std::set<std::string>& synthetic, XmlTree* out,
                    NodeId to) {
  for (NodeId child : in.children(from)) {
    if (in.kind(child) == NodeKind::kText) {
      out->AddText(to, in.text(child));
      continue;
    }
    if (synthetic.count(in.label(child)) > 0) {
      SpliceChildren(in, child, synthetic, out, to);
      continue;
    }
    NodeId copy = out->AddElement(to, in.label(child));
    for (const auto& [name, value] : in.attributes(child)) {
      out->SetAttribute(copy, name, value);
    }
    SpliceChildren(in, child, synthetic, out, copy);
  }
}

XmlTree CollapseSynthetic(const XmlTree& in,
                          const std::set<std::string>& synthetic) {
  XmlTree out(in.label(in.root()));
  for (const auto& [name, value] : in.attributes(in.root())) {
    out.SetAttribute(out.root(), name, value);
  }
  SpliceChildren(in, in.root(), synthetic, &out, out.root());
  return out;
}

/// Shortest-derivation costs over the and/or graph of the grammar: the
/// minimal node count of a tree rooted at each element type, with recorded
/// union choices so expansion is deterministic. Knuth's generalization of
/// Dijkstra: nodes settle in nondecreasing cost order, concatenation (sum)
/// and the +1 of element expansion are monotone superior functions.
class DerivationCosts {
 public:
  explicit DerivationCosts(const Dtd& dtd) { Compute(dtd); }

  /// Artifact-load path: rebuilds the AST tables against `dtd` (cheap, one
  /// walk) and re-attaches a previously computed snapshot instead of
  /// running the Dijkstra pass. `*status` reports a snapshot that doesn't
  /// fit the DTD's shape.
  DerivationCosts(const Dtd& dtd, const MinimalTreePlan::Snapshot& snapshot,
                  Status* status) {
    BuildAst(dtd);
    size_t next = 0;
    for (AstNode& node : nodes_) {
      if (node.regex->kind() != Regex::Kind::kUnion) continue;
      if (next >= snapshot.union_chosen.size()) {
        *status = Status::InvalidArgument(
            "minimal-tree snapshot has too few union choices");
        return;
      }
      const int8_t chosen = snapshot.union_chosen[next++];
      if (chosen < -1 || chosen > 1) {
        *status = Status::InvalidArgument(
            "minimal-tree snapshot has an out-of-range union choice");
        return;
      }
      node.chosen = chosen;
    }
    if (next != snapshot.union_chosen.size()) {
      *status = Status::InvalidArgument(
          "minimal-tree snapshot has too many union choices");
      return;
    }
    type_cost_ = snapshot.type_cost;
    for (const AstNode& node : nodes_) record_of_[node.regex] = &node;
    *status = Status::Ok();
  }

  MinimalTreePlan::Snapshot TakeSnapshot() const {
    MinimalTreePlan::Snapshot snapshot;
    snapshot.type_cost = type_cost_;
    for (const AstNode& node : nodes_) {
      if (node.regex->kind() == Regex::Kind::kUnion) {
        snapshot.union_chosen.push_back(static_cast<int8_t>(node.chosen));
      }
    }
    return snapshot;
  }

  bool Derivable(const std::string& type) const {
    return TypeCost(type) < kInfiniteCost;
  }

  /// Expands `type` into `tree` under `parent` (kInvalidNode = root already
  /// created) following minimal choices.
  void Expand(const Dtd& dtd, XmlTree* tree, NodeId node,
              const std::string& type) const {
    ExpandRegex(dtd, tree, node, *dtd.ContentOf(type));
  }

 private:
  struct AstNode {
    const Regex* regex;
    int64_t cost = kInfiniteCost;
    bool settled = false;
    int left = -1;
    int right = -1;
    int parent = -1;
    std::string owner;
    bool is_content_root = false;
    /// For unions: which side settled first (0 left, 1 right).
    int chosen = -1;
  };

  int64_t TypeCost(const std::string& type) const {
    auto it = type_cost_.find(type);
    return it == type_cost_.end() ? kInfiniteCost : it->second;
  }

  void BuildAst(const Dtd& dtd) {
    std::function<int(const Regex&, const std::string&)> build =
        [&](const Regex& regex, const std::string& owner) -> int {
      int id = static_cast<int>(nodes_.size());
      nodes_.push_back({});
      nodes_[id].regex = &regex;
      nodes_[id].owner = owner;
      switch (regex.kind()) {
        case Regex::Kind::kUnion:
        case Regex::Kind::kConcat: {
          int left = build(*regex.left(), owner);
          int right = build(*regex.right(), owner);
          nodes_[id].left = left;
          nodes_[id].right = right;
          nodes_[left].parent = id;
          nodes_[right].parent = id;
          break;
        }
        case Regex::Kind::kElement:
          elem_leaves_[regex.name()].push_back(id);
          break;
        default:
          break;
      }
      return id;
    };
    for (const std::string& type : dtd.elements()) {
      int root = build(*dtd.ContentOf(type), type);
      nodes_[root].is_content_root = true;
      content_root_[type] = root;
    }
  }

  void Compute(const Dtd& dtd) {
    BuildAst(dtd);

    // Min-heap of (cost, ast node id).
    using Entry = std::pair<int64_t, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

    for (size_t id = 0; id < nodes_.size(); ++id) {
      switch (nodes_[id].regex->kind()) {
        case Regex::Kind::kEpsilon:
        case Regex::Kind::kStar:
          // Minimal expansion of a star is zero repetitions.
          heap.emplace(0, static_cast<int>(id));
          break;
        case Regex::Kind::kString:
          heap.emplace(1, static_cast<int>(id));  // One text node.
          break;
        default:
          break;
      }
    }

    auto relax = [&](int id, int64_t cost) {
      if (cost < nodes_[id].cost && !nodes_[id].settled) {
        heap.emplace(cost, id);
      }
    };

    while (!heap.empty()) {
      auto [cost, id] = heap.top();
      heap.pop();
      AstNode& node = nodes_[id];
      if (node.settled) continue;
      node.settled = true;
      node.cost = cost;

      if (node.is_content_root) {
        const std::string& type = node.owner;
        if (type_cost_.find(type) == type_cost_.end()) {
          int64_t type_cost = cost + 1;  // +1: the element node itself.
          type_cost_[type] = type_cost;
          auto it = elem_leaves_.find(type);
          if (it != elem_leaves_.end()) {
            for (int leaf : it->second) relax(leaf, type_cost);
          }
        }
      }
      int parent = node.parent;
      if (parent < 0) continue;
      AstNode& up = nodes_[parent];
      if (up.regex->kind() == Regex::Kind::kUnion) {
        if (!up.settled && up.chosen < 0) {
          up.chosen = (up.left == id) ? 0 : 1;
          relax(parent, cost);
        }
      } else if (up.regex->kind() == Regex::Kind::kConcat) {
        AstNode& sibling = nodes_[up.left == id ? up.right : up.left];
        if (sibling.settled) relax(parent, cost + sibling.cost);
      }
    }

    // Index records by AST pointer for O(log n) lookups during expansion
    // (nodes_ no longer reallocates at this point).
    for (const AstNode& node : nodes_) record_of_[node.regex] = &node;
  }

  void ExpandRegex(const Dtd& dtd, XmlTree* tree, NodeId node,
                   const Regex& regex) const {
    switch (regex.kind()) {
      case Regex::Kind::kEpsilon:
      case Regex::Kind::kStar:  // Zero repetitions.
        break;
      case Regex::Kind::kString:
        tree->AddText(node, "text");
        break;
      case Regex::Kind::kElement: {
        NodeId child = tree->AddElement(node, regex.name());
        ExpandRegex(dtd, tree, child, *dtd.ContentOf(regex.name()));
        break;
      }
      case Regex::Kind::kConcat:
        ExpandRegex(dtd, tree, node, *regex.left());
        ExpandRegex(dtd, tree, node, *regex.right());
        break;
      case Regex::Kind::kUnion: {
        // Follow the recorded minimal choice. The AST pointer identity maps
        // back into nodes_ via a linear map; rebuild lazily.
        const AstNode* record = FindRecord(&regex);
        int chosen = record != nullptr ? record->chosen : -1;
        if (chosen == 1) {
          ExpandRegex(dtd, tree, node, *regex.right());
        } else {
          ExpandRegex(dtd, tree, node, *regex.left());
        }
        break;
      }
    }
  }

  const AstNode* FindRecord(const Regex* regex) const {
    auto it = record_of_.find(regex);
    return it == record_of_.end() ? nullptr : it->second;
  }

  std::vector<AstNode> nodes_;
  std::map<std::string, std::vector<int>> elem_leaves_;
  std::map<std::string, int> content_root_;
  std::map<std::string, int64_t> type_cost_;
  std::map<const Regex*, const AstNode*> record_of_;
};

Result<XmlTree> ExpandMinimalTree(const DerivationCosts& costs,
                                  const Dtd& dtd) {
  if (!costs.Derivable(dtd.root())) {
    return Status::InvalidArgument(
        "the DTD has no valid finite tree (root is unproductive)");
  }
  XmlTree tree(dtd.root());
  costs.Expand(dtd, &tree, tree.root(), dtd.root());

  // Populate required attributes with distinct values (the Theorem 3.5(2)
  // construction: distinct values satisfy every key).
  int counter = 0;
  for (NodeId node = 0; node < tree.size(); ++node) {
    if (!tree.IsElement(node)) continue;
    for (const std::string& attr : dtd.AttributesOf(tree.label(node))) {
      tree.SetAttribute(node, attr, "v" + std::to_string(++counter));
    }
  }
  return tree;
}

}  // namespace

Result<XmlTree> BuildMinimalTree(const Dtd& dtd) {
  DerivationCosts costs(dtd);
  return ExpandMinimalTree(costs, dtd);
}

struct MinimalTreePlan::Impl {
  explicit Impl(const Dtd& dtd) : costs(dtd) {}
  Impl(const Dtd& dtd, const Snapshot& snapshot, Status* status)
      : costs(dtd, snapshot, status) {}
  DerivationCosts costs;
};

MinimalTreePlan::MinimalTreePlan(const Dtd& dtd)
    : impl_(std::make_unique<Impl>(dtd)) {}
MinimalTreePlan::MinimalTreePlan() = default;

MinimalTreePlan::Snapshot MinimalTreePlan::TakeSnapshot() const {
  return impl_->costs.TakeSnapshot();
}

Result<MinimalTreePlan> MinimalTreePlan::FromSnapshot(
    const Dtd& dtd, const Snapshot& snapshot) {
  Status status;
  MinimalTreePlan plan;
  plan.impl_ = std::make_unique<Impl>(dtd, snapshot, &status);
  if (!status.ok()) return status;
  return plan;
}

MinimalTreePlan::~MinimalTreePlan() = default;
MinimalTreePlan::MinimalTreePlan(MinimalTreePlan&&) noexcept = default;
MinimalTreePlan& MinimalTreePlan::operator=(MinimalTreePlan&&) noexcept =
    default;

bool MinimalTreePlan::Derivable(const std::string& type) const {
  return impl_->costs.Derivable(type);
}

Result<XmlTree> MinimalTreePlan::Build(const Dtd& dtd) const {
  return ExpandMinimalTree(impl_->costs, dtd);
}

std::map<std::pair<std::string, std::string>, std::vector<std::string>>
PrefixValueSets(const CardinalityEncoding& encoding,
                const IlpSolution& solution) {
  std::map<std::pair<std::string, std::string>, std::vector<std::string>> out;
  for (const auto& [pair, var] : encoding.attr_var) {
    const BigInt& count = solution.values[var];
    std::vector<std::string> values;
    if (count.FitsInt64()) {
      int64_t n = count.ToInt64();
      values.reserve(static_cast<size_t>(n));
      for (int64_t i = 1; i <= n; ++i) {
        values.push_back("a" + std::to_string(i));
      }
    }
    out.emplace(pair, std::move(values));
  }
  return out;
}

Result<XmlTree> BuildWitnessTree(
    const CardinalityEncoding& encoding, const IlpSolution& solution,
    const std::map<std::pair<std::string, std::string>,
                   std::vector<std::string>>& value_sets,
    const WitnessOptions& options) {
  if (!solution.feasible) {
    return Status::InvalidArgument("cannot build a witness: system infeasible");
  }
  const Dtd& dn = encoding.simplified.dtd;

  // Extract counts and check the node budget.
  auto count_of = [&](VarId var) -> Result<int64_t> {
    const BigInt& value = solution.values[var];
    if (!value.FitsInt64()) {
      return Status::ResourceExhausted("witness count " + value.ToString() +
                                       " exceeds representable size");
    }
    return value.ToInt64();
  };
  int64_t total = 0;
  for (const auto& [symbol, var] : encoding.ext_var) {
    XICC_ASSIGN_OR_RETURN(int64_t count, count_of(var));
    total += count;
    if (total > static_cast<int64_t>(options.max_nodes)) {
      return Status::ResourceExhausted(
          "witness would have more than " + std::to_string(options.max_nodes) +
          " nodes; raise WitnessOptions::max_nodes to materialize it");
    }
  }

  // Remaining draws per occurrence variable, grouped by (parent, slot).
  struct Pool {
    std::string child;
    int64_t remaining = 0;
  };
  // pools[parent][slot] — at most two slots per simple production.
  std::map<std::string, std::vector<Pool>> pools;
  for (const auto& occ : encoding.occurrences) {
    XICC_ASSIGN_OR_RETURN(int64_t count, count_of(occ.var));
    auto& slots = pools[occ.parent];
    if (slots.size() <= static_cast<size_t>(occ.slot)) {
      slots.resize(static_cast<size_t>(occ.slot) + 1);
    }
    slots[occ.slot] = {occ.child, count};
  }

  // For union productions the draw order matters: a slot is *regenerative*
  // when its child symbol can spawn further parent-type nodes through the
  // solution's positive occurrence edges (e.g. the recursion arm of a star
  // expansion, f1 → end | (item, f1)). Drawing the terminal arm first would
  // strand the recursive pool with no parent left to draw it, so
  // regenerative slots are preferred while their pool lasts.
  std::map<std::string, std::vector<std::string>> support_edges;
  for (const auto& occ : encoding.occurrences) {
    XICC_ASSIGN_OR_RETURN(int64_t count, count_of(occ.var));
    if (count > 0) support_edges[occ.parent].push_back(occ.child);
  }
  auto reaches = [&](const std::string& from, const std::string& target) {
    std::set<std::string> seen{from};
    std::deque<std::string> queue{from};
    while (!queue.empty()) {
      std::string type = queue.front();
      queue.pop_front();
      if (type == target) return true;
      auto it = support_edges.find(type);
      if (it == support_edges.end()) continue;
      for (const std::string& next : it->second) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    return false;
  };
  // regenerative[type] = per-slot flags for union-typed productions.
  std::map<std::string, std::array<bool, 2>> regenerative;
  for (const std::string& type : dn.elements()) {
    if (dn.ContentOf(type)->kind() != Regex::Kind::kUnion) continue;
    auto it = pools.find(type);
    if (it == pools.end() || it->second.size() < 2) continue;
    regenerative[type] = {reaches(it->second[0].child, type),
                          reaches(it->second[1].child, type)};
  }

  XmlTree tree(dn.root());
  std::map<std::string, std::vector<NodeId>> created;  // In creation order.
  created[dn.root()].push_back(tree.root());

  // Draws one child of symbol `child` under `parent_node`.
  auto emit_child = [&](NodeId parent_node, const std::string& child,
                        std::deque<NodeId>* queue) {
    if (child == "S") {
      tree.AddText(parent_node, "text");
      return;
    }
    NodeId node = tree.AddElement(parent_node, child);
    created[child].push_back(node);
    queue->push_back(node);
  };

  std::deque<NodeId> queue;
  queue.push_back(tree.root());
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    const std::string& type = tree.label(node);
    const Regex& content = *dn.ContentOf(type);
    auto it = pools.find(type);
    switch (content.kind()) {
      case Regex::Kind::kEpsilon:
        break;
      case Regex::Kind::kString:
      case Regex::Kind::kElement: {
        Pool& pool = it->second[0];
        if (pool.remaining <= 0) {
          return Status::Internal("occurrence pool exhausted for " + type);
        }
        --pool.remaining;
        emit_child(node, pool.child, &queue);
        break;
      }
      case Regex::Kind::kConcat: {
        for (int slot = 0; slot < 2; ++slot) {
          Pool& pool = it->second[slot];
          if (pool.remaining <= 0) {
            return Status::Internal("occurrence pool exhausted for " + type);
          }
          --pool.remaining;
          emit_child(node, pool.child, &queue);
        }
        break;
      }
      case Regex::Kind::kUnion: {
        Pool& first = it->second[0];
        Pool& second = it->second[1];
        Pool* pool = nullptr;
        if (first.remaining > 0 && second.remaining > 0) {
          const auto& regen = regenerative[type];
          // Prefer the regenerative arm; ties default to the first slot.
          pool = (regen[1] && !regen[0]) ? &second : &first;
        } else {
          pool = first.remaining > 0 ? &first : &second;
        }
        if (pool->remaining <= 0) {
          return Status::Internal("occurrence pools exhausted for " + type);
        }
        --pool->remaining;
        emit_child(node, pool->child, &queue);
        break;
      }
      case Regex::Kind::kStar:
        return Status::Internal("simplified DTD contains a Kleene star");
    }
  }

  // Sanity: the production/sum rows guarantee every pool is exactly used up
  // and every ext count realized.
  for (const auto& [parent, slots] : pools) {
    for (const Pool& pool : slots) {
      if (pool.remaining != 0) {
        return Status::Internal("witness construction left " +
                                std::to_string(pool.remaining) +
                                " undrawn children under '" + parent + "'");
      }
    }
  }
  for (const auto& [symbol, var] : encoding.ext_var) {
    if (symbol == "S") continue;
    XICC_ASSIGN_OR_RETURN(int64_t expected, count_of(var));
    int64_t actual = static_cast<int64_t>(created[symbol].size());
    if (expected != actual) {
      return Status::Internal("witness has " + std::to_string(actual) + " '" +
                              symbol + "' nodes, solution says " +
                              std::to_string(expected));
    }
  }

  // Attribute values: mentioned pairs cycle through their realized value
  // set; everything else gets fresh distinct values.
  int64_t fresh = 0;
  for (const std::string& type : dn.elements()) {
    const auto& nodes = created[type];
    if (nodes.empty()) continue;
    for (const std::string& attr : dn.AttributesOf(type)) {
      auto pair_it = value_sets.find({type, attr});
      if (pair_it == value_sets.end()) {
        for (NodeId node : nodes) {
          tree.SetAttribute(node, attr, "u" + std::to_string(++fresh));
        }
        continue;
      }
      const std::vector<std::string>& values = pair_it->second;
      if (values.empty()) {
        return Status::Internal("empty value set for populated pair " + type +
                                "." + attr);
      }
      for (size_t j = 0; j < nodes.size(); ++j) {
        tree.SetAttribute(nodes[j], attr, values[j % values.size()]);
      }
    }
  }
  // The tree so far is valid w.r.t. the *simplified* DTD; erase the
  // synthetic intermediates to obtain a tree valid w.r.t. the original
  // (Lemma 4.3).
  return CollapseSynthetic(tree, encoding.simplified.synthetic);
}

}  // namespace xicc
