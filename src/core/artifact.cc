#include "core/artifact.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/num.h"
#include "base/serde.h"
#include "core/audit.h"
#include "core/cardinality_encoding.h"
#include "core/witness.h"
#include "dtd/compiled.h"
#include "dtd/glushkov.h"
#include "dtd/regex.h"
#include "ilp/linear_system.h"
#include "ilp/simplex.h"

namespace xicc {

namespace {

constexpr char kMagic[serde::kMagicSize] = {'X', 'I', 'C', 'C',
                                            'A', 'R', 'T', '1'};

// Section tags. Append-only: reusing a retired tag for different content
// requires a kArtifactFormatVersion bump anyway.
enum : uint32_t {
  kSecDtd = 1,
  kSecFacts = 2,
  kSecDfas = 3,
  kSecPlan = 4,
  kSecSkeleton = 5,
  kSecTableau = 6,
  kSecMeta = 7,
};

// Flat little-endian records (see base/serde.h on why host layout is safe).
struct RawNum {
  int64_t n;
  int64_t d;  // 0 escapes to the big-value side table.
};
struct RawColumn {
  int32_t kind;
  int32_t index;
  int32_t sub_sign;
  int32_t reserved;
};

// Far above anything a real compile produces; bounds hostile counts before
// any allocation sized from them.
constexpr uint64_t kMaxDim = uint64_t{1} << 24;

// ---------------------------------------------------------------------------
// Num

void WriteNum(serde::Writer& w, const Num& value) {
  int64_t n = 0;
  int64_t d = 0;
  if (value.SmallWords(&n, &d)) {
    w.I64(n);
    w.I64(d);
    return;
  }
  w.I64(0);
  w.I64(0);  // d == 0: big tier, rendered exactly as a decimal string.
  w.Str(value.ToString());
}

Result<Num> ParseNumString(const std::string& text) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos) {
    XICC_ASSIGN_OR_RETURN(BigInt n, BigInt::FromString(text));
    return Num(std::move(n));
  }
  XICC_ASSIGN_OR_RETURN(BigInt n, BigInt::FromString(text.substr(0, slash)));
  XICC_ASSIGN_OR_RETURN(BigInt d, BigInt::FromString(text.substr(slash + 1)));
  return Num(std::move(n), std::move(d));
}

Result<Num> ReadNum(serde::Cursor& cursor) {
  const int64_t n = cursor.I64();
  const int64_t d = cursor.I64();
  if (!cursor.status().ok()) return cursor.status();
  if (d == 0) {
    const std::string text = cursor.Str();
    if (!cursor.status().ok()) return cursor.status();
    return ParseNumString(text);
  }
  if (d < 0 || n == INT64_MIN) {
    return Status::InvalidArgument("artifact Num words are not canonical");
  }
  return Num::FromCanonicalWords(n, d);
}

// Flat Num arrays: the common (small-tier) values go into one contiguous
// RawNum block read back without parsing; the rare big-tier values escape
// into an (index, string) side list.
struct NumArrayEnc {
  std::vector<RawNum> raw;
  std::vector<std::pair<uint64_t, std::string>> escapes;

  void Append(const Num& value) {
    int64_t n = 0;
    int64_t d = 0;
    if (value.SmallWords(&n, &d)) {
      raw.push_back(RawNum{n, d});
    } else {
      escapes.emplace_back(raw.size(), value.ToString());
      raw.push_back(RawNum{0, 0});
    }
  }
};

void WriteNumArray(serde::Writer& w, const NumArrayEnc& enc) {
  w.FlatArray(enc.raw.data(), enc.raw.size());
  w.U32(static_cast<uint32_t>(enc.escapes.size()));
  for (const auto& [index, text] : enc.escapes) {
    w.U64(index);
    w.Str(text);
  }
}

// The flat block plus its decoded escape side list; `raw` points into the
// cursor's buffer and is valid as long as the underlying bytes are.
struct NumFlatView {
  const RawNum* raw = nullptr;
  size_t count = 0;
  std::map<uint64_t, Num> escapes;
};

Result<NumFlatView> ReadNumFlat(serde::Cursor& cursor,
                                int64_t expected_count) {
  NumFlatView view;
  view.raw = cursor.FlatArray<RawNum>(&view.count, expected_count);
  const uint32_t escape_count = cursor.U32();
  if (!cursor.status().ok()) return cursor.status();
  for (uint32_t i = 0; i < escape_count; ++i) {
    const uint64_t index = cursor.U64();
    const std::string text = cursor.Str();
    if (!cursor.status().ok()) return cursor.status();
    if (index >= view.count) {
      return Status::InvalidArgument("artifact Num escape index out of range");
    }
    XICC_ASSIGN_OR_RETURN(Num value, ParseNumString(text));
    view.escapes.insert_or_assign(index, std::move(value));
  }
  return view;
}

// Decodes `count` slots starting at flat index `base` into `out` (appends;
// caller reserves). The d > 0 fast path is the whole cost of a warm tableau
// load, so it stays branch-lean: one comparison pair per slot.
Status AppendNumSlots(const NumFlatView& view, size_t base, size_t count,
                      std::vector<Num>* out) {
  for (size_t i = 0; i < count; ++i) {
    const RawNum& slot = view.raw[base + i];
    if (slot.d > 0 && slot.n != INT64_MIN) {
      out->push_back(Num::FromCanonicalWords(slot.n, slot.d));
      continue;
    }
    if (slot.d != 0) {
      return Status::InvalidArgument("artifact Num words are not canonical");
    }
    auto it = view.escapes.find(base + i);
    if (it == view.escapes.end()) {
      return Status::InvalidArgument(
          "artifact Num escape missing for flat slot");
    }
    out->push_back(it->second);
  }
  return Status::Ok();
}

Result<std::vector<Num>> ReadNumArray(serde::Cursor& cursor,
                                      int64_t expected_count) {
  XICC_ASSIGN_OR_RETURN(NumFlatView view,
                        ReadNumFlat(cursor, expected_count));
  std::vector<Num> out;
  out.reserve(view.count);
  XICC_RETURN_IF_ERROR(AppendNumSlots(view, 0, view.count, &out));
  return out;
}

// ---------------------------------------------------------------------------
// Dtd (regex DAG with shared-node dedup)

void WriteDtd(serde::Writer& w, const Dtd& dtd) {
  // Postorder walk over all content models; shared RegexPtr nodes (the DTD
  // parser and simplifier reuse subtrees) are emitted exactly once.
  std::map<const Regex*, uint32_t> ids;
  std::vector<const Regex*> order;
  std::function<void(const RegexPtr&)> visit = [&](const RegexPtr& node) {
    if (ids.count(node.get()) > 0) return;
    switch (node->kind()) {
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat:
        visit(node->left());
        visit(node->right());
        break;
      case Regex::Kind::kStar:
        visit(node->child());
        break;
      default:
        break;
    }
    ids.emplace(node.get(), static_cast<uint32_t>(order.size()));
    order.push_back(node.get());
  };
  for (const std::string& type : dtd.elements()) visit(dtd.ContentOf(type));

  w.U32(static_cast<uint32_t>(order.size()));
  for (const Regex* node : order) {
    w.U8(static_cast<uint8_t>(node->kind()));
    switch (node->kind()) {
      case Regex::Kind::kElement:
        w.Str(node->name());
        break;
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat:
        w.U32(ids.at(node->left().get()));
        w.U32(ids.at(node->right().get()));
        break;
      case Regex::Kind::kStar:
        w.U32(ids.at(node->child().get()));
        break;
      default:
        break;
    }
  }

  w.Str(dtd.root());
  w.U32(static_cast<uint32_t>(dtd.elements().size()));
  for (const std::string& type : dtd.elements()) {
    w.Str(type);
    w.U32(ids.at(dtd.ContentOf(type).get()));
    const std::vector<std::string>& attrs = dtd.AttributesOf(type);
    w.U32(static_cast<uint32_t>(attrs.size()));
    for (const std::string& attr : attrs) {
      w.Str(attr);
      w.U8(static_cast<uint8_t>(dtd.AttributeKind(type, attr)));
    }
  }
}

Result<Dtd> ReadDtd(serde::Cursor& cursor) {
  const uint32_t node_count = cursor.U32();
  if (node_count > kMaxDim) {
    return Status::InvalidArgument("artifact regex table implausibly large");
  }
  std::vector<RegexPtr> nodes;
  nodes.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    const uint8_t kind = cursor.U8();
    if (!cursor.status().ok()) return cursor.status();
    // Children must precede their parent (postorder), which also makes the
    // decoded structure an acyclic DAG by construction.
    const auto child = [&](const char* what) -> Result<RegexPtr> {
      const uint32_t id = cursor.U32();
      if (!cursor.status().ok()) return cursor.status();
      if (id >= i) {
        return Status::InvalidArgument(
            std::string("artifact regex ") + what + " is not in postorder");
      }
      return nodes[id];
    };
    switch (static_cast<Regex::Kind>(kind)) {
      case Regex::Kind::kEpsilon:
        nodes.push_back(Regex::Epsilon());
        break;
      case Regex::Kind::kString:
        nodes.push_back(Regex::Str());
        break;
      case Regex::Kind::kElement:
        nodes.push_back(Regex::Elem(cursor.Str()));
        break;
      case Regex::Kind::kUnion: {
        XICC_ASSIGN_OR_RETURN(RegexPtr left, child("union left"));
        XICC_ASSIGN_OR_RETURN(RegexPtr right, child("union right"));
        nodes.push_back(Regex::Union(std::move(left), std::move(right)));
        break;
      }
      case Regex::Kind::kConcat: {
        XICC_ASSIGN_OR_RETURN(RegexPtr left, child("concat left"));
        XICC_ASSIGN_OR_RETURN(RegexPtr right, child("concat right"));
        nodes.push_back(Regex::Concat(std::move(left), std::move(right)));
        break;
      }
      case Regex::Kind::kStar: {
        XICC_ASSIGN_OR_RETURN(RegexPtr operand, child("star operand"));
        nodes.push_back(Regex::Star(std::move(operand)));
        break;
      }
      default:
        return Status::InvalidArgument("artifact regex kind unknown");
    }
  }

  const std::string root = cursor.Str();
  const uint32_t element_count = cursor.U32();
  if (element_count > kMaxDim) {
    return Status::InvalidArgument("artifact element count implausible");
  }
  DtdBuilder builder;
  for (uint32_t i = 0; i < element_count; ++i) {
    const std::string name = cursor.Str();
    const uint32_t content = cursor.U32();
    const uint32_t attr_count = cursor.U32();
    if (!cursor.status().ok()) return cursor.status();
    if (content >= nodes.size()) {
      return Status::InvalidArgument("artifact content model id out of range");
    }
    if (attr_count > kMaxDim) {
      return Status::InvalidArgument("artifact attribute count implausible");
    }
    builder.AddElement(name, nodes[content]);
    for (uint32_t a = 0; a < attr_count; ++a) {
      const std::string attr = cursor.Str();
      const uint8_t kind = cursor.U8();
      if (!cursor.status().ok()) return cursor.status();
      if (kind > static_cast<uint8_t>(AttrKind::kOther)) {
        return Status::InvalidArgument("artifact attribute kind unknown");
      }
      builder.AddAttribute(name, attr, static_cast<AttrKind>(kind));
    }
  }
  builder.SetRoot(root);
  // DtdBuilder::Build re-runs full validation (declared references, root
  // discipline, name syntax) — decoded DTDs earn the same invariants as
  // parsed ones.
  return builder.Build();
}

// ---------------------------------------------------------------------------
// DtdFacts

void WriteStringSet(serde::Writer& w, const std::set<std::string>& values) {
  w.U32(static_cast<uint32_t>(values.size()));
  for (const std::string& value : values) w.Str(value);
}

Result<std::set<std::string>> ReadStringSet(serde::Cursor& cursor) {
  const uint32_t count = cursor.U32();
  std::set<std::string> out;
  for (uint32_t i = 0; i < count; ++i) {
    std::string value = cursor.Str();
    if (!cursor.status().ok()) return cursor.status();
    out.insert(std::move(value));
  }
  return out;
}

void WriteFacts(serde::Writer& w, const DtdFacts& facts) {
  WriteStringSet(w, facts.productive);
  WriteStringSet(w, facts.reachable);
  w.Bool(facts.has_valid_tree);
  w.U32(static_cast<uint32_t>(facts.multiplicity.size()));
  for (const auto& [type, mult] : facts.multiplicity) {
    w.Str(type);
    w.U8(static_cast<uint8_t>(mult));
  }
}

Result<DtdFacts> ReadFacts(serde::Cursor& cursor) {
  DtdFacts facts;
  XICC_ASSIGN_OR_RETURN(facts.productive, ReadStringSet(cursor));
  XICC_ASSIGN_OR_RETURN(facts.reachable, ReadStringSet(cursor));
  facts.has_valid_tree = cursor.Bool();
  const uint32_t count = cursor.U32();
  for (uint32_t i = 0; i < count; ++i) {
    const std::string type = cursor.Str();
    const uint8_t mult = cursor.U8();
    if (!cursor.status().ok()) return cursor.status();
    if (mult > static_cast<uint8_t>(Multiplicity::kAtLeastTwo)) {
      return Status::InvalidArgument("artifact multiplicity unknown");
    }
    facts.multiplicity[type] = static_cast<Multiplicity>(mult);
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Frozen Glushkov DFAs

void WriteDfas(serde::Writer& w, const CompiledContentModels& models) {
  w.U32(static_cast<uint32_t>(models.matchers().size()));
  for (const auto& [type, matcher] : models.matchers()) {
    w.Str(type);
    const ContentModelMatcher::DenseFrozen dense = matcher->ExportFrozen();
    w.U32(static_cast<uint32_t>(dense.symbols.size()));
    for (const std::string& symbol : dense.symbols) w.Str(symbol);
    w.U32(static_cast<uint32_t>(dense.alphabet.size()));
    for (const std::string& symbol : dense.alphabet) w.Str(symbol);
    w.Bool(dense.nullable);
    w.U64(dense.num_states);
    for (size_t s = 0; s < dense.num_states; ++s) {
      w.U8(dense.accepting[s] ? 1 : 0);
    }
    w.FlatArray(dense.start_row.data(), dense.start_row.size());
    w.FlatArray(dense.transitions.data(), dense.transitions.size());
  }
}

Status ReadDfas(serde::Cursor& cursor,
                const std::shared_ptr<const void>& backing,
                CompiledContentModels* models) {
  const uint32_t matcher_count = cursor.U32();
  if (matcher_count > kMaxDim) {
    return Status::InvalidArgument("artifact DFA count implausible");
  }
  for (uint32_t m = 0; m < matcher_count; ++m) {
    const std::string type = cursor.Str();
    if (!cursor.status().ok()) return cursor.status();

    ContentModelMatcher::FrozenView view;
    const uint32_t symbol_count = cursor.U32();
    if (symbol_count > kMaxDim) {
      return Status::InvalidArgument("artifact DFA symbol count implausible");
    }
    view.symbols.reserve(symbol_count);
    for (uint32_t i = 0; i < symbol_count; ++i) {
      view.symbols.push_back(cursor.Str());
      if (!cursor.status().ok()) return cursor.status();
    }
    const uint32_t alphabet_count = cursor.U32();
    if (alphabet_count > kMaxDim) {
      return Status::InvalidArgument(
          "artifact DFA alphabet count implausible");
    }
    view.alphabet.reserve(alphabet_count);
    for (uint32_t i = 0; i < alphabet_count; ++i) {
      view.alphabet.push_back(cursor.Str());
      if (!cursor.status().ok()) return cursor.status();
    }
    view.nullable = cursor.Bool();
    const uint64_t num_states = cursor.U64();
    if (!cursor.status().ok()) return cursor.status();
    if (num_states > kMaxDim) {
      return Status::InvalidArgument("artifact DFA state count implausible");
    }
    view.num_states = static_cast<size_t>(num_states);
    view.accepting.reserve(view.num_states);
    for (uint64_t s = 0; s < num_states; ++s) {
      view.accepting.push_back(cursor.U8() != 0);
    }
    size_t count = 0;
    view.start_row = cursor.FlatArray<int32_t>(
        &count, static_cast<int64_t>(alphabet_count));
    view.transitions = cursor.FlatArray<int32_t>(
        &count,
        static_cast<int64_t>(num_states * alphabet_count));
    if (!cursor.status().ok()) return cursor.status();
    view.backing = backing;
    XICC_ASSIGN_OR_RETURN(std::shared_ptr<const ContentModelMatcher> matcher,
                          ContentModelMatcher::FromFrozenView(std::move(view)));
    models->InsertLoaded(type, std::move(matcher));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// MinimalTreePlan

void WritePlan(serde::Writer& w, const MinimalTreePlan& plan) {
  const MinimalTreePlan::Snapshot snapshot = plan.TakeSnapshot();
  w.U32(static_cast<uint32_t>(snapshot.type_cost.size()));
  for (const auto& [type, cost] : snapshot.type_cost) {
    w.Str(type);
    w.I64(cost);
  }
  w.FlatArray(snapshot.union_chosen.data(), snapshot.union_chosen.size());
}

Result<MinimalTreePlan> ReadPlan(serde::Cursor& cursor, const Dtd& dtd) {
  MinimalTreePlan::Snapshot snapshot;
  const uint32_t cost_count = cursor.U32();
  for (uint32_t i = 0; i < cost_count; ++i) {
    const std::string type = cursor.Str();
    const int64_t cost = cursor.I64();
    if (!cursor.status().ok()) return cursor.status();
    snapshot.type_cost[type] = cost;
  }
  size_t chosen_count = 0;
  const int8_t* chosen = cursor.FlatArray<int8_t>(&chosen_count);
  if (!cursor.status().ok()) return cursor.status();
  snapshot.union_chosen.assign(chosen, chosen + chosen_count);
  return MinimalTreePlan::FromSnapshot(dtd, snapshot);
}

// ---------------------------------------------------------------------------
// LinearSystem / LinearExpr

void WriteLinearSystem(serde::Writer& w, const LinearSystem& system) {
  w.U32(static_cast<uint32_t>(system.NumVariables()));
  for (size_t v = 0; v < system.NumVariables(); ++v) {
    w.Str(system.VarName(static_cast<VarId>(v)));
  }
  w.U32(static_cast<uint32_t>(system.constraints().size()));
  for (const LinearConstraint& row : system.constraints()) {
    w.U8(static_cast<uint8_t>(row.op));
    WriteNum(w, row.rhs);
    w.U32(static_cast<uint32_t>(row.coeffs.size()));
    for (const auto& [var, coeff] : row.coeffs) {
      w.I32(var);
      WriteNum(w, coeff);
    }
  }
}

Result<LinearSystem> ReadLinearSystem(serde::Cursor& cursor) {
  LinearSystem system;
  const uint32_t var_count = cursor.U32();
  if (var_count > kMaxDim) {
    return Status::InvalidArgument("artifact variable count implausible");
  }
  for (uint32_t v = 0; v < var_count; ++v) {
    std::string name = cursor.Str();
    if (!cursor.status().ok()) return cursor.status();
    system.AddVariable(std::move(name));
  }
  const uint32_t row_count = cursor.U32();
  if (row_count > kMaxDim) {
    return Status::InvalidArgument("artifact row count implausible");
  }
  for (uint32_t r = 0; r < row_count; ++r) {
    const uint8_t op = cursor.U8();
    if (!cursor.status().ok()) return cursor.status();
    if (op > static_cast<uint8_t>(RelOp::kEq)) {
      return Status::InvalidArgument("artifact row operator unknown");
    }
    LinearConstraint row;
    row.op = static_cast<RelOp>(op);
    XICC_ASSIGN_OR_RETURN(row.rhs, ReadNum(cursor));
    const uint32_t term_count = cursor.U32();
    if (term_count > var_count) {
      return Status::InvalidArgument("artifact row has too many terms");
    }
    row.coeffs.reserve(term_count);
    VarId prev = -1;
    for (uint32_t t = 0; t < term_count; ++t) {
      const VarId var = cursor.I32();
      XICC_ASSIGN_OR_RETURN(Num coeff, ReadNum(cursor));
      // AddRaw's contract: sorted by VarId, no duplicates, all declared.
      if (var <= prev || var >= static_cast<VarId>(var_count)) {
        return Status::InvalidArgument("artifact row terms malformed");
      }
      prev = var;
      row.coeffs.emplace_back(var, std::move(coeff));
    }
    system.AddRaw(std::move(row));
  }
  return system;
}

void WriteExpr(serde::Writer& w, const LinearExpr& expr) {
  w.U32(static_cast<uint32_t>(expr.terms().size()));
  for (const auto& [var, coeff] : expr.terms()) {
    w.I32(var);
    WriteNum(w, coeff);
  }
  WriteNum(w, expr.constant());
}

Result<LinearExpr> ReadExpr(serde::Cursor& cursor, size_t var_count) {
  LinearExpr expr;
  const uint32_t term_count = cursor.U32();
  if (term_count > var_count) {
    return Status::InvalidArgument("artifact expression has too many terms");
  }
  for (uint32_t t = 0; t < term_count; ++t) {
    const VarId var = cursor.I32();
    XICC_ASSIGN_OR_RETURN(Num coeff, ReadNum(cursor));
    if (var < 0 || var >= static_cast<VarId>(var_count)) {
      return Status::InvalidArgument(
          "artifact expression variable out of range");
    }
    expr.Add(var, std::move(coeff));
  }
  XICC_ASSIGN_OR_RETURN(Num constant, ReadNum(cursor));
  expr.AddConstant(constant);
  return expr;
}

// ---------------------------------------------------------------------------
// CardinalityEncoding (the Ψ skeleton)

void WriteSkeleton(serde::Writer& w, const CardinalityEncoding& skeleton) {
  WriteDtd(w, skeleton.simplified.dtd);
  WriteStringSet(w, skeleton.simplified.synthetic);
  WriteLinearSystem(w, skeleton.system);
  w.U32(static_cast<uint32_t>(skeleton.ext_var.size()));
  for (const auto& [type, var] : skeleton.ext_var) {
    w.Str(type);
    w.I32(var);
  }
  w.U32(static_cast<uint32_t>(skeleton.attr_var.size()));
  for (const auto& [pair, var] : skeleton.attr_var) {
    w.Str(pair.first);
    w.Str(pair.second);
    w.I32(var);
  }
  w.U32(static_cast<uint32_t>(skeleton.conditionals.size()));
  for (const Conditional& cond : skeleton.conditionals) {
    WriteExpr(w, cond.premise);
    WriteExpr(w, cond.conclusion);
  }
  w.U32(static_cast<uint32_t>(skeleton.occurrences.size()));
  for (const CardinalityEncoding::Occurrence& occ : skeleton.occurrences) {
    w.Str(occ.child);
    w.Str(occ.parent);
    w.I32(occ.slot);
    w.I32(occ.var);
  }
}

Result<CardinalityEncoding> ReadSkeleton(serde::Cursor& cursor) {
  CardinalityEncoding skeleton;
  XICC_ASSIGN_OR_RETURN(skeleton.simplified.dtd, ReadDtd(cursor));
  XICC_ASSIGN_OR_RETURN(skeleton.simplified.synthetic, ReadStringSet(cursor));
  XICC_ASSIGN_OR_RETURN(skeleton.system, ReadLinearSystem(cursor));
  const VarId var_count = static_cast<VarId>(skeleton.system.NumVariables());
  const auto valid_var = [&](VarId var) { return var >= 0 && var < var_count; };

  const uint32_t ext_count = cursor.U32();
  if (ext_count > kMaxDim) {
    return Status::InvalidArgument("artifact ext_var count implausible");
  }
  for (uint32_t i = 0; i < ext_count; ++i) {
    const std::string type = cursor.Str();
    const VarId var = cursor.I32();
    if (!cursor.status().ok()) return cursor.status();
    if (!valid_var(var)) {
      return Status::InvalidArgument("artifact ext_var out of range");
    }
    skeleton.ext_var[type] = var;
  }
  const uint32_t attr_count = cursor.U32();
  if (attr_count > kMaxDim) {
    return Status::InvalidArgument("artifact attr_var count implausible");
  }
  for (uint32_t i = 0; i < attr_count; ++i) {
    std::string type = cursor.Str();
    std::string attr = cursor.Str();
    const VarId var = cursor.I32();
    if (!cursor.status().ok()) return cursor.status();
    if (!valid_var(var)) {
      return Status::InvalidArgument("artifact attr_var out of range");
    }
    skeleton.attr_var[{std::move(type), std::move(attr)}] = var;
  }
  const uint32_t cond_count = cursor.U32();
  if (cond_count > kMaxDim) {
    return Status::InvalidArgument("artifact conditional count implausible");
  }
  skeleton.conditionals.reserve(cond_count);
  for (uint32_t i = 0; i < cond_count; ++i) {
    Conditional cond;
    XICC_ASSIGN_OR_RETURN(cond.premise, ReadExpr(cursor, var_count));
    XICC_ASSIGN_OR_RETURN(cond.conclusion, ReadExpr(cursor, var_count));
    skeleton.conditionals.push_back(std::move(cond));
  }
  const uint32_t occ_count = cursor.U32();
  if (occ_count > kMaxDim) {
    return Status::InvalidArgument("artifact occurrence count implausible");
  }
  skeleton.occurrences.reserve(occ_count);
  for (uint32_t i = 0; i < occ_count; ++i) {
    CardinalityEncoding::Occurrence occ;
    occ.child = cursor.Str();
    occ.parent = cursor.Str();
    occ.slot = cursor.I32();
    occ.var = cursor.I32();
    if (!cursor.status().ok()) return cursor.status();
    if (!valid_var(occ.var)) {
      return Status::InvalidArgument(
          "artifact occurrence variable out of range");
    }
    skeleton.occurrences.push_back(std::move(occ));
  }
  return skeleton;
}

// ---------------------------------------------------------------------------
// LpTableau (the warm-start basis)

Status WriteTableau(serde::Writer& w, const LpTableau& tableau) {
  const size_t cols = tableau.columns.size();
  const size_t rows = tableau.rows.size();
  if (tableau.basis.size() != rows || tableau.rhs.size() != rows) {
    return Status::Internal("tableau rows/basis/rhs skew at serialization");
  }
  std::vector<RawColumn> raw_columns;
  raw_columns.reserve(cols);
  for (const LpColumnInfo& column : tableau.columns) {
    raw_columns.push_back(RawColumn{static_cast<int32_t>(column.kind),
                                    column.index, column.sub_sign, 0});
  }
  w.FlatArray(raw_columns.data(), raw_columns.size());
  std::vector<int32_t> basis(tableau.basis.begin(), tableau.basis.end());
  w.FlatArray(basis.data(), basis.size());
  w.U64(tableau.num_constraints);
  w.U64(rows);

  NumArrayEnc rhs;
  for (const Num& value : tableau.rhs) rhs.Append(value);
  WriteNumArray(w, rhs);

  NumArrayEnc cells;
  for (const std::vector<Num>& row : tableau.rows) {
    if (row.size() != cols) {
      return Status::Internal("tableau row width skew at serialization");
    }
    for (const Num& value : row) cells.Append(value);
  }
  WriteNumArray(w, cells);
  return Status::Ok();
}

Result<LpTableau> ReadTableau(serde::Cursor& cursor) {
  LpTableau tableau;
  size_t col_count = 0;
  const RawColumn* columns = cursor.FlatArray<RawColumn>(&col_count);
  if (!cursor.status().ok()) return cursor.status();
  if (col_count > kMaxDim) {
    return Status::InvalidArgument("artifact tableau width implausible");
  }
  tableau.columns.reserve(col_count);
  for (size_t c = 0; c < col_count; ++c) {
    const RawColumn& raw = columns[c];
    if (raw.kind < 0 ||
        raw.kind > static_cast<int32_t>(LpColumnInfo::Kind::kSlack) ||
        raw.sub_sign < -1 || raw.sub_sign > 1) {
      return Status::InvalidArgument("artifact tableau column malformed");
    }
    tableau.columns.push_back(
        LpColumnInfo{static_cast<LpColumnInfo::Kind>(raw.kind), raw.index,
                     raw.sub_sign});
  }

  size_t row_count_basis = 0;
  const int32_t* basis = cursor.FlatArray<int32_t>(&row_count_basis);
  if (!cursor.status().ok()) return cursor.status();
  if (row_count_basis > kMaxDim) {
    return Status::InvalidArgument("artifact tableau height implausible");
  }
  tableau.basis.reserve(row_count_basis);
  for (size_t r = 0; r < row_count_basis; ++r) {
    if (basis[r] < -1 || basis[r] >= static_cast<int32_t>(col_count)) {
      return Status::InvalidArgument("artifact tableau basis out of range");
    }
    tableau.basis.push_back(basis[r]);
  }

  tableau.num_constraints = static_cast<size_t>(cursor.U64());
  const uint64_t row_count = cursor.U64();
  if (!cursor.status().ok()) return cursor.status();
  if (row_count != row_count_basis || tableau.num_constraints > kMaxDim) {
    return Status::InvalidArgument("artifact tableau geometry skew");
  }

  XICC_ASSIGN_OR_RETURN(tableau.rhs,
                        ReadNumArray(cursor,
                                     static_cast<int64_t>(row_count)));
  // Cells decode straight from the flat block into the row-major tableau —
  // no intermediate vector, no second pass of Num moves. This loop is the
  // bulk of a warm load on bench-sized DTDs.
  XICC_ASSIGN_OR_RETURN(
      NumFlatView cells,
      ReadNumFlat(cursor, static_cast<int64_t>(row_count * col_count)));
  tableau.rows.reserve(row_count);
  for (uint64_t r = 0; r < row_count; ++r) {
    std::vector<Num> row;
    row.reserve(col_count);
    XICC_RETURN_IF_ERROR(
        AppendNumSlots(cells, r * col_count, col_count, &row));
    tableau.rows.push_back(std::move(row));
  }
  return tableau;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

uint64_t DtdContentHash(const Dtd& dtd) {
  return serde::Fnv1a64(dtd.ToString());
}

std::string ArtifactFileName(const Dtd& dtd) {
  const uint64_t hash = DtdContentHash(dtd);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));  // NOLINT
  return std::string("xicc-") + hex + "-v" +
         std::to_string(kArtifactFormatVersion) + ".xac";
}

Result<std::string> SerializeCompiledDtd(const CompiledDtd& compiled) {
  serde::Writer w(kMagic, kArtifactFormatVersion,
                  DtdContentHash(compiled.dtd));
  w.BeginSection(kSecDtd);
  WriteDtd(w, compiled.dtd);
  w.EndSection();
  w.BeginSection(kSecFacts);
  WriteFacts(w, compiled.facts);
  w.EndSection();
  w.BeginSection(kSecDfas);
  WriteDfas(w, compiled.content_models);
  w.EndSection();
  w.BeginSection(kSecPlan);
  WritePlan(w, compiled.minimal_plan);
  w.EndSection();
  w.BeginSection(kSecSkeleton);
  WriteSkeleton(w, compiled.skeleton);
  w.EndSection();
  w.BeginSection(kSecTableau);
  XICC_RETURN_IF_ERROR(WriteTableau(w, compiled.skeleton_tableau));
  w.EndSection();
  w.BeginSection(kSecMeta);
  w.Bool(compiled.skeleton_tableau_valid);
  w.F64(compiled.compile_ms);
  w.U64(compiled.audit_digest);
  w.EndSection();
  return std::move(w).Finish();
}

Result<std::shared_ptr<const CompiledDtd>> DeserializeCompiledDtd(
    std::string_view bytes, std::shared_ptr<const void> backing,
    ArtifactVerify verify) {
  XICC_ASSIGN_OR_RETURN(
      serde::Reader reader,
      serde::Reader::Open(bytes, kMagic, kArtifactFormatVersion));

  XICC_ASSIGN_OR_RETURN(serde::Cursor dtd_cursor,
                        reader.Section(kSecDtd, "artifact dtd"));
  XICC_ASSIGN_OR_RETURN(Dtd dtd, ReadDtd(dtd_cursor));
  XICC_RETURN_IF_ERROR(dtd_cursor.Finish());
  if (DtdContentHash(dtd) != reader.content_key()) {
    return Status::InvalidArgument(
        "artifact content key does not match its DTD");
  }

  XICC_ASSIGN_OR_RETURN(serde::Cursor facts_cursor,
                        reader.Section(kSecFacts, "artifact facts"));
  XICC_ASSIGN_OR_RETURN(DtdFacts facts, ReadFacts(facts_cursor));
  XICC_RETURN_IF_ERROR(facts_cursor.Finish());

  XICC_ASSIGN_OR_RETURN(serde::Cursor dfa_cursor,
                        reader.Section(kSecDfas, "artifact dfas"));
  CompiledContentModels models;
  XICC_RETURN_IF_ERROR(ReadDfas(dfa_cursor, backing, &models));
  XICC_RETURN_IF_ERROR(dfa_cursor.Finish());

  XICC_ASSIGN_OR_RETURN(serde::Cursor plan_cursor,
                        reader.Section(kSecPlan, "artifact plan"));
  XICC_ASSIGN_OR_RETURN(MinimalTreePlan plan, ReadPlan(plan_cursor, dtd));
  XICC_RETURN_IF_ERROR(plan_cursor.Finish());

  XICC_ASSIGN_OR_RETURN(serde::Cursor skel_cursor,
                        reader.Section(kSecSkeleton, "artifact skeleton"));
  XICC_ASSIGN_OR_RETURN(CardinalityEncoding skeleton,
                        ReadSkeleton(skel_cursor));
  XICC_RETURN_IF_ERROR(skel_cursor.Finish());

  XICC_ASSIGN_OR_RETURN(serde::Cursor tab_cursor,
                        reader.Section(kSecTableau, "artifact tableau"));
  XICC_ASSIGN_OR_RETURN(LpTableau tableau, ReadTableau(tab_cursor));
  XICC_RETURN_IF_ERROR(tab_cursor.Finish());

  XICC_ASSIGN_OR_RETURN(serde::Cursor meta_cursor,
                        reader.Section(kSecMeta, "artifact meta"));
  const bool tableau_valid = meta_cursor.Bool();
  const double compile_ms =  // xicc-lint: allow(exact-arithmetic)
      meta_cursor.F64();
  const uint64_t stored_digest = meta_cursor.U64();
  XICC_RETURN_IF_ERROR(meta_cursor.Finish());

  auto out = std::make_shared<CompiledDtd>(CompiledDtd{
      std::move(dtd), std::move(facts), std::move(models), std::move(plan),
      std::move(skeleton), std::move(tableau), tableau_valid, compile_ms, 0});

  // Layer 3 (kDeep only): recompute the semantic digest over the decoded
  // skeleton system, variable tables, tableau, and facts and demand
  // equality with the digest stamped at compile time. Passing this means
  // the loaded bundle is a bit-identical input to session warm starts. The
  // checksum layers already reject every corrupted byte, so the default
  // path trusts the stored stamp and skips the recompute.
  if (verify == ArtifactVerify::kDeep &&
      CompiledDtdDigest(*out) != stored_digest) {
    return Status::InvalidArgument(
        "artifact semantic digest mismatch after decode");
  }
  out->audit_digest = stored_digest;
  return std::shared_ptr<const CompiledDtd>(std::move(out));
}

Status StoreCompiledDtd(const CompiledDtd& compiled, const std::string& path) {
  XICC_ASSIGN_OR_RETURN(std::string bytes, SerializeCompiledDtd(compiled));
  return serde::WriteFileAtomic(path, bytes);
}

Result<std::shared_ptr<const CompiledDtd>> LoadCompiledDtd(
    const std::string& path, ArtifactLoadInfo* info, ArtifactVerify verify) {
  auto mapped_result = serde::MappedFile::Map(path);
  if (mapped_result.ok()) {
    auto mapped = std::make_shared<serde::MappedFile>(
        std::move(mapped_result).value());
    if (info != nullptr) {
      info->mmap = true;
      info->bytes = mapped->view().size();
    }
    return DeserializeCompiledDtd(mapped->view(), mapped, verify);
  }
  // mmap unavailable (exotic filesystem, resource limits): buffered read.
  XICC_ASSIGN_OR_RETURN(std::string bytes, serde::ReadFileToString(path));
  auto owned = std::make_shared<std::string>(std::move(bytes));
  if (info != nullptr) {
    info->mmap = false;
    info->bytes = owned->size();
  }
  return DeserializeCompiledDtd(*owned, owned, verify);
}

}  // namespace xicc
