#ifndef XICC_CORE_INCREMENTAL_H_
#define XICC_CORE_INCREMENTAL_H_

#include <string>

#include "core/consistency.h"
#include "core/implication.h"

namespace xicc {

/// Incremental specification authoring — the workflow Corollary 4.11 is
/// motivated by: "one often defines the DTD of a specification at one time,
/// but writes constraints in stages; constraints are added incrementally
/// when new requirements are discovered."
///
/// The checker holds a DTD and a growing, always-consistent constraint set;
/// each TryAdd re-runs consistency (PTIME for the fixed DTD) and either
/// commits the constraint or reports why it must be rejected, flagging
/// already-implied additions along the way.
class IncrementalChecker {
 public:
  /// The DTD must outlive the checker. `check_redundancy` controls whether
  /// each addition is first tested for being implied (an extra refutation
  /// call — for inclusions it routes through the exponential Section 5
  /// system); with it off, every consistent addition reports kAccepted.
  explicit IncrementalChecker(const Dtd* dtd,
                              const ConsistencyOptions& options = {},
                              bool check_redundancy = true)
      : dtd_(dtd), options_(options), check_redundancy_(check_redundancy) {
    options_.build_witness = false;
    options_.verify_witness = false;
  }

  enum class Outcome {
    kAccepted,          ///< Consistent with everything accepted so far.
    kAcceptedRedundant, ///< Accepted, but already implied — a no-op.
    kRejected,          ///< Would make the specification inconsistent.
  };

  struct AddResult {
    Outcome outcome;
    std::string explanation;
  };

  /// Attempts to add `constraint`. Rejected constraints leave the accepted
  /// set untouched.
  Result<AddResult> TryAdd(const Constraint& constraint);

  /// The constraints accepted so far (in acceptance order).
  const ConstraintSet& accepted() const { return accepted_; }

 private:
  const Dtd* dtd_;
  ConsistencyOptions options_;
  bool check_redundancy_;
  ConstraintSet accepted_;
};

/// Specification equivalence: (D, Σ1) ≡ (D, Σ2) iff every constraint of
/// each side is implied by the other. Subsumes the implication machinery,
/// so the same decidability boundaries apply (kUndecidableClass for
/// multi-attribute content).
struct EquivalenceResult {
  bool equivalent = false;
  /// When not equivalent: a constraint of one side not implied by the
  /// other, rendered with its direction.
  std::string separating_constraint;
};

Result<EquivalenceResult> CheckEquivalence(
    const Dtd& dtd, const ConstraintSet& sigma1, const ConstraintSet& sigma2,
    const ConsistencyOptions& options = {});

}  // namespace xicc

#endif  // XICC_CORE_INCREMENTAL_H_
