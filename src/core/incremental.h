#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/consistency.h"
#include "core/implication.h"
#include "core/spec_session.h"

namespace xicc {

/// Incremental specification authoring — the workflow Corollary 4.11 is
/// motivated by: "one often defines the DTD of a specification at one time,
/// but writes constraints in stages; constraints are added incrementally
/// when new requirements are discovered."
///
/// The checker holds a DTD and a growing, always-consistent constraint set;
/// each TryAdd re-runs consistency (PTIME for the fixed DTD) and either
/// commits the constraint or reports why it must be rejected, flagging
/// already-implied additions along the way.
///
/// By default the checker runs on a SpecSession: the DTD is compiled once on
/// the first TryAdd and every later check appends only the new constraint's
/// C_Σ rows onto the compiled skeleton's trail — one build plus n deltas
/// instead of n full rebuilds. Mode::kFresh keeps the rebuild-per-call
/// behaviour (the ablation baseline); verdicts are identical in both modes.
class IncrementalChecker {
 public:
  enum class Mode {
    kSession,  ///< Compile once, Σ-delta per TryAdd (default).
    kFresh,    ///< Rebuild Ψ(D,Σ) on every TryAdd.
  };

  /// The DTD must outlive the checker. `check_redundancy` controls whether
  /// each addition is first tested for being implied (an extra refutation
  /// call — for inclusions it routes through the exponential Section 5
  /// system); with it off, every consistent addition reports kAccepted.
  /// Witness construction follows `options.build_witness` (with
  /// min_witness_nodes respected); disable it there to keep TryAdd
  /// verdict-only.
  explicit IncrementalChecker(const Dtd* dtd,
                              const ConsistencyOptions& options = {},
                              bool check_redundancy = true,
                              Mode mode = Mode::kSession)
      : dtd_(dtd),
        options_(options),
        check_redundancy_(check_redundancy),
        mode_(mode) {}

  enum class Outcome {
    kAccepted,          ///< Consistent with everything accepted so far.
    kAcceptedRedundant, ///< Accepted, but already implied — a no-op.
    kRejected,          ///< Would make the specification inconsistent.
  };

  struct AddResult {
    Outcome outcome;
    std::string explanation;
    /// On kAccepted with options.build_witness: a checked witness of the
    /// whole accepted set including the new constraint.
    std::optional<XmlTree> witness;
  };

  /// Attempts to add `constraint`. Rejected constraints leave the accepted
  /// set untouched.
  Result<AddResult> TryAdd(const Constraint& constraint);

  /// The constraints accepted so far (in acceptance order).
  const ConstraintSet& accepted() const { return accepted_; }

  /// Session statistics (zero counters in Mode::kFresh or before the first
  /// TryAdd).
  SpecSessionStats session_stats() const {
    return session_ != nullptr ? session_->stats() : SpecSessionStats{};
  }

 private:
  /// Compiles the DTD on first use (compilation can fail, so it cannot live
  /// in the constructor).
  Status EnsureSession();

  const Dtd* dtd_;
  ConsistencyOptions options_;
  bool check_redundancy_;
  Mode mode_;
  std::unique_ptr<SpecSession> session_;
  ConstraintSet accepted_;
};

/// Specification equivalence: (D, Σ1) ≡ (D, Σ2) iff every constraint of
/// each side is implied by the other. Subsumes the implication machinery,
/// so the same decidability boundaries apply (kUndecidableClass for
/// multi-attribute content).
struct EquivalenceResult {
  bool equivalent = false;
  /// When not equivalent: a constraint of one side not implied by the
  /// other, rendered with its direction.
  std::string separating_constraint;
};

Result<EquivalenceResult> CheckEquivalence(
    const Dtd& dtd, const ConstraintSet& sigma1, const ConstraintSet& sigma2,
    const ConsistencyOptions& options = {});

}  // namespace xicc
