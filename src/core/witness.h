#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cardinality_encoding.h"
#include "ilp/solver.h"
#include "xml/tree.h"

namespace xicc {

/// Builds a smallest-node-count tree valid w.r.t. `dtd` (which must have
/// one: check DtdHasValidTree first). Implementation: Knuth's Dijkstra-like
/// shortest-derivation algorithm over the grammar's and/or graph, then a
/// top-down expansion following the recorded choices — near-linear, so the
/// Theorem 3.5 fast paths stay fast.
Result<XmlTree> BuildMinimalTree(const Dtd& dtd);

/// The Knuth shortest-derivation table behind BuildMinimalTree, computed
/// once and reusable: Build() only walks the recorded choices, so repeated
/// minimal-witness requests against the same DTD skip the Dijkstra pass.
/// All mutation happens in the constructor; every const method is safe to
/// call concurrently. The table keys on regex AST pointers (RegexPtr nodes
/// are shared across Dtd copies), so Build() accepts the constructing Dtd
/// or any copy of it.
class MinimalTreePlan {
 public:
  explicit MinimalTreePlan(const Dtd& dtd);
  ~MinimalTreePlan();
  MinimalTreePlan(MinimalTreePlan&&) noexcept;
  MinimalTreePlan& operator=(MinimalTreePlan&&) noexcept;

  /// True iff a finite tree rooted at `type` exists (`type` is productive).
  bool Derivable(const std::string& type) const;

  /// The BuildMinimalTree result, from the precomputed table. `dtd` must be
  /// the DTD this plan was built from (or a copy sharing its regex ASTs).
  Result<XmlTree> Build(const Dtd& dtd) const;

  /// Pointer-free image of the plan for artifact serialization
  /// (core/artifact). The expansion consults exactly two things beyond the
  /// DTD itself: the per-type minimal costs and, for each union node, which
  /// side the Dijkstra pass settled first. `union_chosen` lists that choice
  /// (-1 unsettled, 0 left, 1 right) for every union node in the
  /// deterministic AST walk order (dtd.elements() in order, children
  /// left-then-right), so it can be re-attached to a freshly parsed copy of
  /// the same DTD without re-running the shortest-derivation pass.
  struct Snapshot {
    std::map<std::string, int64_t> type_cost;
    std::vector<int8_t> union_chosen;
  };
  Snapshot TakeSnapshot() const;

  /// Rebuilds a plan from `snapshot` against `dtd`, which must be
  /// structurally identical to the DTD the snapshot was taken from (the
  /// artifact layer guarantees this via the content hash). Rejects a
  /// snapshot whose union count or choice values don't fit the DTD.
  static Result<MinimalTreePlan> FromSnapshot(const Dtd& dtd,
                                              const Snapshot& snapshot);

 private:
  MinimalTreePlan();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The Lemma 4.4 value realization for constraint sets *without* negated
/// inclusions: every mentioned pair (τ,l) takes the first ext(τ.l) values of
/// one global chain a_1, a_2, …, so ext(τ1.l1) ≤ ext(τ2.l2) materializes as
/// prefix containment and keys as bijections.
std::map<std::pair<std::string, std::string>, std::vector<std::string>>
PrefixValueSets(const CardinalityEncoding& encoding,
                const IlpSolution& solution);

struct WitnessOptions {
  /// Refuse to materialize witnesses above this node count.
  size_t max_nodes = 1000000;
};

/// The constructive proof of Lemma 4.5 (+ 4.4/5.2 for values): turns an
/// integer solution of Ψ(D,Σ) into an actual XML tree.
///
/// Topology: create ext(τ) elements per type; each parent draws its children
/// from the occurrence-variable pools of its (simple) production, which the
/// production and sum rows guarantee to deplete exactly. Values: element
/// nodes of a mentioned pair (τ,l) cycle through `value_sets[(τ,l)]`
/// (surjective since ext(τ.l) ≤ ext(τ); injective when Σ forces
/// ext(τ.l) = ext(τ); duplicating when a negated key forces slack).
/// Unmentioned attributes receive globally fresh values.
///
/// The caller re-validates the result against the DTD and re-evaluates Σ —
/// witnesses are checked, not trusted.
Result<XmlTree> BuildWitnessTree(
    const CardinalityEncoding& encoding, const IlpSolution& solution,
    const std::map<std::pair<std::string, std::string>,
                   std::vector<std::string>>& value_sets,
    const WitnessOptions& options = {});

}  // namespace xicc
