#include "core/spec_session.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <utility>

#include "base/debug.h"
#include "constraints/evaluator.h"
#include "core/audit.h"
#include "core/encoding_solver.h"
#include "dtd/validator.h"
#include "ilp/audit.h"

namespace xicc {

namespace {

// Timing only, never a verdict. xicc-lint: allow(exact-arithmetic)
double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(  // xicc-lint: allow(exact-arithmetic)
             std::chrono::steady_clock::now() - start)
      .count();
}

EncodingSolveOptions ToSolveOptions(const ConsistencyOptions& options) {
  EncodingSolveOptions out;
  out.strategy = options.strategy == SolveStrategy::kCaseSplit
                     ? EncodingStrategy::kCaseSplit
                     : EncodingStrategy::kBigM;
  out.ilp = options.ilp;
  // One knob arms the whole stack, mirroring consistency.cc.
  if (options.stop.Armed()) out.ilp.stop = options.stop;
  return out;
}

/// Mirrors consistency.cc: one ILP solution's counters into a stats block.
void FillIlpStats(const IlpSolution& solved, ConsistencyStats* stats) {
  stats->ilp_nodes = solved.nodes_explored;
  stats->lp_pivots = solved.lp_pivots;
  stats->warm_starts = solved.warm_starts;
  stats->cold_restarts = solved.cold_restarts;
  stats->search_depth = solved.max_depth;
  stats->lp_kernel = solved.lp_kernel;
  stats->num_small_ops = solved.num_small_ops;
  stats->num_big_ops = solved.num_big_ops;
  stats->num_promotions = solved.num_promotions;
  stats->num_demotions = solved.num_demotions;
  stats->arena_bytes = solved.arena_bytes;
  stats->ilp_wall_ms = solved.wall_ms;
}

/// Canonical cache key: the normalized constraints rendered and sorted, so
/// permutations and foreign-key spellings of the same Σ share an entry.
std::string CanonicalKey(const ConstraintSet& combined) {
  ConstraintSet normalized = combined.Normalize();
  std::vector<std::string> lines;
  lines.reserve(normalized.size());
  for (const Constraint& c : normalized.constraints()) {
    lines.push_back(c.ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::string key;
  for (const std::string& line : lines) {
    key += line;
    key += '\n';
  }
  return key;
}

/// Same check as consistency.cc's VerifyWitness, with content models matched
/// through the compiled frozen DFAs.
Status VerifyWitness(const XmlTree& tree, const CompiledDtd& compiled,
                     const ConstraintSet& sigma) {
  ValidationReport validation =
      ValidateXml(tree, compiled.dtd, &compiled.content_models, {});
  if (!validation.valid) {
    return Status::Internal("witness fails DTD validation:\n" +
                            validation.ToString());
  }
  EvaluationReport evaluation = Evaluate(tree, sigma);
  if (!evaluation.satisfied) {
    return Status::Internal("witness fails constraint evaluation:\n" +
                            evaluation.ToString());
  }
  return Status::Ok();
}

/// Mirrors consistency.cc's AttachWitness: too-large witnesses degrade to an
/// explanation, everything else is verified and attached.
Status AttachWitness(const CompiledDtd& compiled, const ConstraintSet& sigma,
                     const ConsistencyOptions& options, Result<XmlTree> tree,
                     ConsistencyResult* result) {
  if (!tree.ok()) {
    if (tree.status().code() == StatusCode::kResourceExhausted) {
      result->explanation = tree.status().message();
      return Status::Ok();
    }
    return tree.status();
  }
  if (options.verify_witness) {
    XICC_RETURN_IF_ERROR(VerifyWitness(*tree, compiled, sigma));
  }
  result->witness = std::move(tree).value();
  return Status::Ok();
}

/// Σ subsumes φ = τ[X] → τ iff some key τ[Y] → τ in Σ has Y ⊆ X (as in
/// implication.cc).
bool Subsumes(const ConstraintSet& sigma, const Constraint& phi) {
  std::set<std::string> x(phi.attrs1.begin(), phi.attrs1.end());
  ConstraintSet normalized = sigma.Normalize();
  for (const Constraint& c : normalized.constraints()) {
    if (c.kind != ConstraintKind::kKey || c.type1 != phi.type1) continue;
    bool subset = true;
    for (const std::string& attr : c.attrs1) {
      if (x.count(attr) == 0) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

Result<Constraint> Negate(const Constraint& phi) {
  switch (phi.kind) {
    case ConstraintKind::kKey:
      if (!phi.IsUnary()) {
        return Status::UndecidableClass(
            "implication of the multi-attribute key '" + phi.ToString() +
            "' by non-key constraints is undecidable (Corollary 3.4)");
      }
      return Constraint::NegKey(phi.type1, phi.attrs1);
    case ConstraintKind::kInclusion:
      if (!phi.IsUnary()) {
        return Status::UndecidableClass(
            "implication of the multi-attribute inclusion '" +
            phi.ToString() + "' is undecidable (Corollary 3.4)");
      }
      return Constraint::NegInclusion(phi.type1, phi.attrs1, phi.type2,
                                      phi.attrs2);
    default:
      return Status::InvalidArgument(
          "only keys and inclusion constraints can be negated directly");
  }
}

Status VerifyCounterexample(const XmlTree& tree, const CompiledDtd& compiled,
                            const ConstraintSet& sigma,
                            const Constraint& phi) {
  ValidationReport validation =
      ValidateXml(tree, compiled.dtd, &compiled.content_models, {});
  if (!validation.valid) {
    return Status::Internal("counterexample fails DTD validation:\n" +
                            validation.ToString());
  }
  EvaluationReport on_sigma = Evaluate(tree, sigma);
  if (!on_sigma.satisfied) {
    return Status::Internal("counterexample violates Σ:\n" +
                            on_sigma.ToString());
  }
  EvaluationReport on_phi = Evaluate(tree, phi);
  if (on_phi.satisfied) {
    return Status::Internal("counterexample satisfies φ = " + phi.ToString());
  }
  return Status::Ok();
}

}  // namespace

Result<std::shared_ptr<const CompiledDtd>> CompileDtd(const Dtd& dtd) {
  const auto start = std::chrono::steady_clock::now();

  DtdFacts facts = ComputeDtdFacts(dtd);
  CompiledContentModels models = CompiledContentModels::Build(dtd);
  // The Σ-independent skeleton: the builder over the empty constraint set
  // with every declared attribute pair forced produces exactly the
  // production/root/sum/pin rows, the ext(τ.l) variables, and their bound
  // rows — no C_Σ content.
  XICC_ASSIGN_OR_RETURN(
      CardinalityEncoding skeleton,
      BuildCardinalityEncoding(dtd, ConstraintSet(), dtd.AllAttributePairs()));

  auto out = std::make_shared<CompiledDtd>(CompiledDtd{
      dtd, std::move(facts), std::move(models), MinimalTreePlan(dtd),
      std::move(skeleton), LpTableau{}, /*skeleton_tableau_valid=*/false,
      /*compile_ms=*/0.0});

  // Factorize the skeleton LP once; its basis warm-seeds every query of
  // every session. Infeasibility (an empty-language DTD: ext(r) = 1 clashes
  // with an unproductive root pin) just means queries run cold — and the
  // linear-cell fast paths answer them without an LP anyway.
  LpResult lp = SolveLpFeasibility(out->skeleton.system, &out->skeleton_tableau);
  out->skeleton_tableau_valid = lp.feasible;
  out->compile_ms = ElapsedMs(start);
  out->audit_digest = CompiledDtdDigest(*out);
  return std::shared_ptr<const CompiledDtd>(std::move(out));
}

SharedSigmaMemo::SharedSigmaMemo(size_t capacity, size_t num_shards)
    : capacity_(capacity),
      num_shards_(capacity == 0
                      ? 1
                      : (num_shards == 0
                             ? 1
                             : (num_shards > capacity ? capacity
                                                      : num_shards))),
      per_shard_capacity_(
          capacity == 0 ? 0 : (capacity + num_shards_ - 1) / num_shards_),
      shards_(new MemoShard[num_shards_]) {}

SharedSigmaMemo::MemoShard& SharedSigmaMemo::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % num_shards_];
}

std::shared_ptr<const ConsistencyResult> SharedSigmaMemo::LookupShared(
    const std::string& key) {
  // The capacity-0 bypass: no hashing, no shard touch, no counters — a
  // memo-off batch must not pay for the machinery it turned off.
  if (capacity_ == 0) return nullptr;
  MemoShard& shard = ShardFor(key);
  std::shared_ptr<const ConsistencyResult> found;
  {
    MutexLock lock(&shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // O(1) recency touch — no LRU list to splice under the lock.
      it->second.stamp = ++shard.clock;
      found = it->second.result;
    }
  }
  if (found != nullptr) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return found;
}

bool SharedSigmaMemo::Lookup(const std::string& key, ConsistencyResult* out) {
  std::shared_ptr<const ConsistencyResult> found = LookupShared(key);
  if (found == nullptr) return false;
  *out = *found;  // Payload copy outside every lock.
  return true;
}

size_t SharedSigmaMemo::Store(const std::string& key,
                              const ConsistencyResult& result) {
  if (capacity_ == 0) return 0;
  // The payload copy (stats, strings, possibly a witness tree) happens
  // before the lock; a racing duplicate store wastes one copy, which is the
  // right trade against serializing every reader behind a big memcpy.
  auto value = std::make_shared<const ConsistencyResult>(result);
  MemoShard& shard = ShardFor(key);
  size_t evicted = 0;
  bool inserted = false;
  {
    MutexLock lock(&shard.mu);
    auto [it, fresh] = shard.entries.try_emplace(key);
    inserted = fresh;
    if (fresh) {
      it->second.result = std::move(value);
      it->second.stamp = ++shard.clock;
      if (shard.entries.size() > per_shard_capacity_) {
        // Evict the stalest entry (min stamp). O(shard entries), but only
        // on the insert-at-capacity path — hits never pay for it.
        auto victim = shard.entries.end();
        for (auto e = shard.entries.begin(); e != shard.entries.end(); ++e) {
          if (e == it) continue;
          if (victim == shard.entries.end() ||
              e->second.stamp < victim->second.stamp) {
            victim = e;
          }
        }
        if (victim != shard.entries.end()) {
          shard.entries.erase(victim);
          evicted = 1;
        }
      }
    }
  }
  if (inserted) {
    shard.stores.fetch_add(1, std::memory_order_relaxed);
    if (evicted != 0) shard.evictions.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.duplicate_stores.fetch_add(1, std::memory_order_relaxed);
  }
  return evicted;
}

SharedSigmaMemo::Stats SharedSigmaMemo::TotalStats() const {
  Stats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    const MemoShard& shard = shards_[i];
    total.hits += shard.hits.load(std::memory_order_relaxed);
    total.misses += shard.misses.load(std::memory_order_relaxed);
    total.stores += shard.stores.load(std::memory_order_relaxed);
    total.duplicate_stores +=
        shard.duplicate_stores.load(std::memory_order_relaxed);
    total.evictions += shard.evictions.load(std::memory_order_relaxed);
  }
  return total;
}

SpecSession::SpecSession(std::shared_ptr<const CompiledDtd> compiled,
                         const ConsistencyOptions& options,
                         size_t memo_capacity)
    : SpecSession(std::move(compiled), options,
                  memo_capacity == 0
                      ? nullptr
                      : std::make_shared<SharedSigmaMemo>(memo_capacity,
                                                          /*num_shards=*/1)) {}

SpecSession::SpecSession(std::shared_ptr<const CompiledDtd> compiled,
                         const ConsistencyOptions& options,
                         std::shared_ptr<SharedSigmaMemo> memo)
    : compiled_(std::move(compiled)),
      options_(options),
      memo_(std::move(memo)) {
  // The skeleton system + tableau copies are the per-session setup cost the
  // batch scheduler amortizes over chunks; time them so a batch run can
  // attribute setup vs. solve (Stage::kSessionSetup in the tally).
  StageTimer timer(&stage_tally_, Stage::kSessionSetup);
  system_ = compiled_->skeleton.system;
  warm_.base_tableau = compiled_->skeleton_tableau;
  warm_.valid = compiled_->skeleton_tableau_valid;
  // Every no-verdict exit — Σ-delta or fresh fallback — reports its partial
  // work into the session's own sink, exposed via LastPartialStats().
  options_.partial_stats = &last_partial_;
}

Result<ConsistencyResult> SpecSession::Check(const ConstraintSet& sigma) {
  if (options_.stop.Armed() && options_.stop.ShouldStop()) {
    last_partial_ = ConsistencyStats{};
    return options_.stop.ToStatus();
  }
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(compiled_->dtd));
  ConstraintSet combined = committed_;
  for (const Constraint& c : sigma.constraints()) combined.Add(c);
  ++stats_.queries;

  // With memoization off the canonical key is never needed — rendering and
  // sorting the combined set is measurable on large Σ, so skip it outright.
  double memo_key_ms = 0.0;     // xicc-lint: allow(exact-arithmetic)
  double memo_lookup_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  std::string key;
  if (memo_ != nullptr) {
    {
      StageTimer timer(&stage_tally_, Stage::kMemoKey, &memo_key_ms);
      key = CanonicalKey(combined);
    }
    std::shared_ptr<const ConsistencyResult> cached;
    {
      // Lock wait + hold + refcount bump; the payload copy below is
      // deliberately OUTSIDE this timer so memo_lookup_ms is lock time,
      // not memcpy time.
      StageTimer timer(&stage_tally_, Stage::kMemoLookup, &memo_lookup_ms);
      cached = memo_->LookupShared(key);
    }
    if (cached != nullptr) {
      ++stats_.memo_hits;
      ConsistencyResult hit = *cached;
      hit.stats.memo_hits = 1;
      hit.stats.memo_misses = 0;
      hit.stats.compile_ms = 0.0;
      hit.stats.session_setup_ms = 0.0;
      hit.stats.memo_key_ms = memo_key_ms;
      hit.stats.memo_lookup_ms = memo_lookup_ms;
      hit.stats.memo_store_ms = 0.0;
      return hit;
    }
  }
  ++stats_.memo_misses;

  XICC_DCHECK_AUDIT(AuditCompiledDtd(*compiled_));
  Result<ConsistencyResult> result = [&] {
    StageTimer timer(&stage_tally_, Stage::kSolve);
    return CheckUncached(combined);
  }();
  // The query must leave the shared artifact untouched and the session trail
  // balanced (every push the solve made was popped).
  XICC_DCHECK_AUDIT(AuditCompiledDtd(*compiled_));
  XICC_DCHECK_AUDIT(AuditTrail(system_));
  if (result.ok()) {
    result->stats.memo_misses = 1;
    result->stats.memo_key_ms = memo_key_ms;
    result->stats.memo_lookup_ms = memo_lookup_ms;
    if (!charged_compile_) {
      result->stats.compile_ms = compiled_->compile_ms;
      result->stats.session_setup_ms = stage_tally_.MsFor(Stage::kSessionSetup);
      charged_compile_ = true;
    }
    if (memo_ != nullptr) {
      StageTimer timer(&stage_tally_, Stage::kMemoStore,
                       &result->stats.memo_store_ms);
      stats_.memo_evictions += memo_->Store(key, *result);
    }
  }
  return result;
}

Result<ConsistencyResult> SpecSession::CheckUncached(
    const ConstraintSet& combined) {
  ConstraintSet normalized = combined.Normalize();
  ConsistencyResult result;
  result.constraint_class = combined.Classify();

  switch (result.constraint_class) {
    case ConstraintClass::kEmpty:
    case ConstraintClass::kKeysOnly: {
      result.method = result.constraint_class == ConstraintClass::kEmpty
                          ? "grammar-emptiness"
                          : "keys-only";
      result.consistent = compiled_->facts.has_valid_tree;
      if (!result.consistent) {
        result.explanation =
            "no finite tree conforms to the DTD (the root element type "
            "cannot derive a finite document)";
        return result;
      }
      if (options_.min_witness_nodes > 0) {
        // Route sizing through the Σ-delta path over C_Σ = ∅; the witness
        // gets globally distinct attribute values, which satisfy every key.
        return CheckDelta(ConstraintSet(), normalized, std::move(result),
                          DeltaKind::kMinSizeOnly);
      }
      if (options_.build_witness) {
        XICC_RETURN_IF_ERROR(AttachWitness(
            *compiled_, normalized, options_,
            compiled_->minimal_plan.Build(compiled_->dtd), &result));
      }
      return result;
    }

    case ConstraintClass::kUnaryKeyFk:
    case ConstraintClass::kUnaryWithNegKey:
      return CheckDelta(normalized, normalized, std::move(result),
                        DeltaKind::kCardinality);

    case ConstraintClass::kUnaryWithNegIc:
    case ConstraintClass::kMultiAttribute:
      // Negated inclusions need the per-query Section 5 region system (its
      // z_θ variables depend on Σ, so there is no shared skeleton to delta
      // against); the undecidable class errors out identically either way.
      ++stats_.fresh_fallbacks;
      return CheckConsistency(compiled_->dtd, combined, options_);
  }
  return Status::Internal("unhandled constraint class");
}

Result<ConsistencyResult> SpecSession::CheckDelta(const ConstraintSet& encoded,
                                                  const ConstraintSet& evaluate,
                                                  ConsistencyResult result,
                                                  DeltaKind kind) {
  const CardinalityEncoding& sk = compiled_->skeleton;

  // Same preconditions BuildCardinalityEncoding enforces on the fresh path.
  for (const Constraint& c : encoded.constraints()) {
    if (c.kind == ConstraintKind::kForeignKey) {
      return Status::InvalidArgument(
          "BuildCardinalityEncoding expects a normalized constraint set");
    }
    if (c.kind == ConstraintKind::kNegInclusion) {
      return Status::InvalidArgument(
          "negated inclusions require the Section 5 set-representation "
          "system");
    }
    if (!c.IsUnary()) {
      return Status::InvalidArgument("constraint '" + c.ToString() +
                                     "' is not unary");
    }
  }

  ++stats_.sigma_delta_checks;
  result.stats.sigma_delta_checks = 1;

  std::set<std::pair<std::string, std::string>> mentioned;
  for (const Constraint& c : encoded.constraints()) {
    mentioned.emplace(c.type1, c.attrs1[0]);
    if (c.kind == ConstraintKind::kInclusion) {
      mentioned.emplace(c.type2, c.attrs2[0]);
    }
  }

  // Everything below the checkpoint is this query's: the C_Σ rows, the
  // min-size row, and whatever the in-place solver pushes. Audit builds
  // check the trail and the warm basis at this boundary — the exact
  // precondition of the Σ-delta warm re-solve.
  XICC_DCHECK_AUDIT(AuditTrail(system_));
  if (warm_.valid) {
    XICC_DCHECK_AUDIT(AuditTableau(system_, warm_.base_tableau));
  }
  TrailScope scope(&system_);

  // Committed constraints' rows are already materialized below every
  // checkpoint (see Commit); only the true delta rides the trail.
  for (const Constraint& c : encoded.constraints()) {
    if (encoded_committed_.count(c.ToString()) > 0) continue;
    AppendConstraintRow(c);
  }
  if (options_.min_witness_nodes > 0) {
    LinearExpr total;
    for (const auto& [symbol, var] : sk.ext_var) {
      if (symbol == "S" || sk.simplified.IsSynthetic(symbol)) continue;
      total.Add(var, BigInt(1));
    }
    system_.AddConstraint(
        total, RelOp::kGe,
        BigInt(static_cast<int64_t>(options_.min_witness_nodes)));
  }

  // Conditionals only for the mentioned pairs, exactly as the fresh
  // encoding carries them; unmentioned pairs stay slack (0 ≤ y ≤ x).
  std::vector<Conditional> conditionals;
  conditionals.reserve(mentioned.size());
  for (const auto& pair : mentioned) {
    conditionals.push_back({LinearExpr::Var(sk.ext_var.at(pair.first)),
                            LinearExpr::Var(sk.attr_var.at(pair))});
  }

  result.stats.system_variables = system_.NumVariables();
  result.stats.system_constraints =
      system_.NumConstraints() + conditionals.size();

  IlpSolution partial;
  EncodingSolveOptions solve_options = ToSolveOptions(options_);
  solve_options.ilp.partial = &partial;
  Result<IlpSolution> solved = SolveEncodingSystemInPlace(
      sk, &system_, conditionals, solve_options, &warm_);
  XICC_DCHECK_AUDIT(AuditTrail(system_));
  if (warm_.valid) {
    XICC_DCHECK_AUDIT(AuditTableau(system_, warm_.base_tableau));
  }
  if (!solved.ok()) {
    // A stopped or exhausted delta check still reports the work it did;
    // the trail itself unwinds via `scope` exactly as on a verdict.
    FillIlpStats(partial, &result.stats);
    last_partial_ = result.stats;
    return solved.status();
  }

  if (kind == DeltaKind::kCardinality) {
    result.method = options_.strategy == SolveStrategy::kCaseSplit
                        ? "ilp-case-split"
                        : "ilp-big-m";
  }
  FillIlpStats(*solved, &result.stats);
  result.consistent = solved->feasible;
  if (!result.consistent) {
    result.explanation =
        kind == DeltaKind::kMinSizeOnly
            ? "the DTD admits no document with the requested minimum size"
            : "the cardinality system Ψ(D,Σ) has no solution over the "
              "nonnegative integers (Lemma 4.6): the DTD's counting "
              "constraints contradict the keys/foreign keys";
    return result;
  }
  if (options_.build_witness) {
    // The Lemma 4.4 prefix value sets, restricted to the mentioned pairs
    // (the skeleton's attr_var covers every declared pair; unmentioned ones
    // take fresh distinct values inside BuildWitnessTree, as on the fresh
    // path).
    std::map<std::pair<std::string, std::string>, std::vector<std::string>>
        value_sets;
    for (const auto& pair : mentioned) {
      const BigInt& count = solved->values[sk.attr_var.at(pair)];
      std::vector<std::string> values;
      if (count.FitsInt64()) {
        int64_t n = count.ToInt64();
        values.reserve(static_cast<size_t>(n));
        for (int64_t i = 1; i <= n; ++i) {
          values.push_back("a" + std::to_string(i));
        }
      }
      value_sets.emplace(pair, std::move(values));
    }
    XICC_RETURN_IF_ERROR(AttachWitness(
        *compiled_, evaluate, options_,
        BuildWitnessTree(sk, *solved, value_sets, options_.witness), &result));
  }
  return result;
}

Result<ImplicationResult> SpecSession::Implies(const Constraint& phi) {
  const Dtd& dtd = compiled_->dtd;
  {
    ConstraintSet just_phi;
    just_phi.Add(phi);
    XICC_RETURN_IF_ERROR(just_phi.CheckAgainst(dtd));
  }

  // A foreign key is implied iff both of its components are (Section 2.2).
  if (phi.kind == ConstraintKind::kForeignKey) {
    Constraint inclusion =
        Constraint::Inclusion(phi.type1, phi.attrs1, phi.type2, phi.attrs2);
    Constraint key = Constraint::Key(phi.type2, phi.attrs2);
    XICC_ASSIGN_OR_RETURN(ImplicationResult on_inclusion, Implies(inclusion));
    if (!on_inclusion.implied) {
      on_inclusion.explanation = "the inclusion component is not implied; " +
                                 on_inclusion.explanation;
      return on_inclusion;
    }
    XICC_ASSIGN_OR_RETURN(ImplicationResult on_key, Implies(key));
    if (!on_key.implied) {
      on_key.explanation =
          "the key component is not implied; " + on_key.explanation;
    }
    return on_key;
  }

  ConstraintClass sigma_class = committed_.Classify();

  // Lemma 3.7 fast path from the compiled multiplicity facts.
  if (phi.kind == ConstraintKind::kKey &&
      (sigma_class == ConstraintClass::kEmpty ||
       sigma_class == ConstraintClass::kKeysOnly)) {
    ImplicationResult result;
    result.method = "keys-only";
    if (Subsumes(committed_, phi)) {
      result.implied = true;
      result.explanation = "Σ contains a key that φ is a superkey of";
      return result;
    }
    auto mult = compiled_->facts.multiplicity.find(phi.type1);
    bool can_have_two = mult != compiled_->facts.multiplicity.end() &&
                        mult->second == Multiplicity::kAtLeastTwo;
    if (!can_have_two) {
      result.implied = true;
      result.explanation =
          "no tree valid w.r.t. the DTD contains two '" + phi.type1 +
          "' elements, so every key over it holds vacuously (Lemma 3.6)";
      return result;
    }
    if (options_.build_witness) {
      // The Lemma 3.7 counterexample construction is a one-off tree build;
      // route it through the fresh pipeline.
      ++stats_.fresh_fallbacks;
      return CheckImplication(dtd, committed_, phi, options_);
    }
    result.implied = false;
    result.explanation =
        "Σ does not subsume φ and some valid tree has two '" + phi.type1 +
        "' elements sharing the key attributes (Lemma 3.7)";
    return result;
  }

  // General path: (D,Σ) ⊢ φ iff Σ ∪ {¬φ} is inconsistent over D — answered
  // by the session's own Check, so the refutation rides the skeleton and
  // the memo.
  XICC_ASSIGN_OR_RETURN(Constraint negated, Negate(phi));
  ConstraintSet refutation;
  refutation.Add(std::move(negated));
  XICC_ASSIGN_OR_RETURN(ConsistencyResult consistency, Check(refutation));
  ImplicationResult result;
  result.method = "refutation";
  result.stats = consistency.stats;
  result.implied = !consistency.consistent;
  if (result.implied) {
    result.explanation =
        "Σ ∪ {¬φ} is inconsistent over D: " + consistency.explanation;
  } else {
    result.explanation =
        "Σ ∪ {¬φ} is consistent over D; the witness violates φ";
    if (consistency.witness.has_value()) {
      if (options_.verify_witness) {
        XICC_RETURN_IF_ERROR(VerifyCounterexample(*consistency.witness,
                                                  *compiled_, committed_,
                                                  phi));
      }
      result.counterexample = std::move(consistency.witness);
    }
  }
  return result;
}

void SpecSession::AppendConstraintRow(const Constraint& c) {
  const CardinalityEncoding& sk = compiled_->skeleton;
  VarId y1 = sk.attr_var.at({c.type1, c.attrs1[0]});
  VarId x1 = sk.ext_var.at(c.type1);
  switch (c.kind) {
    case ConstraintKind::kKey:
      system_.AddEq(LinearExpr::Var(y1), LinearExpr::Var(x1));
      break;
    case ConstraintKind::kNegKey: {
      LinearExpr rhs;
      rhs.Add(x1, BigInt(1));
      rhs.AddConstant(BigInt(-1));
      system_.AddLe(LinearExpr::Var(y1), rhs);
      break;
    }
    case ConstraintKind::kInclusion: {
      VarId y2 = sk.attr_var.at({c.type2, c.attrs2[0]});
      system_.AddLe(LinearExpr::Var(y1), LinearExpr::Var(y2));
      break;
    }
    default:
      break;
  }
}

Status SpecSession::Commit(const ConstraintSet& sigma) {
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(compiled_->dtd));
  commit_layers_.push_back(committed_.size());
  for (const Constraint& c : sigma.constraints()) committed_.Add(c);

  // Materialize the layer's encodable C_Σ rows below every later Check
  // checkpoint, so Checks re-push only their delta. The commit checkpoint
  // pairs with Rollback's pop. Non-encodable constraints (multi-attribute,
  // negated inclusions) stay out: queries touching them never reach
  // CheckDelta — they route through the fresh fallback, which ignores the
  // session system entirely.
  system_.PushCheckpoint();
  ConstraintSet layer = sigma.Normalize();
  for (const Constraint& c : layer.constraints()) {
    if (!c.IsUnary()) continue;
    if (c.kind != ConstraintKind::kKey && c.kind != ConstraintKind::kNegKey &&
        c.kind != ConstraintKind::kInclusion) {
      continue;
    }
    std::string rendered = c.ToString();
    if (encoded_committed_.count(rendered) > 0) continue;
    AppendConstraintRow(c);
    encoded_committed_.insert(std::move(rendered));
  }

  // The warm basis deliberately stays on the skeleton prefix: committed
  // rows are priced out by each query's dual re-solve, which measures as
  // ~free next to the alternative of extending the basis at commit time
  // (an extension pays real dual pivots per commit and saves none later —
  // the leaf re-solve repairs feasibility over the same rows either way).
  return Status::Ok();
}

void SpecSession::Rollback() {
  if (commit_layers_.empty()) return;
  system_.PopCheckpoint();
  size_t keep = commit_layers_.back();
  commit_layers_.pop_back();
  const auto& all = committed_.constraints();
  committed_ = ConstraintSet(
      std::vector<Constraint>(all.begin(), all.begin() + keep));

  // Rows of surviving layers are still on the trail; rebuild the index from
  // what remains. The extended warm basis may cover popped rows, so fall
  // back to the skeleton prefix (the next Commit re-extends over everything
  // current).
  encoded_committed_.clear();
  ConstraintSet remaining = committed_.Normalize();
  for (const Constraint& c : remaining.constraints()) {
    if (!c.IsUnary()) continue;
    if (c.kind != ConstraintKind::kKey && c.kind != ConstraintKind::kNegKey &&
        c.kind != ConstraintKind::kInclusion) {
      continue;
    }
    encoded_committed_.insert(c.ToString());
  }
  warm_.base_tableau = compiled_->skeleton_tableau;
  warm_.valid = compiled_->skeleton_tableau_valid;
}

}  // namespace xicc
