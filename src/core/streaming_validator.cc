#include "core/streaming_validator.h"

#include <optional>

#include "base/strings.h"

namespace xicc {

namespace {

std::string RenderTuple(const std::vector<std::string>& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + tuple[i] + "\"";
  }
  return out + ")";
}

/// x[X] from the start-tag attributes; nullopt if any attribute is missing.
std::optional<std::vector<std::string>> TupleOf(
    const std::vector<std::pair<std::string, std::string>>& attrs,
    const std::vector<std::string>& wanted) {
  std::vector<std::string> tuple;
  tuple.reserve(wanted.size());
  for (const std::string& name : wanted) {
    bool found = false;
    for (const auto& [attr, value] : attrs) {
      if (attr == name) {
        tuple.push_back(value);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return tuple;
}

}  // namespace

std::string StreamingValidator::Summary::ToString() const {
  if (conforms) return "conforms";
  return Join(problems, "\n");
}

StreamingValidator::StreamingValidator(const Dtd* dtd,
                                       const ConstraintSet* sigma)
    : dtd_(dtd), normalized_(sigma->Normalize()) {
  for (const Constraint& c : normalized_.constraints()) {
    switch (c.kind) {
      case ConstraintKind::kKey:
      case ConstraintKind::kNegKey:
        keys_by_type_[c.type1].push_back(keys_.size());
        keys_.push_back({c, {}, false});
        break;
      case ConstraintKind::kInclusion:
      case ConstraintKind::kNegInclusion:
        inclusions_by_type_[c.type1].emplace_back(inclusions_.size(), 0);
        inclusions_by_type_[c.type2].emplace_back(inclusions_.size(), 1);
        inclusions_.push_back({c, {}, {}});
        break;
      case ConstraintKind::kForeignKey:
        break;  // Normalize() removed these.
    }
  }
}

void StreamingValidator::Problem(const std::string& message) {
  summary_.conforms = false;
  summary_.problems.push_back(message);
}

ContentModelMatcher* StreamingValidator::MatcherFor(const std::string& type) {
  auto it = matchers_.find(type);
  if (it == matchers_.end()) {
    it = matchers_.emplace(type, ContentModelMatcher(dtd_->ContentOf(type)))
             .first;
  }
  return &it->second;
}

void StreamingValidator::FeedChild(const std::string& symbol) {
  if (stack_.empty()) return;
  OpenElement& parent = stack_.back();
  parent.had_children = true;
  if (!parent.tracked ||
      parent.match_state == ContentModelMatcher::kDeadState) {
    return;
  }
  int next = MatcherFor(parent.type)->Step(parent.match_state, symbol);
  if (next == ContentModelMatcher::kDeadState) {
    Problem("children of '" + parent.type + "' leave L(" +
            dtd_->ContentOf(parent.type)->ToString() + ") at '" + symbol +
            "'");
  }
  parent.match_state = next;
}

void StreamingValidator::RecordTuples(
    const std::string& type,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  auto keys = keys_by_type_.find(type);
  if (keys != keys_by_type_.end()) {
    for (size_t index : keys->second) {
      KeyState& state = keys_[index];
      auto tuple = TupleOf(attrs, state.constraint.attrs1);
      if (!tuple.has_value()) {
        Problem("element '" + type + "' lacks an attribute referenced by " +
                state.constraint.ToString());
        continue;
      }
      bool fresh = state.seen.insert(*tuple).second;
      if (!fresh) {
        state.duplicate_seen = true;
        if (state.constraint.kind == ConstraintKind::kKey) {
          Problem("two '" + type + "' elements share key value " +
                  RenderTuple(*tuple));
        }
      }
    }
  }
  auto inclusions = inclusions_by_type_.find(type);
  if (inclusions != inclusions_by_type_.end()) {
    for (const auto& [index, side] : inclusions->second) {
      InclusionState& state = inclusions_[index];
      const auto& wanted = side == 0 ? state.constraint.attrs1
                                     : state.constraint.attrs2;
      auto tuple = TupleOf(attrs, wanted);
      if (!tuple.has_value()) {
        if (side == 0) {
          Problem("element '" + type + "' lacks an attribute referenced by " +
                  state.constraint.ToString());
        }
        continue;
      }
      (side == 0 ? state.left : state.right).insert(std::move(*tuple));
    }
  }
}

Status StreamingValidator::StartElement(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  ++summary_.elements_seen;
  if (stack_.empty()) {
    if (root_seen_) {
      Problem("multiple root elements");
    } else if (name != dtd_->root()) {
      Problem("root is <" + name + ">, DTD requires <" + dtd_->root() + ">");
    }
    root_seen_ = true;
  } else {
    FeedChild(name);
  }

  bool tracked = dtd_->HasElement(name);
  if (!tracked) {
    Problem("element type '" + name + "' is not declared in the DTD");
  } else {
    // Exactly the declared attribute set.
    for (const std::string& required : dtd_->AttributesOf(name)) {
      bool present = false;
      for (const auto& [attr, value] : attrs) {
        if (attr == required) {
          present = true;
          break;
        }
      }
      if (!present) {
        Problem("element '" + name + "' is missing required attribute '" +
                required + "'");
      }
    }
    for (const auto& [attr, value] : attrs) {
      if (!dtd_->HasAttribute(name, attr)) {
        Problem("element '" + name + "' carries undeclared attribute '" +
                attr + "'");
      }
    }
    RecordTuples(name, attrs);
  }
  stack_.push_back(
      {name, ContentModelMatcher::kStartState, tracked, false});
  return Status::Ok();
}

Status StreamingValidator::Text(const std::string& value) {
  (void)value;
  FeedChild("S");
  return Status::Ok();
}

Status StreamingValidator::EndElement(const std::string& name) {
  if (stack_.empty()) return Status::Ok();  // Defensive; parser balances.
  OpenElement open = stack_.back();
  stack_.pop_back();
  if (!open.tracked) return Status::Ok();
  ContentModelMatcher* matcher = MatcherFor(open.type);
  bool accepted = open.match_state != ContentModelMatcher::kDeadState &&
                  matcher->AcceptsAt(open.match_state);
  if (!accepted && !open.had_children) {
    // Parsers drop empty text: an element whose model is exactly one text
    // node may legitimately arrive childless (ValidateOptions'
    // implicit_empty_text, mirrored here).
    int with_text =
        matcher->Step(ContentModelMatcher::kStartState, "S");
    accepted = matcher->AcceptsAt(with_text);
  }
  if (!accepted &&
      open.match_state != ContentModelMatcher::kDeadState) {
    Problem("children of '" + open.type + "' stop short of L(" +
            dtd_->ContentOf(open.type)->ToString() + ")");
  }
  (void)name;
  return Status::Ok();
}

StreamingValidator::Summary StreamingValidator::Finish() {
  if (!root_seen_) Problem("document has no root element");

  for (const KeyState& state : keys_) {
    if (state.constraint.kind == ConstraintKind::kNegKey &&
        !state.duplicate_seen) {
      Problem("no two '" + state.constraint.type1 +
              "' elements share a value; " + state.constraint.ToString() +
              " requires a clash");
    }
  }
  for (const InclusionState& state : inclusions_) {
    if (state.constraint.kind == ConstraintKind::kInclusion) {
      for (const auto& tuple : state.left) {
        if (state.right.count(tuple) == 0) {
          Problem("value " + RenderTuple(tuple) + " of '" +
                  state.constraint.type1 + "' has no matching '" +
                  state.constraint.type2 + "' element");
        }
      }
    } else {  // kNegInclusion: some left tuple must dangle.
      bool dangling = false;
      for (const auto& tuple : state.left) {
        if (state.right.count(tuple) == 0) {
          dangling = true;
          break;
        }
      }
      if (!dangling) {
        Problem("every '" + state.constraint.type1 + "' value occurs among '" +
                state.constraint.type2 + "'; " +
                state.constraint.ToString() + " requires a dangling value");
      }
    }
  }
  return summary_;
}

Result<StreamingValidator::Summary> ValidateStream(
    std::string_view xml, const Dtd& dtd, const ConstraintSet& sigma,
    const XmlParseOptions& options) {
  StreamingValidator validator(&dtd, &sigma);
  XICC_RETURN_IF_ERROR(ParseXmlEvents(xml, &validator, options));
  return validator.Finish();
}

}  // namespace xicc
