#pragma once

#include <optional>
#include <string>

#include "constraints/constraint.h"
#include "core/consistency.h"
#include "dtd/dtd.h"
#include "xml/tree.h"

namespace xicc {

struct ImplicationResult {
  bool implied = false;
  /// "keys-only" (Theorem 3.5(3)/Lemma 3.7, linear) or "refutation" (via
  /// consistency of Σ ∪ {¬φ}, Theorems 4.10/5.4).
  std::string method;
  std::string explanation;
  /// When not implied and witness construction is enabled: a checked tree
  /// with T ⊨ D, T ⊨ Σ, T ⊭ φ.
  std::optional<XmlTree> counterexample;
  ConsistencyStats stats;
};

/// The implication problem: does every T with T ⊨ D and T ⊨ Σ also satisfy
/// φ, written (D,Σ) ⊢ φ?
///
/// Dispatch:
///  - Σ keys-only and φ a key (any arity): Lemma 3.7 — (D,Σ) ⊢ φ iff Σ
///    subsumes φ (some key τ[Y] → τ with Y ⊆ X) or no valid tree has two τ
///    elements. Linear time.
///  - φ a unary key / inclusion: (D,Σ) ⊢ φ iff Σ ∪ {¬φ} is inconsistent
///    over D (coNP; Theorem 4.10 / 5.4).
///  - φ a unary foreign key ℓ1 ∧ ℓ2: implied iff both components are.
///  - multi-attribute Σ or φ outside these cases: kUndecidableClass
///    (Corollary 3.4).
Result<ImplicationResult> CheckImplication(
    const Dtd& dtd, const ConstraintSet& sigma, const Constraint& phi,
    const ConsistencyOptions& options = {});

}  // namespace xicc
