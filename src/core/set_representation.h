#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cardinality_encoding.h"
#include "ilp/solver.h"

namespace xicc {

/// The Section 5 system Ψ'(D,Σ) for C^unary_{K¬,IC¬} — unary keys, unary
/// inclusion constraints, and their negations (Theorem 5.1 / Lemmas 5.2–5.3).
///
/// On top of the cardinality encoding, the value *sets* ext(τi.li) get a set
/// representation: region variables z_θ, one per nonempty θ ⊆ pairs, count
/// the values lying in exactly the sets {A_i : θ(i)=1}; then
///
///   u_ij = |A_i ∩ A_j| = Σ_{θ(i)=θ(j)=1} z_θ,
///   v_ij = |A_i \ A_j| = Σ_{θ(i)=1, θ(j)=0} z_θ,
///   u_ii = ext(τi.li),  v_ij = 0 for τi.li ⊆ τj.lj,  v_ij ≥ 1 for ⊄.
///
/// Every solution's u/v matrices admit a set representation by construction
/// (z_θ materializes the regions directly, which is how Lemma 5.3's bounded
/// system works), so the NP algorithm's intersection-pattern check is
/// discharged constructively.
///
/// Optimization over the paper's presentation: z_θ variables are created per
/// *connected component* of the constraint graph on mentioned pairs (edges =
/// inclusions and negated inclusions), and only for components containing a
/// negated inclusion. Components without one are realizable by the prefix
/// chains of Lemma 4.4, and independent components share no constraints, so
/// the shrink is sound and complete while reducing Σ 2^k to Σ_c 2^{k_c}.
struct SetRepresentationEncoding {
  CardinalityEncoding base;
  /// All mentioned attribute pairs, indexed.
  std::vector<std::pair<std::string, std::string>> pairs;

  struct Component {
    std::vector<size_t> pair_idx;  ///< Members, as indices into `pairs`.
    bool needs_regions = false;    ///< Contains a negated inclusion.
    /// For region components: z_θ per nonzero bitmask over pair_idx
    /// (z[mask-1] corresponds to mask).
    std::vector<VarId> z;
  };
  std::vector<Component> components;
};

struct SetRepresentationOptions {
  /// Upper bound on pairs per region component; the z_θ system is
  /// exponential in this (the paper's Lemma 5.3 notes the variable count is
  /// exponential), so larger components are rejected with
  /// kResourceExhausted.
  size_t max_component_pairs = 14;
};

/// Builds Ψ'(D,Σ). `sigma` must be normalized and unary; negated inclusions
/// are allowed (that is the point).
Result<SetRepresentationEncoding> BuildSetRepresentation(
    const Dtd& dtd, const ConstraintSet& sigma,
    const SetRepresentationOptions& options = {});

/// Materializes concrete attribute-value sets from a solution of the
/// system: prefix chains for chain components, region unions for region
/// components (disjoint universes per component). Set sizes must fit in
/// memory; astronomically large solutions yield kResourceExhausted.
Result<std::map<std::pair<std::string, std::string>,
                std::vector<std::string>>>
RealizeValueSets(const SetRepresentationEncoding& encoding,
                 const IlpSolution& solution);

}  // namespace xicc
