#include "core/artifact_cache.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <utility>

namespace xicc {

namespace {

// Best-effort mkdir -p for a single level plus parents. Races with other
// processes creating the same directories are benign (EEXIST).
Status EnsureDir(const std::string& dir) {
  std::string prefix;
  prefix.reserve(dir.size());
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir failed for artifact cache dir: " + prefix);
    }
  }
  return Status::Ok();
}

}  // namespace

const char* ArtifactSourceName(ArtifactSource source) {
  switch (source) {
    case ArtifactSource::kCold:
      return "cold";
    case ArtifactSource::kMemory:
      return "memory";
    case ArtifactSource::kDiskCache:
      return "disk-cache";
    case ArtifactSource::kMmap:
      return "mmap";
  }
  return "unknown";
}

ArtifactCache::ArtifactCache(Options options)
    : options_(std::move(options)) {
  if (options_.memory_capacity == 0) options_.memory_capacity = 1;
}

std::string ArtifactCache::DiskPathFor(const Dtd& dtd) const {
  if (options_.dir.empty()) return "";
  return options_.dir + "/" + ArtifactFileName(dtd);
}

std::shared_ptr<const CompiledDtd> ArtifactCache::MemoryGet(uint64_t key) {
  MutexLock lock(&mu_);
  auto it = memory_.find(key);
  if (it == memory_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.first);
  ++stats_.memory_hits;
  return it->second.second;
}

void ArtifactCache::MemoryPut(uint64_t key,
                              std::shared_ptr<const CompiledDtd> compiled) {
  MutexLock lock(&mu_);
  auto it = memory_.find(key);
  if (it != memory_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.first);
    it->second.second = std::move(compiled);
    return;
  }
  lru_.push_front(key);
  memory_.emplace(key, std::make_pair(lru_.begin(), std::move(compiled)));
  while (memory_.size() > options_.memory_capacity) {
    memory_.erase(lru_.back());
    lru_.pop_back();
  }
}

Result<ArtifactCache::Lookup> ArtifactCache::GetOrCompile(const Dtd& dtd,
                                                          StageTally* tally) {
  const uint64_t key = DtdContentHash(dtd);

  if (std::shared_ptr<const CompiledDtd> hit = MemoryGet(key)) {
    return Lookup{std::move(hit), ArtifactSource::kMemory};
  }

  const std::string path = DiskPathFor(dtd);
  bool had_corrupt_file = false;
  struct stat st;
  const bool on_disk = !path.empty() && ::stat(path.c_str(), &st) == 0;
  if (on_disk) {
    ArtifactLoadInfo info;
    Result<std::shared_ptr<const CompiledDtd>> loaded = [&] {
      StageTimer timer(tally, Stage::kArtifactLoad);
      return LoadCompiledDtd(path, &info);
    }();
    if (loaded.ok()) {
      // The artifact's content key was verified against its own decoded
      // DTD; this check pins it to the DTD the CALLER asked for, so a file
      // renamed into the wrong cache slot cannot serve a foreign bundle.
      if (DtdContentHash(loaded.value()->dtd) == key) {
        std::shared_ptr<const CompiledDtd> compiled =
            std::move(loaded).value();
        MemoryPut(key, compiled);
        {
          MutexLock lock(&mu_);
          ++stats_.disk_hits;
        }
        return Lookup{std::move(compiled), info.mmap
                                               ? ArtifactSource::kMmap
                                               : ArtifactSource::kDiskCache};
      }
      had_corrupt_file = true;
    } else {
      // The file exists but failed to load or validate — recompile and
      // replace it below.
      had_corrupt_file = true;
    }
  }

  XICC_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledDtd> compiled,
                        CompileDtd(dtd));
  if (!path.empty()) {
    StageTimer timer(tally, Stage::kArtifactStore);
    Status stored = EnsureDir(options_.dir);
    if (stored.ok()) stored = StoreCompiledDtd(*compiled, path);
    MutexLock lock(&mu_);
    if (!stored.ok()) ++stats_.store_failures;
  }
  MemoryPut(key, compiled);
  {
    MutexLock lock(&mu_);
    ++stats_.cold_compiles;
    if (had_corrupt_file) ++stats_.corrupt_rejected;
  }
  return Lookup{std::move(compiled), ArtifactSource::kCold};
}

ArtifactCacheStats ArtifactCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace xicc
