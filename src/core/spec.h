#pragma once

#include <string>
#include <string_view>

#include "constraints/constraint.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "dtd/dtd.h"
#include "xml/tree.h"

namespace xicc {

/// An XML specification: a DTD plus a set of integrity constraints — the
/// input of the XML SPECIFICATION CONSISTENCY problem. This is the
/// top-level convenience API; the individual analyses are also available
/// directly (CheckConsistency, CheckImplication, ValidateXml, Evaluate).
struct XmlSpec {
  Dtd dtd;
  ConstraintSet constraints;

  /// Parses a DTD (dtd_parser.h syntax) and a constraint block
  /// (constraint_parser.h syntax) and cross-checks them.
  static Result<XmlSpec> Parse(std::string_view dtd_text,
                               std::string_view constraints_text);

  /// Static validation: is the specification meaningful at all?
  Result<ConsistencyResult> CheckConsistent(
      const ConsistencyOptions& options = {}) const;

  /// Does the specification imply `phi`?
  Result<ImplicationResult> Implies(const Constraint& phi,
                                    const ConsistencyOptions& options = {})
      const;
  /// Parses `phi` from the constraint syntax first.
  Result<ImplicationResult> Implies(std::string_view phi_text,
                                    const ConsistencyOptions& options = {})
      const;

  /// Dynamic validation of a concrete document against both the DTD and the
  /// constraints; works for every constraint class, including the
  /// undecidable ones (checking a *given* tree is easy — it is the
  /// existential question that is hard).
  struct DocumentReport {
    bool conforms = false;
    std::string details;
  };
  DocumentReport CheckDocument(const XmlTree& tree) const;
};

}  // namespace xicc
