#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/stage_timer.h"
#include "base/thread_annotations.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "core/witness.h"
#include "dtd/compiled.h"
#include "ilp/simplex.h"

namespace xicc {

/// Everything about a DTD that consistency and implication queries reuse,
/// compiled once and shared read-only — the systems realization of
/// Corollary 4.11's fixed-DTD regime ("one often defines the DTD of a
/// specification at one time, but writes constraints in stages"). All
/// members are immutable after CompileDtd returns; a single instance may be
/// shared by any number of sessions and threads.
struct CompiledDtd {
  /// Owning copy of the source DTD (regex ASTs are shared RegexPtr nodes,
  /// so pointer-keyed tables below stay valid for this copy).
  Dtd dtd;
  /// Linear-time grammar facts: productive/reachable sets, emptiness,
  /// Lemma 3.6 multiplicities.
  DtdFacts facts;
  /// Frozen Glushkov DFAs, one per content model (thread-safe matching).
  CompiledContentModels content_models;
  /// Knuth shortest-derivation table for minimal-witness construction.
  MinimalTreePlan minimal_plan;
  /// The Σ-independent skeleton of Ψ(D,Σ): simplified DTD, ext and
  /// occurrence variables with their production/root/sum rows, unproductive
  /// pins, and — unlike a fresh per-query encoding — ext(τ.l) variables with
  /// their ext(τ.l) ≤ ext(τ) bound rows for EVERY declared attribute pair.
  /// Pre-creating all pairs means a query only ever appends ROWS, never
  /// variables, which is exactly the precondition for dual-simplex warm
  /// starts from the skeleton basis. (Unmentioned pairs are sound: their
  /// variables are constrained only by 0 ≤ ext(τ.l) ≤ ext(τ), so any
  /// solution of the mentioned-pairs-only system extends to one here and
  /// vice versa by projection — verdicts are identical.)
  CardinalityEncoding skeleton;
  /// The skeleton LP's optimal basis, factorized cold exactly once at
  /// compile time. Valid for warm re-solves of any skeleton + C_Σ system
  /// because the skeleton rows form a prefix of every session system.
  LpTableau skeleton_tableau;
  bool skeleton_tableau_valid = false;
  /// Wall time CompileDtd spent, for the compile-vs-query ablation.
  double compile_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
  /// Content digest stamped by CompileDtd (core/audit.h); XICC_AUDIT builds
  /// re-check it before and after every session query to machine-check the
  /// artifact's immutability-under-sharing contract. 0 = not yet stamped.
  uint64_t audit_digest = 0;
};

/// Compiles `dtd` into the shared artifact bundle. Fails only if the DTD
/// cannot be simplified (SimplifyDtd) — an empty-language DTD still compiles
/// (facts.has_valid_tree = false answers every query immediately).
Result<std::shared_ptr<const CompiledDtd>> CompileDtd(const Dtd& dtd);

/// Session-cumulative counters, aggregated across every query answered.
struct SpecSessionStats {
  size_t queries = 0;
  /// Queries answered by pushing only C_Σ rows onto the compiled skeleton's
  /// trail (one PushCheckpoint / append / solve / PopCheckpoint round).
  size_t sigma_delta_checks = 0;
  /// Queries routed through the fresh CheckConsistency / CheckImplication
  /// pipeline (negated inclusions, undecidable classes, key
  /// counterexamples).
  size_t fresh_fallbacks = 0;
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  size_t memo_evictions = 0;
};

/// Thread-safe memo of canonicalized-Σ keys → consistency results,
/// hash-sharded so concurrent sessions (CheckBatch worker chunks) share
/// cached verdicts without contending on one lock. The hot hit path is
/// read-mostly by construction: entries hold their payload behind a
/// `shared_ptr<const ConsistencyResult>`, so a Lookup's critical section is
/// a hash find + an O(1) stamp write + a refcount bump — the payload copy
/// (method string, stats, possibly a whole witness tree) happens OUTSIDE
/// the shard lock. Recency is a per-entry stamp from a shard-local clock
/// (second-chance/CLOCK flavor) instead of an LRU list: no splice, no list
/// node churn, and eviction pays an O(shard-entries) min-stamp scan only on
/// the rare insert-at-capacity path. Capacity is split evenly across
/// shards; hit/miss/store/eviction counters are exact (atomic, never
/// sampled) so concurrency tests can assert accounting to the last lookup.
class SharedSigmaMemo {
 public:
  /// Exact cross-shard totals. hits + misses equals the number of Lookup /
  /// LookupShared calls against a capacity > 0 memo; a capacity-0 memo
  /// bypasses shards, hashing, and counters entirely.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t duplicate_stores = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` = total entries across shards (0 = memoization off);
  /// `num_shards` is clamped to [1, capacity].
  explicit SharedSigmaMemo(size_t capacity, size_t num_shards = 16);

  size_t capacity() const { return capacity_; }

  /// The read-mostly hit path: returns the cached payload (shared,
  /// immutable) or null on miss. The shard lock covers O(1) work only.
  std::shared_ptr<const ConsistencyResult> LookupShared(
      const std::string& key);

  /// Copies the cached result into `*out`; false on miss. The copy is made
  /// outside every lock (convenience wrapper over LookupShared).
  bool Lookup(const std::string& key, ConsistencyResult* out);

  /// Inserts (first writer wins — a duplicate store is a no-op, the results
  /// are identical by determinism). The payload copy is made before the
  /// shard lock is taken. Returns the number of entries evicted (0 or 1)
  /// so callers can tally evictions.
  size_t Store(const std::string& key, const ConsistencyResult& result);

  /// Sums the per-shard counters. Exact at quiescence (no in-flight
  /// Lookup/Store), which is when tests and stats reporters read it.
  Stats TotalStats() const;

 private:
  struct MemoEntry {
    std::shared_ptr<const ConsistencyResult> result;
    /// Shard-clock value of the last touch; the insert-at-capacity scan
    /// evicts the minimum (approximate LRU without list maintenance).
    uint64_t stamp = 0;
  };
  /// Padded to a cache line: adjacent shards' mutexes must not false-share.
  struct alignas(64) MemoShard {
    Mutex mu;  // xicc-analyze: lock-leaf
    std::unordered_map<std::string, MemoEntry> entries XICC_GUARDED_BY(mu);
    uint64_t clock XICC_GUARDED_BY(mu) = 0;
    /// Exact accounting, bumped outside the lock (atomics lose nothing).
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> stores{0};
    std::atomic<uint64_t> duplicate_stores{0};
    std::atomic<uint64_t> evictions{0};
  };

  MemoShard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t num_shards_;
  size_t per_shard_capacity_;
  /// Heap array (not vector): MemoShard is neither movable nor copyable.
  std::unique_ptr<MemoShard[]> shards_;
};

/// A consistency-checking session against one compiled DTD.
///
/// The session owns ONE mutable copy of the skeleton system; each Check
/// pushes a checkpoint, appends the query's C_Σ rows (Lemma 4.4: keys
/// ext(τ.l) = ext(τ), inclusions ext(τ1.l1) ≤ ext(τ2.l2), negated keys
/// ext(τ.l) ≤ ext(τ) − 1), solves in place warm-started from the compiled
/// skeleton basis, and pops — Θ(|Σ|) incremental work where a fresh check
/// rebuilds and refactorizes the full Ψ(D,Σ).
///
/// Verdicts are identical to CheckConsistency on the same (D, Σ); witness
/// *bytes* may differ (a different LP vertex realizes a different tree), but
/// session witnesses are verified the same way (re-validated against the DTD
/// and re-evaluated on Σ) before being returned.
///
/// Committed constraints (Commit/Rollback) become part of every later
/// query — the incremental-authoring workflow: commit the accepted set,
/// Check each candidate as a one-constraint delta.
///
/// Not thread-safe: one session per thread. Sessions sharing a CompiledDtd
/// are cheap (one LinearSystem + one tableau copy, no solving).
class SpecSession {
 public:
  /// Private memo of `memo_capacity` entries (0 = memoization off, and the
  /// session skips canonical-key hashing entirely).
  explicit SpecSession(std::shared_ptr<const CompiledDtd> compiled,
                       const ConsistencyOptions& options = {},
                       size_t memo_capacity = 128);

  /// Shares `memo` with other sessions (CheckBatch worker stripes): repeated
  /// queries hit regardless of which session answered first. A null memo
  /// disables memoization, same as capacity 0.
  SpecSession(std::shared_ptr<const CompiledDtd> compiled,
              const ConsistencyOptions& options,
              std::shared_ptr<SharedSigmaMemo> memo);

  const CompiledDtd& compiled() const { return *compiled_; }
  const ConsistencyOptions& options() const { return options_; }

  /// Arms (or replaces) the stop signal every later query runs under — the
  /// per-item deadline hook CheckBatch uses between items. Pass a default
  /// StopSignal to disarm.
  void SetStop(const StopSignal& stop) { options_.stop = stop; }

  /// Statistics of the most recent query that ended WITHOUT a verdict
  /// (kDeadlineExceeded / kCancelled / kResourceExhausted): how many nodes,
  /// pivots, and search levels the stopped check got through. Meaningful
  /// only immediately after a failed Check/Implies.
  const ConsistencyStats& LastPartialStats() const { return last_partial_; }

  /// Session-cumulative per-stage wall-time attribution: setup (skeleton +
  /// tableau copy), memo key rendering, memo lookup/store lock time, solve.
  /// CheckBatch merges worker sessions' tallies into its BatchRunStats; the
  /// non-const overload lets the batch front-end charge its own stages
  /// (result writes) to the session doing the work.
  const StageTally& stage_tally() const { return stage_tally_; }
  StageTally& stage_tally() { return stage_tally_; }

  /// Consistency of committed() ∪ `sigma` over the compiled DTD. Same
  /// dispatch as CheckConsistency (Figure 5), with the NP cells answered by
  /// the Σ-delta path and the linear cells by the precomputed facts.
  Result<ConsistencyResult> Check(const ConstraintSet& sigma);

  /// (D, committed()) ⊢ φ, same dispatch as CheckImplication; the
  /// refutation path reuses Check (and therefore the skeleton + memo).
  Result<ImplicationResult> Implies(const Constraint& phi);

  /// Makes `sigma` part of every later query, as one layer. Does NOT check
  /// consistency — pair with Check first when that matters.
  ///
  /// Committing is what makes the authoring loop Σ-delta rather than
  /// Σ-rebuild: the layer's C_Σ rows are appended to the session system
  /// permanently (under a commit checkpoint), so every later Check pushes
  /// only its own delta's rows onto the trail; the committed rows ride the
  /// solver's dual re-solve from the skeleton basis.
  Status Commit(const ConstraintSet& sigma);
  /// Drops the most recent Commit layer (no-op with nothing committed).
  void Rollback();
  const ConstraintSet& committed() const { return committed_; }

  const SpecSessionStats& stats() const { return stats_; }

 private:
  enum class DeltaKind {
    /// A linear-cell query with min_witness_nodes > 0: C_Σ = ∅, only the
    /// size row rides the trail; method/explanations stay linear-cell.
    kMinSizeOnly,
    /// The NP cells (kUnaryKeyFk / kUnaryWithNegKey): full C_Σ delta.
    kCardinality,
  };

  /// Trail-delta solve over the session system: pushes `encoded`'s C_Σ rows
  /// (plus the min-size row), solves warm, pops. Witnesses are verified
  /// against `evaluate` (the full normalized set — for min-size queries in
  /// the keys-only cell, `encoded` is empty but the keys still hold by
  /// distinct valuation).
  Result<ConsistencyResult> CheckDelta(const ConstraintSet& encoded,
                                       const ConstraintSet& evaluate,
                                       ConsistencyResult result,
                                       DeltaKind kind);

  /// Appends the one C_Σ row of a normalized unary key / negated key /
  /// inclusion to the session system (Lemma 4.4 shapes). The caller decides
  /// which checkpoint the row lives under.
  void AppendConstraintRow(const Constraint& c);

  /// Cache plumbing around the dispatch.
  Result<ConsistencyResult> CheckUncached(const ConstraintSet& combined);

  std::shared_ptr<const CompiledDtd> compiled_;
  ConsistencyOptions options_;
  /// Session working system: the skeleton rows, with per-query C_Σ rows
  /// living and dying above trail checkpoints.
  LinearSystem system_;
  /// The compiled skeleton basis wrapped for the solver; valid = true, so
  /// the case-split solver reuses it read-only and never overwrites it.
  CaseSplitWarmContext warm_;
  ConstraintSet committed_;
  std::vector<size_t> commit_layers_;  // Size of committed_ before each layer.
  /// Normalized committed constraints whose C_Σ rows sit permanently in
  /// system_ (rendered via ToString); CheckDelta skips re-pushing these.
  std::set<std::string> encoded_committed_;

  /// Null when memoization is off — Check then skips computing the
  /// canonical key altogether (rendering + sorting the combined set costs
  /// real time on large Σ, so capacity 0 must not pay for hashing it).
  std::shared_ptr<SharedSigmaMemo> memo_;

  SpecSessionStats stats_;
  /// Per-stage wall-time tally (see stage_tally()). Single-owner: the
  /// session is not thread-safe, so neither is its tally.
  StageTally stage_tally_;
  /// Sink for no-verdict statistics (see LastPartialStats); options_'s
  /// partial_stats pointer is re-aimed here at construction so the fresh
  /// CheckConsistency fallback fills it too.
  ConsistencyStats last_partial_;
  bool charged_compile_ = false;  // compile_ms reported on the first query.
};

}  // namespace xicc
