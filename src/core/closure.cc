#include "core/closure.h"

#include <algorithm>

namespace xicc {

namespace {

/// Options for the inner implication calls: no witnesses, no verification —
/// closure enumeration only needs verdicts.
ConsistencyOptions VerdictOnly(const ConsistencyOptions& base) {
  ConsistencyOptions out = base;
  out.build_witness = false;
  out.verify_witness = false;
  return out;
}

bool SyntacticallyPresent(const ConstraintSet& sigma, const Constraint& c) {
  ConstraintSet normalized = sigma.Normalize();
  const auto& all = normalized.constraints();
  return std::find(all.begin(), all.end(), c) != all.end();
}

}  // namespace

Result<UnaryClosure> ComputeUnaryClosure(const Dtd& dtd,
                                         const ConstraintSet& sigma,
                                         const ClosureOptions& options) {
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(dtd));
  UnaryClosure out;
  ConsistencyOptions verdict_only = VerdictOnly(options.consistency);
  std::vector<std::pair<std::string, std::string>> pairs =
      dtd.AllAttributePairs();

  for (const auto& [type, attr] : pairs) {
    Constraint candidate = Constraint::Key(type, {attr});
    if (SyntacticallyPresent(sigma, candidate)) continue;
    XICC_ASSIGN_OR_RETURN(
        ImplicationResult result,
        CheckImplication(dtd, sigma, candidate, verdict_only));
    if (result.implied) out.implied_keys.push_back(std::move(candidate));
  }

  if (options.include_inclusions) {
    for (const auto& [type1, attr1] : pairs) {
      for (const auto& [type2, attr2] : pairs) {
        if (type1 == type2 && attr1 == attr2) continue;  // Reflexive.
        Constraint candidate =
            Constraint::Inclusion(type1, {attr1}, type2, {attr2});
        if (SyntacticallyPresent(sigma, candidate)) continue;
        XICC_ASSIGN_OR_RETURN(
            ImplicationResult result,
            CheckImplication(dtd, sigma, candidate, verdict_only));
        if (result.implied) {
          out.implied_inclusions.push_back(std::move(candidate));
        }
      }
    }
  }
  return out;
}

Result<std::vector<Constraint>> FindRedundantConstraints(
    const Dtd& dtd, const ConstraintSet& sigma,
    const ConsistencyOptions& options) {
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(dtd));
  ConsistencyOptions verdict_only = VerdictOnly(options);
  std::vector<Constraint> redundant;
  const auto& all = sigma.constraints();
  for (size_t i = 0; i < all.size(); ++i) {
    ConstraintSet rest;
    for (size_t j = 0; j < all.size(); ++j) {
      if (j != i) rest.Add(all[j]);
    }
    XICC_ASSIGN_OR_RETURN(
        ImplicationResult result,
        CheckImplication(dtd, rest, all[i], verdict_only));
    if (result.implied) redundant.push_back(all[i]);
  }
  return redundant;
}

}  // namespace xicc
