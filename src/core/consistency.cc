#include "core/consistency.h"

#include <utility>

#include "constraints/evaluator.h"
#include "core/encoding_solver.h"
#include "dtd/analysis.h"
#include "dtd/validator.h"

namespace xicc {

namespace {

EncodingSolveOptions ToSolveOptions(const ConsistencyOptions& options) {
  EncodingSolveOptions out;
  out.strategy = options.strategy == SolveStrategy::kCaseSplit
                     ? EncodingStrategy::kCaseSplit
                     : EncodingStrategy::kBigM;
  out.ilp = options.ilp;
  // The check-level stop signal overrides whatever the caller left on the
  // inner ILP options — one knob arms the whole stack.
  if (options.stop.Armed()) out.ilp.stop = options.stop;
  return out;
}

/// Copies an ILP solution's counters into the check's stats block — used on
/// verdicts and (via the partial sink) on stopped/exhausted exits alike.
void FillIlpStats(const IlpSolution& solved, ConsistencyStats* stats) {
  stats->ilp_nodes = solved.nodes_explored;
  stats->lp_pivots = solved.lp_pivots;
  stats->warm_starts = solved.warm_starts;
  stats->cold_restarts = solved.cold_restarts;
  stats->search_depth = solved.max_depth;
  stats->lp_kernel = solved.lp_kernel;
  stats->num_small_ops = solved.num_small_ops;
  stats->num_big_ops = solved.num_big_ops;
  stats->num_promotions = solved.num_promotions;
  stats->num_demotions = solved.num_demotions;
  stats->arena_bytes = solved.arena_bytes;
  stats->ilp_wall_ms = solved.wall_ms;
}

/// Installs Σ_τ ext(τ) ≥ min_witness_nodes when a minimum size is asked for.
void ApplyMinimumSize(const ConsistencyOptions& options,
                      CardinalityEncoding* encoding) {
  if (options.min_witness_nodes == 0) return;
  LinearExpr total;
  for (const auto& [symbol, var] : encoding->ext_var) {
    // Count the document's element nodes: no text nodes, no synthetic
    // intermediates (those are erased by the Lemma 4.3 collapse).
    if (symbol == "S" || encoding->simplified.IsSynthetic(symbol)) continue;
    total.Add(var, BigInt(1));
  }
  encoding->system.AddConstraint(
      total, RelOp::kGe,
      BigInt(static_cast<int64_t>(options.min_witness_nodes)));
}

/// Validates + evaluates a freshly built witness; any failure is a bug in
/// the encoding or the constructor, surfaced as kInternal.
Status VerifyWitness(const XmlTree& tree, const Dtd& dtd,
                     const ConstraintSet& sigma) {
  ValidationReport validation = ValidateXml(tree, dtd);
  if (!validation.valid) {
    return Status::Internal("witness fails DTD validation:\n" +
                            validation.ToString());
  }
  EvaluationReport evaluation = Evaluate(tree, sigma);
  if (!evaluation.satisfied) {
    return Status::Internal("witness fails constraint evaluation:\n" +
                            evaluation.ToString());
  }
  return Status::Ok();
}

Status AttachWitness(const Dtd& dtd, const ConstraintSet& sigma,
                     const ConsistencyOptions& options, Result<XmlTree> tree,
                     ConsistencyResult* result) {
  if (!tree.ok()) {
    // Witnesses can legitimately be too large to materialize; surface the
    // reason but keep the verdict.
    if (tree.status().code() == StatusCode::kResourceExhausted) {
      result->explanation = tree.status().message();
      return Status::Ok();
    }
    return tree.status();
  }
  if (options.verify_witness) {
    XICC_RETURN_IF_ERROR(VerifyWitness(*tree, dtd, sigma));
  }
  result->witness = std::move(tree).value();
  return Status::Ok();
}

}  // namespace

Result<ConsistencyResult> CheckConsistency(const Dtd& dtd,
                                           const ConstraintSet& sigma,
                                           const ConsistencyOptions& options) {
  // An already-expired deadline (or pre-fired cancel) exits before any
  // compilation work; the partial report is honestly all-zero.
  if (options.stop.Armed() && options.stop.ShouldStop()) {
    if (options.partial_stats != nullptr) {
      *options.partial_stats = ConsistencyStats{};
    }
    return options.stop.ToStatus();
  }
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(dtd));
  ConstraintSet normalized = sigma.Normalize();

  ConsistencyResult result;
  result.constraint_class = sigma.Classify();

  switch (result.constraint_class) {
    case ConstraintClass::kEmpty:
    case ConstraintClass::kKeysOnly: {
      // Theorem 3.5(1,2): consistent iff the DTD has a valid tree; keys are
      // always satisfiable by distinct re-valuation.
      result.method = result.constraint_class == ConstraintClass::kEmpty
                          ? "grammar-emptiness"
                          : "keys-only";
      result.consistent = DtdHasValidTree(dtd);
      if (!result.consistent) {
        result.explanation =
            "no finite tree conforms to the DTD (the root element type "
            "cannot derive a finite document)";
        return result;
      }
      if (options.min_witness_nodes > 0) {
        // Route sizing through the cardinality system over Σ = ∅; the
        // resulting witness gets globally distinct attribute values, which
        // satisfy every key (Theorem 3.5(2)'s construction).
        XICC_ASSIGN_OR_RETURN(CardinalityEncoding enc,
                              BuildCardinalityEncoding(dtd, ConstraintSet()));
        ApplyMinimumSize(options, &enc);
        IlpSolution partial;
        EncodingSolveOptions solve_options = ToSolveOptions(options);
        solve_options.ilp.partial = &partial;
        Result<IlpSolution> sized =
            SolveEncodingSystem(enc, enc.system, solve_options);
        if (!sized.ok()) {
          if (options.partial_stats != nullptr) {
            FillIlpStats(partial, &result.stats);
            *options.partial_stats = result.stats;
          }
          return sized.status();
        }
        IlpSolution solved = std::move(*sized);
        result.consistent = solved.feasible;
        if (!result.consistent) {
          result.explanation =
              "the DTD admits no document with the requested minimum size";
          return result;
        }
        if (options.build_witness) {
          XICC_RETURN_IF_ERROR(AttachWitness(
              dtd, normalized, options,
              BuildWitnessTree(enc, solved, /*value_sets=*/{},
                               options.witness),
              &result));
        }
        return result;
      }
      if (options.build_witness) {
        XICC_RETURN_IF_ERROR(AttachWitness(dtd, normalized, options,
                                           BuildMinimalTree(dtd), &result));
      }
      return result;
    }

    case ConstraintClass::kUnaryKeyFk:
    case ConstraintClass::kUnaryWithNegKey: {
      XICC_ASSIGN_OR_RETURN(CardinalityEncoding enc,
                            BuildCardinalityEncoding(dtd, normalized));
      ApplyMinimumSize(options, &enc);
      result.stats.system_variables = enc.system.NumVariables();
      result.stats.system_constraints =
          enc.system.NumConstraints() + enc.conditionals.size();

      IlpSolution partial;
      EncodingSolveOptions solve_options = ToSolveOptions(options);
      solve_options.ilp.partial = &partial;
      Result<IlpSolution> solved =
          SolveEncodingSystem(enc, enc.system, solve_options);
      if (!solved.ok()) {
        if (options.partial_stats != nullptr) {
          FillIlpStats(partial, &result.stats);
          *options.partial_stats = result.stats;
        }
        return solved.status();
      }
      result.method = options.strategy == SolveStrategy::kCaseSplit
                          ? "ilp-case-split"
                          : "ilp-big-m";
      FillIlpStats(*solved, &result.stats);
      result.consistent = solved->feasible;
      if (!result.consistent) {
        result.explanation =
            "the cardinality system Ψ(D,Σ) has no solution over the "
            "nonnegative integers (Lemma 4.6): the DTD's counting "
            "constraints contradict the keys/foreign keys";
        return result;
      }
      if (options.build_witness) {
        auto value_sets = PrefixValueSets(enc, *solved);
        XICC_RETURN_IF_ERROR(AttachWitness(
            dtd, normalized, options,
            BuildWitnessTree(enc, *solved, value_sets, options.witness),
            &result));
      }
      return result;
    }

    case ConstraintClass::kUnaryWithNegIc: {
      XICC_ASSIGN_OR_RETURN(
          SetRepresentationEncoding enc,
          BuildSetRepresentation(dtd, normalized,
                                 options.set_representation));
      ApplyMinimumSize(options, &enc.base);
      result.stats.system_variables = enc.base.system.NumVariables();
      result.stats.system_constraints =
          enc.base.system.NumConstraints() + enc.base.conditionals.size();

      IlpSolution partial;
      EncodingSolveOptions solve_options = ToSolveOptions(options);
      solve_options.ilp.partial = &partial;
      Result<IlpSolution> solved =
          SolveEncodingSystem(enc.base, enc.base.system, solve_options);
      if (!solved.ok()) {
        if (options.partial_stats != nullptr) {
          FillIlpStats(partial, &result.stats);
          *options.partial_stats = result.stats;
        }
        return solved.status();
      }
      result.method = "set-representation";
      FillIlpStats(*solved, &result.stats);
      result.consistent = solved->feasible;
      if (!result.consistent) {
        result.explanation =
            "the Section 5 region system Ψ'(D,Σ) has no solution: no "
            "family of value sets realizes the inclusions and their "
            "negations under the DTD's cardinalities (Lemma 5.2)";
        return result;
      }
      if (options.build_witness) {
        auto value_sets = RealizeValueSets(enc, *solved);
        if (!value_sets.ok()) return value_sets.status();
        XICC_RETURN_IF_ERROR(AttachWitness(
            dtd, normalized, options,
            BuildWitnessTree(enc.base, *solved, *value_sets, options.witness),
            &result));
      }
      return result;
    }

    case ConstraintClass::kMultiAttribute:
      return Status::UndecidableClass(
          "Σ contains multi-attribute foreign keys or inclusion "
          "constraints; consistency for C_{K,FK} is undecidable "
          "(Theorem 3.1) — no decision procedure exists. Restrict to unary "
          "constraints, or validate concrete documents with the dynamic "
          "evaluator instead.");
  }
  return Status::Internal("unhandled constraint class");
}

}  // namespace xicc
