#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "constraints/constraint.h"
#include "core/conditional_solver.h"
#include "dtd/dtd.h"
#include "dtd/simplify.h"
#include "ilp/linear_system.h"

namespace xicc {

/// Ψ(D,Σ): the linear-integer encoding of Theorem 4.1 / Lemmas 4.4–4.6.
///
/// Variables (all over nonnegative integers):
///  - ext(τ) for every element type τ of the simplified DTD D_N, plus ext(S);
///  - one occurrence variable x^i_{a,τ} per operand position of each simple
///    production (these drive the witness constructor of Lemma 4.5);
///  - ext(τ.l) for every attribute pair *mentioned in Σ* (the paper carries
///    variables for all pairs; unmentioned pairs are unconstrained and can
///    always be realized with fresh distinct values, so omitting them is a
///    sound and complete shrink of the system).
///
/// Rows:
///  - ext(r) = 1;
///  - per production: the ψ_τ equalities of Lemma 4.5;
///  - per child symbol: ext(a) = Σ_i x^i_{a,·};
///  - C_Σ (Lemma 4.4): keys ext(τ.l) = ext(τ); inclusions
///    ext(τ1.l1) ≤ ext(τ2.l2); bounds ext(τ.l) ≤ ext(τ);
///  - negated keys (Corollary 4.9): ext(τ.l) ≤ ext(τ) − 1;
///  - the conditional rows (ext(τ) > 0 → ext(τ.l) > 0) are *not* linear;
///    they are returned in `conditionals` and discharged either by the
///    case-split solver or by the big-M linearization of Theorem 4.1.
struct CardinalityEncoding {
  LinearSystem system;
  SimplifiedDtd simplified;

  /// ext(τ) variables; key "S" is the text-node count.
  std::map<std::string, VarId> ext_var;
  /// ext(τ.l) variables for pairs mentioned in Σ.
  std::map<std::pair<std::string, std::string>, VarId> attr_var;
  /// ext(τ) > 0 → ext(τ.l) > 0, one per mentioned pair. The consistency
  /// checker appends lazy support-connectivity conditionals to its own copy
  /// of this list (see consistency.cc).
  std::vector<Conditional> conditionals;

  /// One operand slot of a simple production: `parent` has a child of
  /// symbol `child` ("S" for text) at binary-operand position `slot`
  /// (0 = left/only, 1 = right); `var` counts those children tree-wide.
  struct Occurrence {
    std::string child;
    std::string parent;
    int slot;
    VarId var;
  };
  std::vector<Occurrence> occurrences;
};

/// Builds Ψ(D,Σ). `sigma` must already be normalized (no kForeignKey) and
/// contain only unary keys, unary inclusions, and negated unary keys;
/// negated inclusions are handled by the Section 5 extension
/// (set_representation.h) on top of this encoding. `extra_pairs` forces
/// ext(τ.l) variables (with bound and conditional rows) for additional
/// attribute pairs beyond those mentioned in `sigma` — the Section 5 builder
/// passes the pairs touched only by negated inclusions.
Result<CardinalityEncoding> BuildCardinalityEncoding(
    const Dtd& dtd, const ConstraintSet& sigma,
    const std::vector<std::pair<std::string, std::string>>& extra_pairs = {});

/// The Theorem 4.1 linearization: returns `system` extended with one row
/// c·conclusion ≥ premise per conditional, where c is the Papadimitriou
/// bound for the case-split systems 9_X. Exact but numerically heavy — kept
/// for the ablation benches; the case-split solver is the default path.
LinearSystem ApplyBigMLinearization(const LinearSystem& system,
                                    const std::vector<Conditional>&
                                        conditionals);

}  // namespace xicc
