#pragma once

#include <utility>
#include <vector>

#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace xicc {

/// A conditional cardinality constraint: premise > 0 → conclusion > 0,
/// with both sides nonnegative linear expressions. Instances:
///  - the attribute rows of Ψ(D,Σ): ext(τ) > 0 → ext(τ.l) > 0 (Lemma 4.6);
///  - the lazy support-connectivity cuts: Σ_{τ∈U} ext(τ) > 0 →
///    Σ_{edges into U} x > 0 (realizability of a solution as a *tree*).
struct Conditional {
  LinearExpr premise;
  LinearExpr conclusion;
};

/// Reusable warm-start state across repeated SolveWithConditionals calls on
/// the SAME base system with a growing conditional set — the shape of the
/// lazy connectivity-cut loop in SolveEncodingSystem. The base LP is solved
/// cold exactly once; every later round's presolve probes and DFS root
/// re-solve warm from this basis.
struct CaseSplitWarmContext {
  LpTableau base_tableau;
  bool valid = false;
  /// Scratch the optimistic-leaf solve's root node copies `base_tableau`
  /// into (see IlpOptions::root_scratch). Lives here so its vector capacity
  /// persists across the context's many solves; never touched by the
  /// parallel DFS workers, so single-ownership follows from the context's
  /// own one-thread contract.
  LpTableau root_scratch;
};

/// Decides feasibility of `base` (nonnegative integers) subject to the
/// conditionals.
///
/// This is the exact case-split of the Theorem 4.1 proof: each conditional
/// resolves to (conclusion ≥ 1) or (premise = 0), yielding the 9_X family.
/// The solver explores the 2^k resolutions depth-first, pruning with the
/// exact-rational LP relaxation at every level and calling the integer
/// solver only on fully resolved leaves. The conclusion ≥ 1 side is tried
/// first — consistent specifications usually populate their element types.
///
/// Incrementality: the DFS runs on ONE trail-managed system (push a
/// resolution, recurse, pop), and every prune/leaf solve warm starts from
/// the parent node's LP basis via dual simplex — the presolve probes and
/// the fully-resolved leaf ILPs included. With options.num_threads > 1 the
/// first ~log2(num_threads)+1 levels of the split tree fan out onto a small
/// work-stealing pool (each task owns a private copy of the system; deeper
/// levels stay sequential-warm-started within the task); statistics are
/// aggregated atomically and the verdict is identical to the sequential
/// one — num_threads = 1 (the default) keeps behaviour and statistics fully
/// deterministic.
///
/// Compared with the big-M linearization (ApplyBigMLinearization) this
/// avoids astronomically large coefficients; the ablation bench compares
/// both.
Result<IlpSolution> SolveWithConditionals(
    const LinearSystem& base, const std::vector<Conditional>& conditionals,
    const IlpOptions& options = {}, CaseSplitWarmContext* warm = nullptr);

/// Same decision, but operates directly on `*base` through its trail instead
/// of copying it: every row the solver appends (case resolutions, presolve's
/// forced conclusions, branch bounds) sits above one checkpoint pushed on
/// entry and popped before returning, so `*base` is byte-identical afterwards.
/// This is what makes Σ-delta re-checks cheap — a session keeps ONE system
/// holding the compiled skeleton, pushes the per-query rows, and solves here
/// without ever re-copying the skeleton. `warm` follows the same contract as
/// SolveWithConditionals: pass a context whose tableau was solved against the
/// rows present in `*base` at entry (e.g. the skeleton basis) with
/// `valid = true`, and it is reused as-is across calls.
Result<IlpSolution> SolveWithConditionalsInPlace(
    LinearSystem* base, const std::vector<Conditional>& conditionals,
    const IlpOptions& options = {}, CaseSplitWarmContext* warm = nullptr);

}  // namespace xicc
