#include "core/set_representation.h"

#include <algorithm>
#include <set>

namespace xicc {

namespace {

/// Union-find over pair indices for the component decomposition.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<SetRepresentationEncoding> BuildSetRepresentation(
    const Dtd& dtd, const ConstraintSet& sigma,
    const SetRepresentationOptions& options) {
  // Split Σ = Σ1 ∪ Σ2: Σ1 feeds the cardinality encoding, Σ2 holds the
  // negated inclusions that need the set representation.
  ConstraintSet sigma1;
  std::vector<Constraint> neg_inclusions;
  for (const Constraint& c : sigma.constraints()) {
    if (c.kind == ConstraintKind::kForeignKey) {
      return Status::InvalidArgument(
          "BuildSetRepresentation expects a normalized constraint set");
    }
    if (!c.IsUnary()) {
      return Status::InvalidArgument("constraint '" + c.ToString() +
                                     "' is not unary");
    }
    if (c.kind == ConstraintKind::kNegInclusion) {
      neg_inclusions.push_back(c);
    } else {
      sigma1.Add(c);
    }
  }

  // Pairs touched only by negated inclusions still need ext(τ.l) variables.
  std::vector<std::pair<std::string, std::string>> extra;
  for (const Constraint& c : neg_inclusions) {
    extra.emplace_back(c.type1, c.attrs1[0]);
    extra.emplace_back(c.type2, c.attrs2[0]);
  }

  SetRepresentationEncoding enc;
  XICC_ASSIGN_OR_RETURN(enc.base,
                        BuildCardinalityEncoding(dtd, sigma1, extra));

  // Index the mentioned pairs.
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (const auto& [pair, var] : enc.base.attr_var) {
    index.emplace(pair, enc.pairs.size());
    enc.pairs.push_back(pair);
  }

  // Connected components over inclusion / negated-inclusion edges.
  UnionFind uf(enc.pairs.size());
  std::set<size_t> has_neg;  // Component roots (refreshed after unions).
  auto edge = [&](const Constraint& c) {
    size_t i = index.at({c.type1, c.attrs1[0]});
    size_t j = index.at({c.type2, c.attrs2[0]});
    uf.Merge(i, j);
  };
  for (const Constraint& c : sigma1.constraints()) {
    if (c.kind == ConstraintKind::kInclusion) edge(c);
  }
  for (const Constraint& c : neg_inclusions) edge(c);
  for (const Constraint& c : neg_inclusions) {
    has_neg.insert(uf.Find(index.at({c.type1, c.attrs1[0]})));
  }

  std::map<size_t, size_t> component_of_root;
  for (size_t i = 0; i < enc.pairs.size(); ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] =
        component_of_root.emplace(root, enc.components.size());
    if (inserted) {
      enc.components.emplace_back();
      enc.components.back().needs_regions = has_neg.count(root) > 0;
    }
    enc.components[it->second].pair_idx.push_back(i);
  }

  // Region variables and defining rows per region component.
  LinearSystem& system = enc.base.system;
  for (SetRepresentationEncoding::Component& comp : enc.components) {
    if (!comp.needs_regions) continue;
    const size_t k = comp.pair_idx.size();
    if (k > options.max_component_pairs) {
      return Status::ResourceExhausted(
          "a negated-inclusion component spans " + std::to_string(k) +
          " attribute pairs; the region system is exponential and the "
          "configured limit is " +
          std::to_string(options.max_component_pairs));
    }
    const size_t num_masks = (size_t{1} << k) - 1;
    comp.z.reserve(num_masks);
    for (size_t mask = 1; mask <= num_masks; ++mask) {
      comp.z.push_back(
          system.AddVariable("z(" + std::to_string(mask) + ")"));
    }
    // u_ii = ext(pair_i): Σ_{θ(i)=1} z_θ = ext var of the pair.
    for (size_t a = 0; a < k; ++a) {
      LinearExpr sum;
      for (size_t mask = 1; mask <= num_masks; ++mask) {
        if (mask & (size_t{1} << a)) sum.Add(comp.z[mask - 1], BigInt(1));
      }
      system.AddEq(sum,
                   LinearExpr::Var(
                       enc.base.attr_var.at(enc.pairs[comp.pair_idx[a]])));
    }
  }

  // v_ij rows from the constraints: v_ij = Σ_{θ(i)=1, θ(j)=0} z_θ.
  auto v_expr = [&](const SetRepresentationEncoding::Component& comp,
                    size_t i, size_t j) {
    // i, j are positions within the component.
    LinearExpr sum;
    const size_t num_masks = (size_t{1} << comp.pair_idx.size()) - 1;
    for (size_t mask = 1; mask <= num_masks; ++mask) {
      if ((mask & (size_t{1} << i)) && !(mask & (size_t{1} << j))) {
        sum.Add(comp.z[mask - 1], BigInt(1));
      }
    }
    return sum;
  };
  auto component_pos = [&](size_t pair_index,
                           const SetRepresentationEncoding::Component& comp) {
    for (size_t pos = 0; pos < comp.pair_idx.size(); ++pos) {
      if (comp.pair_idx[pos] == pair_index) return pos;
    }
    return comp.pair_idx.size();
  };
  auto add_v_row = [&](const Constraint& c, bool zero) -> Status {
    size_t i = index.at({c.type1, c.attrs1[0]});
    size_t j = index.at({c.type2, c.attrs2[0]});
    // Find the (unique) component containing both.
    for (const SetRepresentationEncoding::Component& comp : enc.components) {
      if (!comp.needs_regions) continue;
      size_t pi = component_pos(i, comp);
      if (pi == comp.pair_idx.size()) continue;
      size_t pj = component_pos(j, comp);
      if (pj == comp.pair_idx.size()) {
        return Status::Internal("constraint endpoints in split components");
      }
      LinearExpr v = v_expr(comp, pi, pj);
      if (zero) {
        system.AddEq(v, LinearExpr(BigInt(0)));
      } else {
        system.AddConstraint(v, RelOp::kGe, BigInt(1));
      }
      return Status::Ok();
    }
    // Component without regions: inclusions are realized by prefix chains;
    // a negated inclusion always lands in a region component.
    if (!zero) {
      return Status::Internal(
          "negated inclusion outside every region component");
    }
    return Status::Ok();
  };
  for (const Constraint& c : sigma1.constraints()) {
    if (c.kind == ConstraintKind::kInclusion) {
      XICC_RETURN_IF_ERROR(add_v_row(c, /*zero=*/true));
    }
  }
  for (const Constraint& c : neg_inclusions) {
    XICC_RETURN_IF_ERROR(add_v_row(c, /*zero=*/false));
  }

  return enc;
}

Result<std::map<std::pair<std::string, std::string>,
                std::vector<std::string>>>
RealizeValueSets(const SetRepresentationEncoding& encoding,
                 const IlpSolution& solution) {
  std::map<std::pair<std::string, std::string>, std::vector<std::string>> out;

  auto to_count = [](const BigInt& value) -> Result<int64_t> {
    if (!value.FitsInt64()) {
      return Status::ResourceExhausted(
          "witness value set of size " + value.ToString() +
          " is too large to materialize");
    }
    return value.ToInt64();
  };

  for (size_t ci = 0; ci < encoding.components.size(); ++ci) {
    const auto& comp = encoding.components[ci];
    if (!comp.needs_regions) {
      // Prefix chain: pair with ext(τ.l) = y gets {c<ci>_1 .. c<ci>_y};
      // y1 ≤ y2 then realizes every inclusion in the component as a prefix
      // containment (Lemma 4.4).
      for (size_t pair_index : comp.pair_idx) {
        const auto& pair = encoding.pairs[pair_index];
        VarId var = encoding.base.attr_var.at(pair);
        XICC_ASSIGN_OR_RETURN(int64_t count,
                              to_count(solution.values[var]));
        std::vector<std::string> values;
        values.reserve(static_cast<size_t>(count));
        for (int64_t t = 1; t <= count; ++t) {
          values.push_back("c" + std::to_string(ci) + "_" +
                           std::to_string(t));
        }
        out.emplace(pair, std::move(values));
      }
      continue;
    }
    // Region component: mask θ contributes z_θ fresh values to every member
    // pair with θ(i) = 1, realizing A_i as the union of its regions.
    const size_t k = comp.pair_idx.size();
    const size_t num_masks = (size_t{1} << k) - 1;
    std::vector<std::vector<std::string>> sets(k);
    for (size_t mask = 1; mask <= num_masks; ++mask) {
      XICC_ASSIGN_OR_RETURN(
          int64_t count, to_count(solution.values[comp.z[mask - 1]]));
      for (int64_t t = 1; t <= count; ++t) {
        std::string value = "r" + std::to_string(ci) + "_" +
                            std::to_string(mask) + "_" + std::to_string(t);
        for (size_t a = 0; a < k; ++a) {
          if (mask & (size_t{1} << a)) sets[a].push_back(value);
        }
      }
    }
    for (size_t a = 0; a < k; ++a) {
      out.emplace(encoding.pairs[comp.pair_idx[a]], std::move(sets[a]));
    }
  }
  return out;
}

}  // namespace xicc
