#pragma once

// Content-addressed cache of CompiledDtd artifacts.
//
// The lookup chain for GetOrCompile(D) is
//
//   in-memory LRU  →  disk artifact (mmap warm start)  →  cold CompileDtd
//
// keyed by DtdContentHash(D) under the current kArtifactFormatVersion (the
// version is baked into the file name, so a format bump makes every stale
// artifact an automatic miss — old files are never even opened). A disk hit
// that fails any of the three integrity layers (core/artifact.h) is treated
// as a miss: the DTD is recompiled and the corrupt file is overwritten with
// a fresh artifact. Every path out of GetOrCompile yields a usable bundle;
// cache trouble degrades performance, never correctness.
//
// Thread safety: all public methods are safe to call concurrently. The
// mutex guards only the LRU index and stats — compiles, loads, and stores
// run unlocked, so two threads racing on the same uncached DTD may both
// compile; both results are identical (CompileDtd is deterministic) and the
// last insert wins.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "base/stage_timer.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "core/artifact.h"
#include "core/spec_session.h"
#include "dtd/dtd.h"

namespace xicc {

/// Where GetOrCompile found the bundle — reported so benches and --stats
/// can attribute warm starts.
enum class ArtifactSource {
  kCold,       ///< Compiled from scratch this call.
  kMemory,     ///< In-memory LRU hit; no disk touched.
  kDiskCache,  ///< Loaded from the disk cache via buffered read.
  kMmap,       ///< Loaded from the disk cache via zero-copy mmap.
};

/// Stable lowercase name ("cold", "memory", "disk-cache", "mmap") for JSON
/// config rows and --stats lines.
const char* ArtifactSourceName(ArtifactSource source);

/// Monotonic counters, readable at any time via ArtifactCache::stats().
struct ArtifactCacheStats {
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t cold_compiles = 0;
  /// Disk artifacts that existed but failed validation (truncation, bit
  /// flips, version skew, digest mismatch) and were recompiled + replaced.
  uint64_t corrupt_rejected = 0;
  /// StoreCompiledDtd failures (ENOSPC, permissions). Non-fatal: the
  /// compiled bundle is still returned and kept in the memory tier.
  uint64_t store_failures = 0;
};

class ArtifactCache {
 public:
  struct Options {
    /// Artifact directory; created on first store if missing. Empty
    /// disables the disk tier (memory LRU only).
    std::string dir;
    /// Max CompiledDtd bundles retained in the memory tier. The bundles
    /// are shared_ptr-held, so eviction never invalidates live sessions.
    size_t memory_capacity = 16;
  };

  explicit ArtifactCache(Options options);

  struct Lookup {
    std::shared_ptr<const CompiledDtd> compiled;
    ArtifactSource source = ArtifactSource::kCold;
  };

  /// The bundle for `dtd`, from the fastest tier that has it. On a cold
  /// compile the artifact is persisted to the disk tier (best-effort) and
  /// inserted into the memory tier. Fails only if CompileDtd itself fails.
  /// `tally`, when non-null, receives kArtifactLoad / kArtifactStore stage
  /// time for the disk traffic this call performed.
  Result<Lookup> GetOrCompile(const Dtd& dtd, StageTally* tally = nullptr);

  ArtifactCacheStats stats() const;

  /// The disk path GetOrCompile would use for `dtd` ("" if the disk tier
  /// is disabled). Exposed for the CLI's `compile` verb and tests.
  std::string DiskPathFor(const Dtd& dtd) const;

 private:
  std::shared_ptr<const CompiledDtd> MemoryGet(uint64_t key);
  void MemoryPut(uint64_t key, std::shared_ptr<const CompiledDtd> compiled);

  Options options_;
  mutable Mutex mu_;  // xicc-analyze: lock-leaf
  /// LRU: front = most recent. The map holds list iterators for O(log n)
  /// touch; capacity is small so this is never hot.
  std::list<uint64_t> lru_ XICC_GUARDED_BY(mu_);
  std::map<uint64_t,
           std::pair<std::list<uint64_t>::iterator,
                     std::shared_ptr<const CompiledDtd>>>
      memory_ XICC_GUARDED_BY(mu_);
  ArtifactCacheStats stats_ XICC_GUARDED_BY(mu_);
};

}  // namespace xicc
