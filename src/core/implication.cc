#include "core/implication.h"

#include <set>
#include <utility>

#include "constraints/evaluator.h"
#include "core/encoding_solver.h"
#include "core/witness.h"
#include "dtd/analysis.h"
#include "dtd/validator.h"

namespace xicc {

namespace {

/// Σ subsumes φ = τ[X] → τ iff some key τ[Y] → τ in Σ has Y ⊆ X (then φ is
/// a superkey of it). Foreign keys contribute their key component.
bool Subsumes(const ConstraintSet& sigma, const Constraint& phi) {
  std::set<std::string> x(phi.attrs1.begin(), phi.attrs1.end());
  ConstraintSet normalized = sigma.Normalize();
  for (const Constraint& c : normalized.constraints()) {
    if (c.kind != ConstraintKind::kKey || c.type1 != phi.type1) continue;
    bool subset = true;
    for (const std::string& attr : c.attrs1) {
      if (x.count(attr) == 0) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

/// The Lemma 3.7 counterexample: a valid tree with two τ elements agreeing
/// on X and all other attribute values pairwise distinct. Built through the
/// ILP pipeline (Ψ_D plus ext(τ) ≥ 2) and post-edited.
Result<XmlTree> BuildKeyCounterexample(const Dtd& dtd, const Constraint& phi,
                                       const ConsistencyOptions& options) {
  XICC_ASSIGN_OR_RETURN(CardinalityEncoding enc,
                        BuildCardinalityEncoding(dtd, ConstraintSet()));
  enc.system.AddConstraint(LinearExpr::Var(enc.ext_var.at(phi.type1)),
                           RelOp::kGe, BigInt(2));
  EncodingSolveOptions solve_options;
  solve_options.ilp = options.ilp;
  XICC_ASSIGN_OR_RETURN(
      IlpSolution solution,
      SolveEncodingSystem(enc, enc.system, solve_options));
  if (!solution.feasible) {
    return Status::Internal(
        "Lemma 3.6 said two elements are possible but Ψ_D disagrees");
  }
  XICC_ASSIGN_OR_RETURN(
      XmlTree tree,
      BuildWitnessTree(enc, solution, /*value_sets=*/{}, options.witness));
  std::vector<NodeId> nodes = tree.ExtOfType(phi.type1);
  if (nodes.size() < 2) {
    return Status::Internal("counterexample tree lacks two '" + phi.type1 +
                            "' elements");
  }
  for (const std::string& attr : phi.attrs1) {
    auto value = tree.AttributeValue(nodes[0], attr);
    if (!value.has_value()) {
      return Status::Internal("counterexample element missing attribute '" +
                              attr + "'");
    }
    tree.SetAttribute(nodes[1], attr, std::string(*value));
  }
  return tree;
}

Status VerifyCounterexample(const XmlTree& tree, const Dtd& dtd,
                            const ConstraintSet& sigma,
                            const Constraint& phi) {
  ValidationReport validation = ValidateXml(tree, dtd);
  if (!validation.valid) {
    return Status::Internal("counterexample fails DTD validation:\n" +
                            validation.ToString());
  }
  EvaluationReport on_sigma = Evaluate(tree, sigma);
  if (!on_sigma.satisfied) {
    return Status::Internal("counterexample violates Σ:\n" +
                            on_sigma.ToString());
  }
  EvaluationReport on_phi = Evaluate(tree, phi);
  if (on_phi.satisfied) {
    return Status::Internal("counterexample satisfies φ = " + phi.ToString());
  }
  return Status::Ok();
}

Result<Constraint> Negate(const Constraint& phi) {
  switch (phi.kind) {
    case ConstraintKind::kKey:
      if (!phi.IsUnary()) {
        return Status::UndecidableClass(
            "implication of the multi-attribute key '" + phi.ToString() +
            "' by non-key constraints is undecidable (Corollary 3.4)");
      }
      return Constraint::NegKey(phi.type1, phi.attrs1);
    case ConstraintKind::kInclusion:
      if (!phi.IsUnary()) {
        return Status::UndecidableClass(
            "implication of the multi-attribute inclusion '" +
            phi.ToString() + "' is undecidable (Corollary 3.4)");
      }
      return Constraint::NegInclusion(phi.type1, phi.attrs1, phi.type2,
                                      phi.attrs2);
    default:
      return Status::InvalidArgument(
          "only keys and inclusion constraints can be negated directly");
  }
}

}  // namespace

Result<ImplicationResult> CheckImplication(const Dtd& dtd,
                                           const ConstraintSet& sigma,
                                           const Constraint& phi,
                                           const ConsistencyOptions& options) {
  XICC_RETURN_IF_ERROR(sigma.CheckAgainst(dtd));
  {
    ConstraintSet just_phi;
    just_phi.Add(phi);
    XICC_RETURN_IF_ERROR(just_phi.CheckAgainst(dtd));
  }

  // A foreign key is the conjunction of its inclusion and key components
  // ((D,Σ) ⊢ ℓ1 ∧ ℓ2, Section 2.2): implied iff both are.
  if (phi.kind == ConstraintKind::kForeignKey) {
    Constraint inclusion =
        Constraint::Inclusion(phi.type1, phi.attrs1, phi.type2, phi.attrs2);
    Constraint key = Constraint::Key(phi.type2, phi.attrs2);
    XICC_ASSIGN_OR_RETURN(ImplicationResult on_inclusion,
                          CheckImplication(dtd, sigma, inclusion, options));
    if (!on_inclusion.implied) {
      on_inclusion.explanation =
          "the inclusion component is not implied; " +
          on_inclusion.explanation;
      return on_inclusion;
    }
    XICC_ASSIGN_OR_RETURN(ImplicationResult on_key,
                          CheckImplication(dtd, sigma, key, options));
    if (!on_key.implied) {
      on_key.explanation =
          "the key component is not implied; " + on_key.explanation;
    }
    return on_key;
  }

  ConstraintClass sigma_class = sigma.Classify();

  // Theorem 3.5(3) / Lemma 3.7: keys implied by keys, in linear time, for
  // any arity.
  if (phi.kind == ConstraintKind::kKey &&
      (sigma_class == ConstraintClass::kEmpty ||
       sigma_class == ConstraintClass::kKeysOnly)) {
    ImplicationResult result;
    result.method = "keys-only";
    if (Subsumes(sigma, phi)) {
      result.implied = true;
      result.explanation = "Σ contains a key that φ is a superkey of";
      return result;
    }
    if (!CanHaveTwo(dtd, phi.type1)) {
      result.implied = true;
      result.explanation =
          "no tree valid w.r.t. the DTD contains two '" + phi.type1 +
          "' elements, so every key over it holds vacuously (Lemma 3.6)";
      return result;
    }
    result.implied = false;
    result.explanation =
        "Σ does not subsume φ and some valid tree has two '" + phi.type1 +
        "' elements sharing the key attributes (Lemma 3.7)";
    if (options.build_witness) {
      XICC_ASSIGN_OR_RETURN(XmlTree tree,
                            BuildKeyCounterexample(dtd, phi, options));
      if (options.verify_witness) {
        XICC_RETURN_IF_ERROR(VerifyCounterexample(tree, dtd, sigma, phi));
      }
      result.counterexample = std::move(tree);
    }
    return result;
  }

  // General path: (D,Σ) ⊢ φ iff Σ ∪ {¬φ} is inconsistent over D.
  XICC_ASSIGN_OR_RETURN(Constraint negated, Negate(phi));
  ConstraintSet refutation = sigma;
  refutation.Add(std::move(negated));
  XICC_ASSIGN_OR_RETURN(ConsistencyResult consistency,
                        CheckConsistency(dtd, refutation, options));
  ImplicationResult result;
  result.method = "refutation";
  result.stats = consistency.stats;
  result.implied = !consistency.consistent;
  if (result.implied) {
    result.explanation = "Σ ∪ {¬φ} is inconsistent over D: " +
                         consistency.explanation;
  } else {
    result.explanation =
        "Σ ∪ {¬φ} is consistent over D; the witness violates φ";
    if (consistency.witness.has_value()) {
      if (options.verify_witness) {
        XICC_RETURN_IF_ERROR(VerifyCounterexample(*consistency.witness, dtd,
                                                  sigma, phi));
      }
      result.counterexample = std::move(consistency.witness);
    }
  }
  return result;
}

}  // namespace xicc
