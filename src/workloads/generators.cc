#include "workloads/generators.h"

#include <cassert>
#include <random>
#include <string>

namespace xicc {
namespace workloads {

namespace {

Dtd MustBuild(const DtdBuilder& builder) {
  Result<Dtd> dtd = builder.Build();
  assert(dtd.ok());
  return std::move(dtd).value();
}

std::string Name(const char* prefix, size_t i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

Dtd ChainDtd(size_t n) {
  assert(n >= 1);
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem(Name("e", 1)));
  for (size_t i = 1; i < n; ++i) {
    builder.AddElement(Name("e", i), Regex::Elem(Name("e", i + 1)));
    builder.AddAttribute(Name("e", i), "id");
  }
  builder.AddElement(Name("e", n), Regex::Epsilon());
  builder.AddAttribute(Name("e", n), "id");
  return MustBuild(builder);
}

Dtd WideDtd(size_t n) {
  assert(n >= 1);
  DtdBuilder builder;
  builder.SetRoot("r");
  std::vector<RegexPtr> children;
  children.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    children.push_back(Regex::Elem(Name("e", i)));
    builder.AddElement(Name("e", i), Regex::Epsilon());
    builder.AddAttribute(Name("e", i), "id");
  }
  builder.AddElement("r", Regex::ConcatAll(std::move(children)));
  return MustBuild(builder);
}

Dtd CatalogDtd(size_t sections) {
  assert(sections >= 1);
  DtdBuilder builder;
  builder.SetRoot("catalog");
  std::vector<RegexPtr> children;
  for (size_t i = 1; i <= sections; ++i) {
    std::string section = Name("section", i);
    std::string item = Name("item", i);
    std::string note = Name("note", i);
    children.push_back(Regex::Elem(section));
    builder.AddElement(section,
                       Regex::Star(Regex::Union(Regex::Elem(item),
                                                Regex::Elem(note))));
    builder.AddElement(item, Regex::Epsilon());
    builder.AddElement(note, Regex::Str());
    builder.AddAttribute(item, "id");
    builder.AddAttribute(item, "ref");
  }
  builder.AddElement("catalog", Regex::ConcatAll(std::move(children)));
  return MustBuild(builder);
}

ConstraintSet AllKeysSigma(const Dtd& dtd) {
  ConstraintSet sigma;
  for (const std::string& element : dtd.elements()) {
    const auto& attrs = dtd.AttributesOf(element);
    if (!attrs.empty()) {
      sigma.Add(Constraint::Key(element, {attrs.front()}));
    }
  }
  return sigma;
}

ConstraintSet CatalogFkChainSigma(size_t sections) {
  ConstraintSet sigma;
  for (size_t i = 1; i <= sections; ++i) {
    sigma.Add(Constraint::Key(Name("item", i), {"id"}));
  }
  for (size_t i = 1; i < sections; ++i) {
    sigma.Add(Constraint::ForeignKey(Name("item", i), {"ref"},
                                     Name("item", i + 1), {"id"}));
  }
  return sigma;
}

Dtd AuctionDtd(size_t regions) {
  assert(regions >= 1);
  DtdBuilder builder;
  builder.SetRoot("site");
  std::vector<RegexPtr> site_children;
  for (size_t i = 1; i <= regions; ++i) {
    std::string region = Name("region", i);
    std::string item = Name("item", i);
    site_children.push_back(Regex::Elem(region));
    builder.AddElement(region, Regex::Star(Regex::Elem(item)));
    builder.AddElement(item, Regex::Str());
    builder.AddAttribute(item, "id");
    builder.AddAttribute(item, "seller");
  }
  site_children.push_back(Regex::Elem("people"));
  site_children.push_back(Regex::Elem("auctions"));
  builder.AddElement("site", Regex::ConcatAll(std::move(site_children)));
  builder.AddElement("people", Regex::Star(Regex::Elem("person")));
  builder.AddElement("person", Regex::Str());
  builder.AddAttribute("person", "id");
  builder.AddElement("auctions", Regex::Star(Regex::Elem("auction")));
  builder.AddElement("auction", Regex::Epsilon());
  builder.AddAttribute("auction", "id");
  builder.AddAttribute("auction", "item_ref");
  builder.AddAttribute("auction", "winner");
  return MustBuild(builder);
}

ConstraintSet AuctionSigma(size_t regions) {
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("person", {"id"}));
  sigma.Add(Constraint::Key("auction", {"id"}));
  for (size_t i = 1; i <= regions; ++i) {
    sigma.Add(Constraint::Key(Name("item", i), {"id"}));
    sigma.Add(Constraint::ForeignKey(Name("item", i), {"seller"}, "person",
                                     {"id"}));
  }
  // Auctions reference items of the first region (the constraint language
  // has no union targets — the same scoping limitation as IDREF) and
  // winners in the people directory.
  sigma.Add(
      Constraint::ForeignKey("auction", {"item_ref"}, "item1", {"id"}));
  sigma.Add(Constraint::ForeignKey("auction", {"winner"}, "person", {"id"}));
  return sigma;
}

Dtd RandomDtd(uint64_t seed, size_t elements, size_t attrs_per_element) {
  assert(elements >= 1);
  std::mt19937_64 rng(seed);
  DtdBuilder builder;
  builder.SetRoot("r");

  // DAG topology: element i references only elements > i, so every type is
  // productive and the DTD always has valid trees.
  auto elem = [&](size_t i) { return Name("n", i); };
  std::uniform_int_distribution<int> shape_dist(0, 5);
  for (size_t i = 0; i <= elements; ++i) {
    std::string name = i == 0 ? "r" : elem(i);
    RegexPtr content;
    if (i >= elements) {
      content = rng() % 2 == 0 ? Regex::Epsilon() : Regex::Str();
    } else {
      auto pick = [&]() {
        std::uniform_int_distribution<size_t> dist(i + 1, elements);
        return Regex::Elem(elem(dist(rng)));
      };
      switch (shape_dist(rng)) {
        case 0:
          content = pick();
          break;
        case 1:
          content = Regex::Concat(pick(), pick());
          break;
        case 2:
          content = Regex::Union(pick(), pick());
          break;
        case 3:
          content = Regex::Star(pick());
          break;
        case 4:
          content = Regex::Concat(pick(), Regex::Star(pick()));
          break;
        default:
          content = Regex::Union(pick(), Regex::Epsilon());
          break;
      }
    }
    builder.AddElement(name, std::move(content));
    if (i > 0) {
      for (size_t a = 0; a < attrs_per_element; ++a) {
        builder.AddAttribute(name, Name("a", a));
      }
    }
  }
  return MustBuild(builder);
}

ConstraintSet RandomUnarySigma(const Dtd& dtd, uint64_t seed, size_t keys,
                               size_t fks) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<std::string, std::string>> pairs =
      dtd.AllAttributePairs();
  ConstraintSet sigma;
  if (pairs.empty()) return sigma;
  std::uniform_int_distribution<size_t> dist(0, pairs.size() - 1);
  for (size_t i = 0; i < keys; ++i) {
    const auto& [type, attr] = pairs[dist(rng)];
    sigma.Add(Constraint::Key(type, {attr}));
  }
  for (size_t i = 0; i < fks; ++i) {
    const auto& [type1, attr1] = pairs[dist(rng)];
    const auto& [type2, attr2] = pairs[dist(rng)];
    sigma.Add(Constraint::ForeignKey(type1, {attr1}, type2, {attr2}));
  }
  return sigma;
}

std::vector<ConstraintSet> SigmaDeltaBatch(const Dtd& dtd, uint64_t seed,
                                           size_t count,
                                           size_t min_constraints,
                                           size_t max_constraints,
                                           size_t dup_percent) {
  assert(min_constraints >= 1 && max_constraints >= min_constraints);
  assert(dup_percent <= 100);
  std::mt19937_64 rng(seed);
  std::vector<std::pair<std::string, std::string>> pairs =
      dtd.AllAttributePairs();
  std::vector<ConstraintSet> batch;
  batch.reserve(count);
  if (pairs.empty()) return batch;
  std::uniform_int_distribution<size_t> pair_dist(0, pairs.size() - 1);
  std::uniform_int_distribution<size_t> size_dist(min_constraints,
                                                  max_constraints);
  std::uniform_int_distribution<size_t> pct(0, 99);
  for (size_t q = 0; q < count; ++q) {
    if (!batch.empty() && pct(rng) < dup_percent) {
      std::uniform_int_distribution<size_t> prev(0, batch.size() - 1);
      batch.push_back(batch[prev(rng)]);
      continue;
    }
    ConstraintSet sigma;
    const size_t total = size_dist(rng);
    // Roughly half keys, half foreign keys; at least one key so the FK
    // targets have a chance of being keyed (the realistic NP-cell shape).
    const size_t keys = total / 2 + 1;
    for (size_t i = 0; i < keys && sigma.constraints().size() < total; ++i) {
      const auto& [type, attr] = pairs[pair_dist(rng)];
      sigma.Add(Constraint::Key(type, {attr}));
    }
    while (sigma.constraints().size() < total) {
      const auto& [type1, attr1] = pairs[pair_dist(rng)];
      const auto& [type2, attr2] = pairs[pair_dist(rng)];
      sigma.Add(Constraint::ForeignKey(type1, {attr1}, type2, {attr2}));
    }
    batch.push_back(std::move(sigma));
  }
  return batch;
}

MultiDtdBatchWorkload MultiDtdBatch(uint64_t seed, size_t dtd_count,
                                    size_t queries_per_dtd) {
  assert(dtd_count >= 1);
  MultiDtdBatchWorkload workload;
  workload.dtds.reserve(dtd_count);
  std::vector<std::vector<ConstraintSet>> per_dtd(dtd_count);
  for (size_t d = 0; d < dtd_count; ++d) {
    // Alternate the two naturalistic families at growing sizes so the DTDs
    // genuinely differ (different element names, different skeleton sizes).
    Dtd dtd = (d % 2 == 0) ? CatalogDtd(2 + d) : AuctionDtd(1 + d / 2);
    per_dtd[d] = SigmaDeltaBatch(dtd, seed + d, queries_per_dtd,
                                 /*min_constraints=*/1, /*max_constraints=*/4,
                                 /*dup_percent=*/25);
    workload.dtds.push_back(std::move(dtd));
  }
  // Round-robin interleave, so consecutive queries usually target different
  // DTDs and the batch scheduler has to regroup them into per-DTD chunks.
  for (size_t q = 0; q < queries_per_dtd; ++q) {
    for (size_t d = 0; d < dtd_count; ++d) {
      if (q < per_dtd[d].size()) {
        workload.queries.emplace_back(d, std::move(per_dtd[d][q]));
      }
    }
  }
  return workload;
}

BinaryLipInstance RandomLip(uint64_t seed, size_t rows, size_t cols,
                            size_t ones_per_row) {
  assert(cols >= 1 && ones_per_row >= 1 && ones_per_row <= cols);
  std::mt19937_64 rng(seed);
  BinaryLipInstance instance;
  instance.rows = rows;
  instance.cols = cols;
  instance.a.assign(rows * cols, 0);
  std::uniform_int_distribution<size_t> dist(0, cols - 1);
  for (size_t i = 0; i < rows; ++i) {
    size_t placed = 0;
    while (placed < ones_per_row) {
      size_t j = dist(rng);
      if (instance.a[i * cols + j] == 0) {
        instance.a[i * cols + j] = 1;
        ++placed;
      }
    }
  }
  return instance;
}

LipEncoding EncodeLipAsConsistency(const BinaryLipInstance& instance) {
  // The Theorem 4.7 gadget. Element types per Figure 4:
  //   r → F_1,…,F_m, b_1,…,b_m
  //   F_i → X_ij1,…,X_ijl  (the columns with a_ij = 1)
  //   X_ij → Z_ij | ε       (x_j = 1 iff X_ij has a Z_ij child)
  //   Z_ij → VF_i           (each chosen cell contributes one VF_i)
  //   VF_i, b_i → ε, each with attribute v.
  // Constraints force |ext(VF_i)| = |ext(b_i)| = 1 (row sums to exactly 1)
  // and all occurrences of x_j to take the same value.
  const size_t m = instance.rows;
  const size_t n = instance.cols;
  auto f = [](size_t i) { return Name("F", i); };
  auto b = [](size_t i) { return Name("b", i); };
  auto vf = [](size_t i) { return Name("VF", i); };
  auto x = [](size_t i, size_t j) {
    return "X" + std::to_string(i) + "_" + std::to_string(j);
  };
  auto z = [](size_t i, size_t j) {
    return "Z" + std::to_string(i) + "_" + std::to_string(j);
  };
  auto attr = [](size_t i, size_t j) {
    return "A" + std::to_string(i) + "_" + std::to_string(j);
  };

  DtdBuilder builder;
  builder.SetRoot("r");
  std::vector<RegexPtr> root_children;
  for (size_t i = 0; i < m; ++i) root_children.push_back(Regex::Elem(f(i)));
  for (size_t i = 0; i < m; ++i) root_children.push_back(Regex::Elem(b(i)));
  builder.AddElement("r", Regex::ConcatAll(std::move(root_children)));

  for (size_t i = 0; i < m; ++i) {
    std::vector<RegexPtr> cells;
    for (size_t j = 0; j < n; ++j) {
      if (!instance.At(i, j)) continue;
      cells.push_back(Regex::Elem(x(i, j)));
      builder.AddElement(x(i, j),
                         Regex::Union(Regex::Elem(z(i, j)), Regex::Epsilon()));
      builder.AddElement(z(i, j), Regex::Elem(vf(i)));
      builder.AddAttribute(z(i, j), attr(i, j));
    }
    builder.AddElement(f(i), Regex::ConcatAll(std::move(cells)));
    builder.AddElement(vf(i), Regex::Epsilon());
    builder.AddElement(b(i), Regex::Epsilon());
    builder.AddAttribute(vf(i), "v");
    builder.AddAttribute(b(i), "v");
  }

  LipEncoding out;
  out.dtd = MustBuild(builder);
  // Row constraints: VF_i.v and b_i.v key each other and include into each
  // other, forcing |ext(VF_i)| = |ext(b_i)| = 1.
  for (size_t i = 0; i < m; ++i) {
    out.sigma.Add(Constraint::Key(vf(i), {"v"}));
    out.sigma.Add(Constraint::Key(b(i), {"v"}));
    out.sigma.Add(Constraint::Inclusion(vf(i), {"v"}, b(i), {"v"}));
    out.sigma.Add(Constraint::Inclusion(b(i), {"v"}, vf(i), {"v"}));
  }
  // Column consistency: all occurrences of x_j agree — Z_ij exists iff Z_lj
  // does, enforced by keys + mutual inclusions down each column.
  for (size_t j = 0; j < n; ++j) {
    size_t prev = m;  // Sentinel.
    for (size_t i = 0; i < m; ++i) {
      if (!instance.At(i, j)) continue;
      out.sigma.Add(Constraint::Key(z(i, j), {attr(i, j)}));
      if (prev != m) {
        out.sigma.Add(
            Constraint::Inclusion(z(prev, j), {attr(prev, j)}, z(i, j),
                                  {attr(i, j)}));
        out.sigma.Add(
            Constraint::Inclusion(z(i, j), {attr(i, j)}, z(prev, j),
                                  {attr(prev, j)}));
      }
      prev = i;
    }
  }
  return out;
}

bool LipHasBinarySolution(const BinaryLipInstance& instance) {
  assert(instance.cols <= 24);
  const size_t limit = size_t{1} << instance.cols;
  for (size_t mask = 0; mask < limit; ++mask) {
    bool ok = true;
    for (size_t i = 0; i < instance.rows && ok; ++i) {
      size_t sum = 0;
      for (size_t j = 0; j < instance.cols; ++j) {
        if (instance.At(i, j) && (mask & (size_t{1} << j))) ++sum;
      }
      ok = sum == 1;
    }
    if (ok) return true;
  }
  return false;
}

}  // namespace workloads
}  // namespace xicc
