#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "constraints/constraint.h"
#include "dtd/dtd.h"

namespace xicc {
namespace workloads {

/// Deterministic scaling families and randomized instance generators for
/// the benchmark harness. All randomness is seeded — every bench run is
/// reproducible.

/// Chain of depth n: r → e1, e_i → e_{i+1}, e_n → ε; one attribute per
/// element. Exercises the linear-time analyses on deep grammars.
Dtd ChainDtd(size_t n);

/// Flat record: r → (e1, (e2, … (en))) with one attribute per element.
Dtd WideDtd(size_t n);

/// Library-style document: r → section*, section → (item | note)*, repeated
/// n times with distinct names; items carry id/ref attributes. The
/// "naturalistic" family for the NP-cell benches: realistic shapes that the
/// encoding dispatches through the ILP yet solves without search blowup.
Dtd CatalogDtd(size_t sections);

/// A key per element type that has attributes (keys-only workload).
ConstraintSet AllKeysSigma(const Dtd& dtd);

/// Auction-site document (XMark-flavored): regions with items, a people
/// directory, open auctions with bids. Scales by `regions`.
///   site → (region*, people, auctions)
///   region_i → item_i*         item_i@{id, seller}
///   people → person*           person@id
///   auctions → auction*        auction@{id, item_ref, winner}
Dtd AuctionDtd(size_t regions);

/// The natural integrity constraints of the auction site: ids key their
/// types; sellers, winners, and item references are foreign keys. All
/// unary, all consistent — the realistic end of the NP cell.
ConstraintSet AuctionSigma(size_t regions);

/// Foreign-key chain over CatalogDtd: item_i.ref ⊆ item_{i+1}.id with
/// item.id keys — consistent, growing constraint count.
ConstraintSet CatalogFkChainSigma(size_t sections);

/// Seeded random DTD: `elements` element types in a DAG (plus optional
/// star/union structure), ≤ `attrs_per_element` attributes each. Always has
/// valid trees.
Dtd RandomDtd(uint64_t seed, size_t elements, size_t attrs_per_element);

/// Seeded random unary constraint set over `dtd`: `keys` unary keys and
/// `fks` unary foreign keys over randomly chosen attribute pairs.
ConstraintSet RandomUnarySigma(const Dtd& dtd, uint64_t seed, size_t keys,
                               size_t fks);

/// Seeded batch of Σ-deltas over one DTD — the CheckBatch scaling workload.
/// Sizes are mixed on purpose (|Σ| drawn uniformly from
/// [min_constraints, max_constraints], keys and foreign keys mixed), so a
/// batch contains both tiny items that stress per-item overhead and larger
/// items that stress the solver. `dup_percent` of the items (0–100) repeat
/// an earlier item verbatim, giving the shared memo a realistic hit mix.
std::vector<ConstraintSet> SigmaDeltaBatch(const Dtd& dtd, uint64_t seed,
                                           size_t count,
                                           size_t min_constraints,
                                           size_t max_constraints,
                                           size_t dup_percent);

/// Heterogeneous batch input: several DTDs with queries routed to each —
/// the CheckBatchMulti workload. `queries` pairs a DTD index with its Σ;
/// query order interleaves the DTDs round-robin so chunking has to split
/// per DTD. Kept core-free (plain indices, not core/batch.h types) so the
/// workload library stays usable from benches and tests alike.
struct MultiDtdBatchWorkload {
  std::vector<Dtd> dtds;
  std::vector<std::pair<size_t, ConstraintSet>> queries;
};
MultiDtdBatchWorkload MultiDtdBatch(uint64_t seed, size_t dtd_count,
                                    size_t queries_per_dtd);

/// A 0/1 linear system A·x = 1 (every row sums to exactly one over chosen
/// columns) — the LIP variant of Theorem 4.7.
struct BinaryLipInstance {
  size_t rows;
  size_t cols;
  /// row-major a_ij ∈ {0,1}; every row has at least one 1.
  std::vector<uint8_t> a;

  bool At(size_t i, size_t j) const { return a[i * cols + j] != 0; }
};

/// Random instance with `ones_per_row` ones per row.
BinaryLipInstance RandomLip(uint64_t seed, size_t rows, size_t cols,
                            size_t ones_per_row);

/// The Theorem 4.7 reduction: (D, Σ) with unary keys and foreign keys such
/// that a tree valid w.r.t. D satisfying Σ exists iff A·x = 1 has a binary
/// solution. This is the NP-hardness gadget — crafted instances that force
/// the consistency checker to search.
struct LipEncoding {
  Dtd dtd;
  ConstraintSet sigma;
};
LipEncoding EncodeLipAsConsistency(const BinaryLipInstance& instance);

/// Brute-force reference oracle for small instances (cols ≤ 24).
bool LipHasBinarySolution(const BinaryLipInstance& instance);

}  // namespace workloads
}  // namespace xicc
