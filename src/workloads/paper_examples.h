#pragma once

#include "constraints/constraint.h"
#include "dtd/dtd.h"

namespace xicc {
namespace workloads {

/// D1 (Section 1): the teacher DTD —
///   teachers → teacher, teacher*; teacher → teach, research;
///   teach → subject, subject; subject/research → S;
///   teacher@name, subject@taught_by.
Dtd TeacherDtd();

/// Σ1 (Section 1): name keys teacher, taught_by keys subject and is a
/// foreign key into teacher.name. Inconsistent with D1: the DTD forces
/// |ext(subject)| = 2·|ext(teacher)| while Σ1 forces
/// |ext(subject)| ≤ |ext(teacher)|.
ConstraintSet TeacherSigma();

/// D2 (Section 1): db → foo, foo → foo — no finite tree conforms.
Dtd InfiniteDtd();

/// D3 (Section 2.2): the school DTD — school → course*, student*, enroll*,
/// with student@student_id, course@{dept,course_no},
/// enroll@{student_id,dept,course_no}.
Dtd SchoolDtd();

/// The five example constraints over D3 (three multi-attribute keys, two
/// multi-attribute foreign keys) — the C_{K,FK} showcase.
ConstraintSet SchoolSigma();

}  // namespace workloads
}  // namespace xicc
