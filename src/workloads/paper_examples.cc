#include "workloads/paper_examples.h"

#include <cassert>

namespace xicc {
namespace workloads {

namespace {

/// All example DTDs are well-formed by construction.
Dtd MustBuild(const DtdBuilder& builder) {
  Result<Dtd> dtd = builder.Build();
  assert(dtd.ok());
  return std::move(dtd).value();
}

}  // namespace

Dtd TeacherDtd() {
  DtdBuilder builder;
  builder.SetRoot("teachers");
  // <!ELEMENT teachers (teacher+)>, written as (teacher, teacher*) as in
  // the paper's formalization P1(teachers) = teacher, teacher*.
  builder.AddElement(
      "teachers",
      Regex::Concat(Regex::Elem("teacher"), Regex::Star(Regex::Elem("teacher"))));
  builder.AddElement("teacher", Regex::Concat(Regex::Elem("teach"),
                                              Regex::Elem("research")));
  builder.AddElement("teach", Regex::Concat(Regex::Elem("subject"),
                                            Regex::Elem("subject")));
  builder.AddElement("subject", Regex::Str());
  builder.AddElement("research", Regex::Str());
  builder.AddAttribute("teacher", "name");
  builder.AddAttribute("subject", "taught_by");
  return MustBuild(builder);
}

ConstraintSet TeacherSigma() {
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));
  sigma.Add(Constraint::Key("subject", {"taught_by"}));
  sigma.Add(Constraint::ForeignKey("subject", {"taught_by"}, "teacher",
                                   {"name"}));
  return sigma;
}

Dtd InfiniteDtd() {
  DtdBuilder builder;
  builder.SetRoot("db");
  builder.AddElement("db", Regex::Elem("foo"));
  builder.AddElement("foo", Regex::Elem("foo"));
  return MustBuild(builder);
}

Dtd SchoolDtd() {
  DtdBuilder builder;
  builder.SetRoot("school");
  builder.AddElement(
      "school",
      Regex::ConcatAll({Regex::Star(Regex::Elem("course")),
                        Regex::Star(Regex::Elem("student")),
                        Regex::Star(Regex::Elem("enroll"))}));
  builder.AddElement("course", Regex::Elem("subject"));
  builder.AddElement("student", Regex::Elem("name"));
  builder.AddElement("enroll", Regex::Epsilon());
  builder.AddElement("name", Regex::Str());
  builder.AddElement("subject", Regex::Str());
  builder.AddAttribute("course", "dept");
  builder.AddAttribute("course", "course_no");
  builder.AddAttribute("student", "student_id");
  builder.AddAttribute("enroll", "student_id");
  builder.AddAttribute("enroll", "dept");
  builder.AddAttribute("enroll", "course_no");
  return MustBuild(builder);
}

ConstraintSet SchoolSigma() {
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("student", {"student_id"}));
  sigma.Add(Constraint::Key("course", {"dept", "course_no"}));
  sigma.Add(Constraint::Key("enroll", {"student_id", "dept", "course_no"}));
  sigma.Add(Constraint::ForeignKey("enroll", {"student_id"}, "student",
                                   {"student_id"}));
  sigma.Add(Constraint::ForeignKey("enroll", {"dept", "course_no"}, "course",
                                   {"dept", "course_no"}));
  return sigma;
}

}  // namespace workloads
}  // namespace xicc
