#pragma once

#include <string>
#include <vector>

#include "relational/schema.h"

namespace xicc {
namespace relational {

/// Relational dependency forms used by the Section 3 proofs:
///  - kKey:        R[l1..lk] → R        (key)
///  - kForeignKey: R[X] ⊆ R'[Y], R'[Y] → R'
///  - kFd:         R : X → Y            (functional dependency)
///  - kId:         R[X] ⊆ R'[Y]         (inclusion dependency; Y not
///                                        necessarily a key)
enum class DependencyKind { kKey, kForeignKey, kFd, kId };

struct Dependency {
  DependencyKind kind;
  std::string relation1;
  std::vector<std::string> attrs1;  ///< X (keys: the key attributes).
  /// FD: Y (right side). FK/ID: empty.
  std::vector<std::string> fd_rhs;
  /// FK/ID: target relation and attributes.
  std::string relation2;
  std::vector<std::string> attrs2;

  static Dependency Key(std::string relation, std::vector<std::string> attrs);
  static Dependency ForeignKey(std::string relation1,
                               std::vector<std::string> attrs1,
                               std::string relation2,
                               std::vector<std::string> attrs2);
  static Dependency Fd(std::string relation, std::vector<std::string> lhs,
                       std::vector<std::string> rhs);
  static Dependency Id(std::string relation1, std::vector<std::string> attrs1,
                       std::string relation2, std::vector<std::string> attrs2);

  std::string ToString() const;
};

/// I ⊨ dep, per the standard definitions quoted in Section 3.1.
bool Satisfies(const Instance& instance, const Dependency& dep);

/// I ⊨ Σ.
bool SatisfiesAll(const Instance& instance,
                  const std::vector<Dependency>& deps);

}  // namespace relational
}  // namespace xicc
