#include "relational/reduction.h"

#include <algorithm>
#include <map>
#include <set>

namespace xicc {
namespace relational {

namespace {

/// Canonically ordered union of attribute lists (the proofs write XY, XYZ
/// for unions; inclusion sides built from the same union align positionally).
std::vector<std::string> UnionAttrs(
    const std::vector<std::vector<std::string>>& lists) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& list : lists) {
    for (const std::string& attr : list) {
      if (seen.insert(attr).second) out.push_back(attr);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string FreshName(std::string base, const std::set<std::string>& taken) {
  if (taken.count(base) == 0) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (taken.count(candidate) == 0) return candidate;
  }
}

}  // namespace

Result<FdIdEncoding> EncodeFdIdImplication(
    const Schema& schema, const std::vector<Dependency>& sigma_fd_id,
    const Dependency& theta) {
  if (theta.kind != DependencyKind::kFd) {
    return Status::InvalidArgument("theta must be a functional dependency");
  }
  FdIdEncoding out;
  out.schema = schema;
  std::set<std::string> taken(schema.relations().begin(),
                              schema.relations().end());

  // Encodes one FD R : X → Y. Z = Att(R) serves as the designated key of R.
  // Returns the key ℓ1 = Rnew[X] → Rnew; pushes ℓ2..ℓ4 into out.sigma.
  auto encode_fd = [&](const Dependency& fd) -> Result<Dependency> {
    if (!schema.HasRelation(fd.relation1)) {
      return Status::InvalidArgument("FD over unknown relation '" +
                                     fd.relation1 + "'");
    }
    const std::vector<std::string>& att_r =
        schema.AttributesOf(fd.relation1);
    std::vector<std::string> xy = UnionAttrs({fd.attrs1, fd.fd_rhs});
    std::vector<std::string> xyz = UnionAttrs({xy, att_r});  // = Att(R).

    std::string rnew = FreshName(fd.relation1 + "_new", taken);
    taken.insert(rnew);
    out.fresh_relations.push_back(rnew);
    XICC_RETURN_IF_ERROR(out.schema.AddRelation(rnew, xyz));

    // ℓ2 = R[XY] ⊆ Rnew[XY] with Rnew[XY] a key (ℓ4), hence a foreign key.
    out.sigma.push_back(
        Dependency::ForeignKey(fd.relation1, xy, rnew, xy));
    // ℓ3 = Rnew[XYZ] ⊆ R[XYZ]; XYZ ⊇ Att(R) is a (super)key of R.
    out.sigma.push_back(Dependency::ForeignKey(rnew, xyz, fd.relation1, xyz));
    // ℓ4 = Rnew[XY] → Rnew.
    out.sigma.push_back(Dependency::Key(rnew, xy));
    // ℓ1 = Rnew[X] → Rnew.
    return Dependency::Key(rnew, fd.attrs1);
  };

  for (const Dependency& dep : sigma_fd_id) {
    switch (dep.kind) {
      case DependencyKind::kKey:
        // Keys are FDs X → Att(R); they are already in the target language.
        out.sigma.push_back(dep);
        break;
      case DependencyKind::kForeignKey:
        out.sigma.push_back(dep);
        break;
      case DependencyKind::kFd: {
        XICC_ASSIGN_OR_RETURN(Dependency l1, encode_fd(dep));
        out.sigma.push_back(std::move(l1));
        break;
      }
      case DependencyKind::kId: {
        // ID R1[X] ⊆ R2[Y]; Z = Att(R2).
        if (!schema.HasRelation(dep.relation2)) {
          return Status::InvalidArgument("ID over unknown relation '" +
                                         dep.relation2 + "'");
        }
        std::vector<std::string> yz =
            UnionAttrs({dep.attrs2, schema.AttributesOf(dep.relation2)});
        std::string rnew = FreshName(dep.relation2 + "_new", taken);
        taken.insert(rnew);
        out.fresh_relations.push_back(rnew);
        XICC_RETURN_IF_ERROR(out.schema.AddRelation(rnew, yz));
        // ℓ1 = Rnew[Y] → Rnew.
        out.sigma.push_back(Dependency::Key(rnew, dep.attrs2));
        // ℓ2 = R1[X] ⊆ Rnew[Y]  (foreign key, by ℓ1).
        out.sigma.push_back(
            Dependency::ForeignKey(dep.relation1, dep.attrs1, rnew,
                                   dep.attrs2));
        // ℓ3 = Rnew[YZ] ⊆ R2[YZ]  (YZ ⊇ Att(R2) is a superkey of R2).
        out.sigma.push_back(
            Dependency::ForeignKey(rnew, yz, dep.relation2, yz));
        break;
      }
    }
  }

  // The target FD θ gets the same four-constraint encoding; ℓ1 becomes the
  // implied key and ℓ2..ℓ4 join Σ'.
  XICC_ASSIGN_OR_RETURN(Dependency target, encode_fd(theta));
  out.target_key = std::move(target);
  return out;
}

Result<Instance> ExtendInstanceForFdIdEncoding(
    const FdIdEncoding& encoding, const Schema& original_schema,
    const std::vector<Dependency>& sigma_fd_id, const Dependency& theta,
    const Instance& instance) {
  Instance extended(&encoding.schema);
  // Original relations carry over untouched.
  for (const std::string& relation : original_schema.relations()) {
    for (const Tuple& tuple : instance.RelationOf(relation)) {
      XICC_RETURN_IF_ERROR(extended.Insert(relation, tuple));
    }
  }

  // Replay the encoding's fresh-relation order: one per FD/ID in Σ, then θ.
  size_t next_fresh = 0;
  auto populate = [&](const std::string& source_relation,
                      const std::vector<std::string>& group_attrs) -> Status {
    if (next_fresh >= encoding.fresh_relations.size()) {
      return Status::Internal("fresh relation ordering out of sync");
    }
    const std::string& fresh = encoding.fresh_relations[next_fresh++];
    const std::vector<std::string>& fresh_attrs =
        encoding.schema.AttributesOf(fresh);
    std::set<std::vector<std::string>> groups_seen;
    for (const Tuple& tuple : instance.RelationOf(source_relation)) {
      std::vector<std::string> group;
      group.reserve(group_attrs.size());
      for (const std::string& attr : group_attrs) {
        group.push_back(tuple.at(attr));
      }
      // One representative per key group: keeps the fresh relation's key
      // while preserving the projection on the key attributes.
      if (!groups_seen.insert(std::move(group)).second) continue;
      Tuple projected;
      for (const std::string& attr : fresh_attrs) {
        projected[attr] = tuple.at(attr);
      }
      XICC_RETURN_IF_ERROR(extended.Insert(fresh, std::move(projected)));
    }
    return Status::Ok();
  };

  for (const Dependency& dep : sigma_fd_id) {
    if (dep.kind == DependencyKind::kFd) {
      XICC_RETURN_IF_ERROR(
          populate(dep.relation1, UnionAttrs({dep.attrs1, dep.fd_rhs})));
    } else if (dep.kind == DependencyKind::kId) {
      XICC_RETURN_IF_ERROR(populate(dep.relation2, dep.attrs2));
    }
  }
  XICC_RETURN_IF_ERROR(
      populate(theta.relation1, UnionAttrs({theta.attrs1, theta.fd_rhs})));
  return extended;
}

Result<XmlConsistencyEncoding> EncodeImplicationComplementAsConsistency(
    const Schema& schema, const std::vector<Dependency>& theta,
    const Dependency& phi) {
  if (phi.kind != DependencyKind::kKey) {
    return Status::InvalidArgument("phi must be a key");
  }
  if (!schema.HasRelation(phi.relation1)) {
    return Status::InvalidArgument("phi over unknown relation '" +
                                   phi.relation1 + "'");
  }
  // X and Y = Att(R) \ X.
  const std::vector<std::string>& att_r = schema.AttributesOf(phi.relation1);
  std::vector<std::string> x = phi.attrs1;
  std::vector<std::string> y;
  {
    std::set<std::string> in_x(x.begin(), x.end());
    for (const std::string& attr : att_r) {
      if (in_x.count(attr) == 0) y.push_back(attr);
    }
  }
  if (y.empty()) {
    return Status::InvalidArgument(
        "phi keys all attributes of '" + phi.relation1 +
        "'; such a key is implied by every Σ (two tuples equal on all "
        "attributes are equal), so ¬φ has no witness and the reduction is "
        "undefined");
  }

  std::set<std::string> taken(schema.relations().begin(),
                              schema.relations().end());
  XmlConsistencyEncoding out;
  std::string root = FreshName("r", taken);
  taken.insert(root);
  out.dy_type = FreshName("Dy", taken);
  taken.insert(out.dy_type);
  out.ex_type = FreshName("Ex", taken);
  taken.insert(out.ex_type);

  DtdBuilder builder;
  std::vector<RegexPtr> root_children;
  std::string t_phi;
  for (const std::string& relation : schema.relations()) {
    std::string tuple_type = FreshName("t_" + relation, taken);
    taken.insert(tuple_type);
    out.tuple_types.push_back(tuple_type);
    if (relation == phi.relation1) t_phi = tuple_type;

    builder.AddElement(relation, Regex::Star(Regex::Elem(tuple_type)));
    builder.AddElement(tuple_type, Regex::Epsilon());
    for (const std::string& attr : schema.AttributesOf(relation)) {
      builder.AddAttribute(tuple_type, attr);
    }
    root_children.push_back(Regex::Elem(relation));
  }
  root_children.push_back(Regex::Elem(out.dy_type));
  root_children.push_back(Regex::Elem(out.dy_type));
  root_children.push_back(Regex::Elem(out.ex_type));
  builder.AddElement(root, Regex::ConcatAll(std::move(root_children)));
  builder.SetRoot(root);
  builder.AddElement(out.dy_type, Regex::Epsilon());
  builder.AddElement(out.ex_type, Regex::Epsilon());
  for (const std::string& attr : UnionAttrs({x, y})) {
    builder.AddAttribute(out.dy_type, attr);
  }
  for (const std::string& attr : x) {
    builder.AddAttribute(out.ex_type, attr);
  }
  XICC_ASSIGN_OR_RETURN(out.dtd, builder.Build());

  // Σ_Θ: Θ's keys and foreign keys transplanted onto the tuple types.
  std::map<std::string, std::string> tuple_of;
  for (size_t i = 0; i < schema.relations().size(); ++i) {
    tuple_of[schema.relations()[i]] = out.tuple_types[i];
  }
  for (const Dependency& dep : theta) {
    switch (dep.kind) {
      case DependencyKind::kKey:
        out.sigma.Add(
            Constraint::Key(tuple_of.at(dep.relation1), dep.attrs1));
        break;
      case DependencyKind::kForeignKey:
        out.sigma.Add(Constraint::ForeignKey(
            tuple_of.at(dep.relation1), dep.attrs1,
            tuple_of.at(dep.relation2), dep.attrs2));
        break;
      case DependencyKind::kFd:
      case DependencyKind::kId:
        return Status::InvalidArgument(
            "theta must contain keys and foreign keys only; got " +
            dep.ToString());
    }
  }

  // Σ_φ: the ¬φ gadget.
  std::vector<std::string> xy = UnionAttrs({x, y});
  out.sigma.Add(Constraint::Key(out.dy_type, y));
  out.sigma.Add(Constraint::Key(out.ex_type, x));
  out.sigma.Add(Constraint::Inclusion(out.dy_type, x, out.ex_type, x));
  out.sigma.Add(Constraint::Inclusion(out.dy_type, xy, t_phi, xy));
  out.sigma.Add(Constraint::Key(t_phi, xy));
  return out;
}

Result<XmlTree> BuildTreeFromInstance(const XmlConsistencyEncoding& encoding,
                                      const Schema& schema,
                                      const Instance& instance,
                                      const Dependency& phi) {
  XmlTree tree(encoding.dtd.root());
  for (size_t i = 0; i < schema.relations().size(); ++i) {
    const std::string& relation = schema.relations()[i];
    const std::string& tuple_type = encoding.tuple_types[i];
    NodeId relation_node = tree.AddElement(tree.root(), relation);
    for (const Tuple& tuple : instance.RelationOf(relation)) {
      NodeId node = tree.AddElement(relation_node, tuple_type);
      for (const auto& [attr, value] : tuple) {
        tree.SetAttribute(node, attr, value);
      }
    }
  }

  // Find the ¬φ witness pair p, p' with p[X] = p'[X] and p[Y] ≠ p'[Y].
  const Relation& r_phi = instance.RelationOf(phi.relation1);
  const Tuple* p = nullptr;
  const Tuple* q = nullptr;
  for (size_t i = 0; i < r_phi.size() && p == nullptr; ++i) {
    for (size_t j = i + 1; j < r_phi.size(); ++j) {
      bool same_x = true;
      for (const std::string& attr : phi.attrs1) {
        if (r_phi[i].at(attr) != r_phi[j].at(attr)) {
          same_x = false;
          break;
        }
      }
      if (same_x && r_phi[i] != r_phi[j]) {
        p = &r_phi[i];
        q = &r_phi[j];
        break;
      }
    }
  }
  if (p == nullptr) {
    return Status::InvalidArgument(
        "instance satisfies phi; no witness pair for the D_Y gadget");
  }

  NodeId d1 = tree.AddElement(tree.root(), encoding.dy_type);
  NodeId d2 = tree.AddElement(tree.root(), encoding.dy_type);
  for (const std::string& attr : encoding.dtd.AttributesOf(encoding.dy_type)) {
    tree.SetAttribute(d1, attr, p->at(attr));
    tree.SetAttribute(d2, attr, q->at(attr));
  }
  NodeId e = tree.AddElement(tree.root(), encoding.ex_type);
  for (const std::string& attr : encoding.dtd.AttributesOf(encoding.ex_type)) {
    tree.SetAttribute(e, attr, p->at(attr));
  }
  return tree;
}

Result<Instance> ExtractInstanceFromTree(
    const XmlConsistencyEncoding& encoding, const Schema& schema,
    const XmlTree& tree) {
  Instance instance(&schema);
  for (size_t i = 0; i < schema.relations().size(); ++i) {
    const std::string& relation = schema.relations()[i];
    for (NodeId node : tree.ExtOfType(encoding.tuple_types[i])) {
      Tuple tuple;
      for (const std::string& attr : schema.AttributesOf(relation)) {
        auto value = tree.AttributeValue(node, attr);
        if (!value.has_value()) {
          return Status::InvalidArgument(
              "tuple element missing attribute '" + attr + "'");
        }
        tuple[attr] = std::string(*value);
      }
      XICC_RETURN_IF_ERROR(instance.Insert(relation, std::move(tuple)));
    }
  }
  return instance;
}

namespace {

/// Shared construction for the two Lemma 3.3 variants: D' plus the gadget
/// types/attribute.
struct Gadget {
  Dtd dtd;
  std::string dy;
  std::string ex;
  std::string key_attr;
};

Result<Gadget> BuildImplicationGadget(const Dtd& dtd) {
  std::set<std::string> taken(dtd.elements().begin(), dtd.elements().end());
  Gadget g;
  g.dy = FreshName("Dy", taken);
  taken.insert(g.dy);
  g.ex = FreshName("Ex", taken);
  taken.insert(g.ex);

  std::set<std::string> attr_names;
  for (const auto& [element, attr] : dtd.AllAttributePairs()) {
    attr_names.insert(attr);
  }
  g.key_attr = FreshName("K", attr_names);

  DtdBuilder builder;
  for (const std::string& element : dtd.elements()) {
    RegexPtr content = dtd.ContentOf(element);
    if (element == dtd.root()) {
      content = Regex::Concat(
          content, Regex::Concat(Regex::Elem(g.dy),
                                 Regex::Concat(Regex::Elem(g.dy),
                                               Regex::Elem(g.ex))));
    }
    builder.AddElement(element, content);
    for (const std::string& attr : dtd.AttributesOf(element)) {
      builder.AddAttribute(element, attr);
    }
  }
  builder.AddElement(g.dy, Regex::Epsilon());
  builder.AddElement(g.ex, Regex::Epsilon());
  builder.AddAttribute(g.dy, g.key_attr);
  builder.AddAttribute(g.ex, g.key_attr);
  builder.SetRoot(dtd.root());
  XICC_ASSIGN_OR_RETURN(g.dtd, builder.Build());
  return g;
}

}  // namespace

Result<ImplicationEncoding> EncodeConsistencyAsKeyImplication(
    const Dtd& dtd, const ConstraintSet& sigma) {
  XICC_ASSIGN_OR_RETURN(Gadget g, BuildImplicationGadget(dtd));
  ImplicationEncoding out;
  out.dtd = std::move(g.dtd);
  out.sigma = sigma;
  // ℓ = E_X.K → E_X and φ2 = D_Y.K ⊆ E_X.K join Σ; φ1 = D_Y.K → D_Y is
  // implied iff Σ is inconsistent over D.
  out.sigma.Add(Constraint::Key(g.ex, {g.key_attr}));
  out.sigma.Add(Constraint::Inclusion(g.dy, {g.key_attr}, g.ex,
                                      {g.key_attr}));
  out.implied = Constraint::Key(g.dy, {g.key_attr});
  return out;
}

Result<ImplicationEncoding> EncodeConsistencyAsInclusionImplication(
    const Dtd& dtd, const ConstraintSet& sigma) {
  XICC_ASSIGN_OR_RETURN(Gadget g, BuildImplicationGadget(dtd));
  ImplicationEncoding out;
  out.dtd = std::move(g.dtd);
  out.sigma = sigma;
  // ℓ = E_X.K → E_X and φ1 = D_Y.K → D_Y join Σ; φ2 = D_Y.K ⊆ E_X.K is
  // implied iff Σ is inconsistent over D.
  out.sigma.Add(Constraint::Key(g.ex, {g.key_attr}));
  out.sigma.Add(Constraint::Key(g.dy, {g.key_attr}));
  out.implied =
      Constraint::Inclusion(g.dy, {g.key_attr}, g.ex, {g.key_attr});
  return out;
}

}  // namespace relational
}  // namespace xicc
