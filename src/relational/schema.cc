#include "relational/schema.h"

#include <set>

namespace xicc {
namespace relational {

Status Schema::AddRelation(const std::string& name,
                           std::vector<std::string> attrs) {
  if (attrs_.count(name) > 0) {
    return Status::InvalidArgument("relation '" + name +
                                   "' declared twice");
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("relation '" + name +
                                   "' has no attributes");
  }
  std::set<std::string> seen;
  for (const std::string& attr : attrs) {
    if (!seen.insert(attr).second) {
      return Status::InvalidArgument("relation '" + name +
                                     "' repeats attribute '" + attr + "'");
    }
  }
  order_.push_back(name);
  attrs_.emplace(name, std::move(attrs));
  return Status::Ok();
}

bool Schema::HasAttribute(const std::string& relation,
                          const std::string& attr) const {
  auto it = attrs_.find(relation);
  if (it == attrs_.end()) return false;
  for (const std::string& a : it->second) {
    if (a == attr) return true;
  }
  return false;
}

Status Instance::Insert(const std::string& relation, Tuple tuple) {
  if (!schema_->HasRelation(relation)) {
    return Status::InvalidArgument("unknown relation '" + relation + "'");
  }
  const auto& attrs = schema_->AttributesOf(relation);
  if (tuple.size() != attrs.size()) {
    return Status::InvalidArgument("tuple arity mismatch for '" + relation +
                                   "'");
  }
  for (const std::string& attr : attrs) {
    if (tuple.find(attr) == tuple.end()) {
      return Status::InvalidArgument("tuple for '" + relation +
                                     "' missing attribute '" + attr + "'");
    }
  }
  data_[relation].push_back(std::move(tuple));
  return Status::Ok();
}

const Relation& Instance::RelationOf(const std::string& name) const {
  static const Relation kEmpty;
  auto it = data_.find(name);
  return it == data_.end() ? kEmpty : it->second;
}

}  // namespace relational
}  // namespace xicc
