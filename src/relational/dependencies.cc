#include "relational/dependencies.h"

#include <map>

namespace xicc {
namespace relational {

Dependency Dependency::Key(std::string relation,
                           std::vector<std::string> attrs) {
  Dependency d;
  d.kind = DependencyKind::kKey;
  d.relation1 = std::move(relation);
  d.attrs1 = std::move(attrs);
  return d;
}

Dependency Dependency::ForeignKey(std::string relation1,
                                  std::vector<std::string> attrs1,
                                  std::string relation2,
                                  std::vector<std::string> attrs2) {
  Dependency d;
  d.kind = DependencyKind::kForeignKey;
  d.relation1 = std::move(relation1);
  d.attrs1 = std::move(attrs1);
  d.relation2 = std::move(relation2);
  d.attrs2 = std::move(attrs2);
  return d;
}

Dependency Dependency::Fd(std::string relation, std::vector<std::string> lhs,
                          std::vector<std::string> rhs) {
  Dependency d;
  d.kind = DependencyKind::kFd;
  d.relation1 = std::move(relation);
  d.attrs1 = std::move(lhs);
  d.fd_rhs = std::move(rhs);
  return d;
}

Dependency Dependency::Id(std::string relation1,
                          std::vector<std::string> attrs1,
                          std::string relation2,
                          std::vector<std::string> attrs2) {
  Dependency d;
  d.kind = DependencyKind::kId;
  d.relation1 = std::move(relation1);
  d.attrs1 = std::move(attrs1);
  d.relation2 = std::move(relation2);
  d.attrs2 = std::move(attrs2);
  return d;
}

namespace {

std::string RenderAttrs(const std::vector<std::string>& attrs) {
  std::string out = "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs[i];
  }
  return out + "]";
}

std::vector<std::string> Project(const Tuple& tuple,
                                 const std::vector<std::string>& attrs) {
  std::vector<std::string> out;
  out.reserve(attrs.size());
  for (const std::string& attr : attrs) out.push_back(tuple.at(attr));
  return out;
}

bool SatisfiesFd(const Instance& instance, const std::string& relation,
                 const std::vector<std::string>& lhs,
                 const std::vector<std::string>& rhs) {
  std::map<std::vector<std::string>, std::vector<std::string>> seen;
  for (const Tuple& t : instance.RelationOf(relation)) {
    auto key = Project(t, lhs);
    auto value = Project(t, rhs);
    auto [it, inserted] = seen.emplace(std::move(key), value);
    if (!inserted && it->second != value) return false;
  }
  return true;
}

bool SatisfiesInclusion(const Instance& instance, const std::string& r1,
                        const std::vector<std::string>& attrs1,
                        const std::string& r2,
                        const std::vector<std::string>& attrs2) {
  std::map<std::vector<std::string>, bool> targets;
  for (const Tuple& t : instance.RelationOf(r2)) {
    targets.emplace(Project(t, attrs2), true);
  }
  for (const Tuple& t : instance.RelationOf(r1)) {
    if (targets.find(Project(t, attrs1)) == targets.end()) return false;
  }
  return true;
}

}  // namespace

std::string Dependency::ToString() const {
  switch (kind) {
    case DependencyKind::kKey:
      return relation1 + RenderAttrs(attrs1) + " -> " + relation1;
    case DependencyKind::kForeignKey:
      return relation1 + RenderAttrs(attrs1) + " <= " + relation2 +
             RenderAttrs(attrs2) + " (key)";
    case DependencyKind::kFd:
      return relation1 + " : " + RenderAttrs(attrs1) + " -> " +
             RenderAttrs(fd_rhs);
    case DependencyKind::kId:
      return relation1 + RenderAttrs(attrs1) + " <= " + relation2 +
             RenderAttrs(attrs2);
  }
  return "?";
}

bool Satisfies(const Instance& instance, const Dependency& dep) {
  switch (dep.kind) {
    case DependencyKind::kKey:
      // A key is the FD X → Att(R).
      return SatisfiesFd(instance, dep.relation1, dep.attrs1,
                         instance.schema().AttributesOf(dep.relation1));
    case DependencyKind::kFd:
      return SatisfiesFd(instance, dep.relation1, dep.attrs1, dep.fd_rhs);
    case DependencyKind::kForeignKey:
      return SatisfiesFd(instance, dep.relation2, dep.attrs2,
                         instance.schema().AttributesOf(dep.relation2)) &&
             SatisfiesInclusion(instance, dep.relation1, dep.attrs1,
                                dep.relation2, dep.attrs2);
    case DependencyKind::kId:
      return SatisfiesInclusion(instance, dep.relation1, dep.attrs1,
                                dep.relation2, dep.attrs2);
  }
  return false;
}

bool SatisfiesAll(const Instance& instance,
                  const std::vector<Dependency>& deps) {
  for (const Dependency& dep : deps) {
    if (!Satisfies(instance, dep)) return false;
  }
  return true;
}

}  // namespace relational
}  // namespace xicc
