#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint.h"
#include "dtd/dtd.h"
#include "relational/dependencies.h"
#include "relational/schema.h"
#include "xml/tree.h"

namespace xicc {
namespace relational {

/// Executable forms of the Section 3 reductions. These are the PTIME
/// constructions whose correctness proves the undecidability results
/// (Theorem 3.1, Lemma 3.2, Lemma 3.3, Corollary 3.4). They cannot decide
/// the undecidable problems — nothing can — but they are runnable, and the
/// equivalences claimed in the proofs are machine-checked in the test suite
/// via the accompanying witness converters.

/// Output of the Lemma 3.2 encoding: FD-by-FD+ID implication reduced to
/// key-by-key+FK implication over an extended schema.
struct FdIdEncoding {
  Schema schema;                      ///< R' = R plus the fresh relations.
  std::vector<Dependency> sigma;      ///< Σ' — keys and foreign keys.
  Dependency target_key;              ///< φ': Σ ⊢ θ iff Σ' ⊢ φ'.
  std::vector<std::string> fresh_relations;
};

/// Lemma 3.2: encodes (R, Σ of FDs/IDs, FD θ) such that Σ ⊢ θ over R iff
/// sigma ⊢ target_key over schema. θ must be an FD, each dependency in
/// `sigma_fd_id` an FD or ID over `schema`.
Result<FdIdEncoding> EncodeFdIdImplication(
    const Schema& schema, const std::vector<Dependency>& sigma_fd_id,
    const Dependency& theta);

/// The constructive direction (1) of the Lemma 3.2 proof: extends an
/// instance I of the original schema to an instance I' of encoding.schema by
/// populating each fresh relation R_new with the key-respecting projection
/// the proof describes (a subset of π_XYZ(I) with π_XY preserved and the
/// key X Y enforced by keeping the first tuple per XY-group; for ID-derived
/// relations, π_YZ with key Y). If I ⊨ Σ ∧ ¬θ then I' ⊨ Σ' ∧ ¬φ' — the
/// test suite machine-checks this on concrete instances.
Result<Instance> ExtendInstanceForFdIdEncoding(
    const FdIdEncoding& encoding, const Schema& original_schema,
    const std::vector<Dependency>& sigma_fd_id, const Dependency& theta,
    const Instance& instance);

/// Output of the Theorem 3.1 reduction: the complement of relational
/// key-by-keys+FKs implication as an XML consistency instance.
struct XmlConsistencyEncoding {
  Dtd dtd;
  ConstraintSet sigma;  ///< C_{K,FK} constraints (multi-attribute).
  /// Element type names chosen for the proof gadget (fresh w.r.t. the
  /// relation names): the two-copy D_Y type, the singleton E_X type, and the
  /// per-relation tuple types t_i.
  std::string dy_type;
  std::string ex_type;
  std::vector<std::string> tuple_types;  ///< Parallel to schema.relations().
};

/// Theorem 3.1: encodes (R, Θ of keys/FKs, key φ = R[X] → R) as (D, Σ) with:
/// Θ ∧ ¬φ satisfiable over R  ⇔  some T ⊨ D with T ⊨ Σ.
Result<XmlConsistencyEncoding> EncodeImplicationComplementAsConsistency(
    const Schema& schema, const std::vector<Dependency>& theta,
    const Dependency& phi);

/// The constructive halves of the Theorem 3.1 proof, used to machine-check
/// the equivalence on concrete instances:
/// builds the tree of Figure 2 from an instance I ⊨ Θ ∧ ¬φ...
Result<XmlTree> BuildTreeFromInstance(const XmlConsistencyEncoding& encoding,
                                      const Schema& schema,
                                      const Instance& instance,
                                      const Dependency& phi);
/// ...and extracts the instance I from a tree T ⊨ D ∧ Σ.
Result<Instance> ExtractInstanceFromTree(
    const XmlConsistencyEncoding& encoding, const Schema& schema,
    const XmlTree& tree);

/// Output of the Lemma 3.3 reduction: XML consistency reduced to the
/// complement of implication.
struct ImplicationEncoding {
  Dtd dtd;                ///< D' — D with two D_Y children and one E_X child
                          ///  appended to the root's content model.
  ConstraintSet sigma;    ///< Σ ∪ {ℓ} (+ φ2 or φ1 depending on variant).
  Constraint implied;     ///< The constraint whose implication is tested.
};

/// Lemma 3.3(1): Σ consistent over D iff NOT (D', Σ ∪ {ℓ, φ2} ⊢ φ1), where
/// φ1 = D_Y.K → D_Y (a unary key).
Result<ImplicationEncoding> EncodeConsistencyAsKeyImplication(
    const Dtd& dtd, const ConstraintSet& sigma);

/// Lemma 3.3(2): Σ consistent over D iff NOT (D', Σ ∪ {ℓ, φ1} ⊢ φ2), where
/// φ2 = D_Y.K ⊆ E_X.K (a unary inclusion constraint).
Result<ImplicationEncoding> EncodeConsistencyAsInclusionImplication(
    const Dtd& dtd, const ConstraintSet& sigma);

}  // namespace relational
}  // namespace xicc
