#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/status.h"

namespace xicc {
namespace relational {

/// A relational schema R = (R1, ..., Rn): relation names with attribute
/// lists. Substrate for the Section 3 reductions, which translate relational
/// dependency problems into XML consistency problems.
class Schema {
 public:
  /// Declares relation `name` with attribute list `attrs` (distinct,
  /// nonempty).
  Status AddRelation(const std::string& name,
                     std::vector<std::string> attrs);

  bool HasRelation(const std::string& name) const {
    return attrs_.count(name) > 0;
  }
  const std::vector<std::string>& AttributesOf(const std::string& name) const {
    return attrs_.at(name);
  }
  bool HasAttribute(const std::string& relation,
                    const std::string& attr) const;
  const std::vector<std::string>& relations() const { return order_; }

 private:
  std::vector<std::string> order_;
  std::map<std::string, std::vector<std::string>> attrs_;
};

/// A tuple: attribute name → string value.
using Tuple = std::map<std::string, std::string>;

/// A finite instance of one relation.
using Relation = std::vector<Tuple>;

/// A finite database instance I of a Schema.
class Instance {
 public:
  explicit Instance(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Appends `tuple` to `relation`; the tuple must bind exactly the
  /// relation's attributes.
  Status Insert(const std::string& relation, Tuple tuple);

  const Relation& RelationOf(const std::string& name) const;

 private:
  const Schema* schema_;
  std::map<std::string, Relation> data_;
};

}  // namespace relational
}  // namespace xicc
