#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/source_model.h"

namespace xicc {

namespace {

/// True when a function's return-type text is Status or Result<...>
/// (possibly xicc::-qualified).
bool ReturnsStatusLike(const std::string& return_type) {
  std::string first;
  size_t at = 0;
  // Skip a leading `xicc ::`.
  const std::string ns = "xicc ::";
  if (return_type.compare(0, ns.size(), ns) == 0) at = ns.size();
  while (at < return_type.size() && return_type[at] == ' ') ++at;
  while (at < return_type.size() && return_type[at] != ' ') {
    first.push_back(return_type[at++]);
  }
  return first == "Status" || first == "Result";
}

}  // namespace

void AnalyzeStatusFlow(const SourceModel& model,
                       std::vector<Finding>* findings) {
  // ---- Every function name that returns Status/Result (decls included, so
  // headers teach us about callees defined elsewhere). ----
  std::set<std::string> returners;
  for (const SourceFile& file : model.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (ReturnsStatusLike(fn.return_type)) returners.insert(fn.name);
    }
  }
  if (returners.empty()) return;

  // ---- Scan expression statements in every body. ----
  for (const SourceFile& file : model.files) {
    const std::vector<Token>& tokens = file.tokens;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition || fn.body_end <= fn.body_begin) continue;
      size_t stmt_begin = fn.body_begin + 1;
      for (size_t i = fn.body_begin + 1; i <= fn.body_end; ++i) {
        const std::string& t = tokens[i].text;
        if (t != ";" && t != "{" && t != "}") continue;
        size_t begin = stmt_begin;
        const size_t end = i;  // Exclusive.
        stmt_begin = i + 1;
        if (t != ";" || begin >= end) continue;
        // `if (...) Foo();` — strip leading control keywords + condition.
        while (begin < end) {
          const std::string& head = tokens[begin].text;
          if (head == "else") {
            ++begin;
            continue;
          }
          if ((head == "if" || head == "while" || head == "for" ||
               head == "switch") &&
              begin + 1 < end && tokens[begin + 1].text == "(") {
            int paren = 0;
            size_t close = begin + 1;
            for (; close < end; ++close) {
              if (tokens[close].text == "(") ++paren;
              if (tokens[close].text == ")" && --paren == 0) break;
            }
            begin = close + 1;
            continue;
          }
          break;
        }
        if (begin >= end) continue;
        if (tokens[begin].kind != Token::Kind::kIdent) continue;
        if (tokens[begin].text == "return" || tokens[begin].text == "co_return")
          continue;
        // The statement must be a bare call chain:
        //   ident (:: ident)* ( args ) [ (. | ->) ident ( args ) ]* ;
        // Anything else (assignment, declaration, arithmetic) disqualifies.
        std::string last_callee;
        size_t last_callee_at = 0;
        size_t p = begin;
        bool bare_call = false;
        // Leading qualified name.
        if (tokens[p].kind != Token::Kind::kIdent) continue;
        std::string head_name = tokens[p].text;
        ++p;
        while (p + 1 < end && tokens[p].text == "::" &&
               tokens[p + 1].kind == Token::Kind::kIdent) {
          head_name = tokens[p + 1].text;
          p += 2;
        }
        while (p < end) {
          if (tokens[p].text == "(") {
            last_callee = head_name;
            last_callee_at = p - 1;
            int paren = 0;
            for (; p < end; ++p) {
              if (tokens[p].text == "(") ++paren;
              if (tokens[p].text == ")" && --paren == 0) break;
            }
            if (p >= end) break;  // Unbalanced: not a statement we judge.
            ++p;
            bare_call = true;
            // Optional `.Next(...)` / `->Next(...)` continuation.
            if (p + 1 < end &&
                (tokens[p].text == "." || tokens[p].text == "->") &&
                tokens[p + 1].kind == Token::Kind::kIdent) {
              head_name = tokens[p + 1].text;
              p += 2;
              bare_call = false;  // Needs its own call to stay bare.
              continue;
            }
            break;
          }
          if ((tokens[p].text == "." || tokens[p].text == "->" ||
               tokens[p].text == "::") &&
              p + 1 < end && tokens[p + 1].kind == Token::Kind::kIdent) {
            head_name = tokens[p + 1].text;
            p += 2;
            continue;
          }
          bare_call = false;
          break;
        }
        if (!bare_call || p < end) continue;  // Trailing tokens: not bare.
        if (last_callee.empty() || returners.count(last_callee) == 0) continue;
        const size_t line = tokens[last_callee_at].line;
        if (file.Suppressed(line, "status-drop")) continue;
        Finding f;
        f.rule = "status-drop";
        f.file = file.rel_path;
        f.line = line;
        const std::string where =
            fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
        f.message = "result of '" + last_callee +
                    "' (returns Status/Result) is dropped in " + where +
                    ": branch on it, return it, or consume it explicitly";
        f.context = where + " drops " + last_callee;
        findings->push_back(f);
      }
    }
  }
}

}  // namespace xicc
