#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/source_model.h"

namespace xicc {

namespace {

/// A lock-acquisition site inside a function body: the qualified lock name
/// and the brace depth at which its RAII guard (or manual Lock) lives.
struct HeldLock {
  std::string name;
  int depth = 0;
  size_t line = 0;
};

/// Last identifier of a type string ("std :: unique_ptr < Shard [ ] >" →
/// "Shard"): the class a member handle points into. Uppercase-initial
/// identifiers win so `unique_ptr` does not shadow `Shard`.
std::string TypeClass(const std::string& type) {
  std::string last_upper;
  std::string last_any;
  std::string word;
  auto flush = [&]() {
    if (word.empty()) return;
    if (std::isupper(static_cast<unsigned char>(word[0])) != 0) {
      last_upper = word;
    }
    last_any = word;
    word.clear();
  };
  for (char c : type) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      word.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return last_upper.empty() ? last_any : last_upper;
}

/// The class that owns a mutex member named `field`, given that the lock
/// expression's base object has class `owner_guess` — confirmed against the
/// model's mutex declarations, falling back to the guess.
std::string QualifyLock(const SourceModel& model, const std::string& owner,
                        const std::string& field) {
  for (const SourceFile& file : model.files) {
    for (const MutexDecl& mutex : file.mutexes) {
      if (mutex.name != field) continue;
      if (mutex.class_name == owner) {
        return owner.empty() ? field : owner + "::" + field;
      }
    }
  }
  // No exact class match: if the field names a unique mutex anywhere, use
  // its declared owner (covers locals aliased through references).
  std::string unique_owner;
  int hits = 0;
  for (const SourceFile& file : model.files) {
    for (const MutexDecl& mutex : file.mutexes) {
      if (mutex.name != field) continue;
      ++hits;
      unique_owner = mutex.class_name;
    }
  }
  if (hits == 1) {
    return unique_owner.empty() ? field : unique_owner + "::" + field;
  }
  return owner.empty() ? field : owner + "::" + field;
}

/// Resolves the class of the identifier `base` used inside `fn` of `file`:
/// function-local declarations, parameters, then members of the enclosing
/// class.
std::string BaseClass(const SourceModel& model, const SourceFile& file,
                      const FunctionInfo& fn, const std::string& base,
                      size_t use_at) {
  const std::vector<Token>& tokens = file.tokens;
  // Local declaration `Type base` (or `Type & base`, `Type * base`) before
  // the use site.
  for (size_t i = fn.body_begin + 1; i + 1 < use_at; ++i) {
    if (tokens[i + 1].text != base) continue;
    const Token& prev = tokens[i];
    size_t type_at = i;
    if (prev.text == "&" || prev.text == "*" || prev.text == ">") {
      while (type_at > fn.body_begin &&
             tokens[type_at].kind != Token::Kind::kIdent) {
        --type_at;
      }
    }
    if (tokens[type_at].kind == Token::Kind::kIdent &&
        std::isupper(static_cast<unsigned char>(tokens[type_at].text[0])) !=
            0) {
      return tokens[type_at].text;
    }
  }
  // Parameter: `... Type [*&] base [,)]` in the signature text.
  {
    const std::string& params = fn.params;
    const std::string needle = " " + base;
    size_t at = params.find(needle);
    while (at != std::string::npos) {
      const size_t after = at + needle.size();
      if (after >= params.size() || params[after] == ' ') {
        // Scan left for the nearest uppercase-initial word.
        std::string left = params.substr(0, at);
        const std::string cls = TypeClass(left);
        if (!cls.empty() &&
            std::isupper(static_cast<unsigned char>(cls[0])) != 0) {
          return cls;
        }
        break;
      }
      at = params.find(needle, at + 1);
    }
  }
  // Member of the enclosing class.
  for (const SourceFile& f : model.files) {
    for (const MemberDecl& member : f.members) {
      if (member.name == base && member.class_name == fn.class_name) {
        return TypeClass(member.type);
      }
    }
  }
  // Unique member of that name anywhere (out-of-line definitions whose class
  // body lives in the header).
  std::string unique_cls;
  int hits = 0;
  for (const SourceFile& f : model.files) {
    for (const MemberDecl& member : f.members) {
      if (member.name != base) continue;
      ++hits;
      unique_cls = TypeClass(member.type);
    }
  }
  if (hits == 1) return unique_cls;
  return fn.class_name;
}

/// Resolves a lock expression (the tokens between `(` and `)` of a MutexLock
/// constructor, or the chain before `.Lock()`) to a qualified lock name.
std::string ResolveLockExpr(const SourceModel& model, const SourceFile& file,
                            const FunctionInfo& fn, size_t begin, size_t end) {
  const std::vector<Token>& tokens = file.tokens;
  // Collect the expression's identifiers at bracket depth zero, dropping
  // index groups (`shards_[self]` → `shards_`).
  std::vector<std::pair<std::string, size_t>> idents;  // (text, token index)
  std::vector<std::string> seps;  // Separator BEFORE idents[k] (k >= 1).
  int bracket = 0;
  std::string pending_sep;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "[" || t == "(") {
      ++bracket;
      continue;
    }
    if (t == "]" || t == ")") {
      --bracket;
      continue;
    }
    if (bracket > 0) continue;
    if (tokens[i].kind == Token::Kind::kIdent) {
      if (!idents.empty()) seps.push_back(pending_sep);
      idents.emplace_back(t, i);
      pending_sep.clear();
    } else if (t == "." || t == "->" || t == "::") {
      pending_sep = t;
    }
  }
  if (idents.empty()) return "";
  const std::string field = idents.back().first;
  if (idents.size() == 1) {
    return QualifyLock(model, fn.class_name, field);
  }
  // `Class::member` spelled explicitly.
  if (seps.back() == "::") {
    return idents[idents.size() - 2].first + "::" + field;
  }
  const std::string& base = idents[idents.size() - 2].first;
  const std::string owner =
      BaseClass(model, file, fn, base, idents[idents.size() - 2].second);
  return QualifyLock(model, owner, field);
}

}  // namespace

void AnalyzeLockOrder(const SourceModel& model, LockGraph* graph,
                      std::vector<Finding>* findings) {
  // ---- Nodes: every declared Mutex. ----
  std::map<std::string, size_t> node_index;
  for (const SourceFile& file : model.files) {
    for (const MutexDecl& mutex : file.mutexes) {
      LockGraph::Node node;
      node.name = mutex.class_name.empty()
                      ? mutex.name
                      : mutex.class_name + "::" + mutex.name;
      node.file = file.rel_path;
      node.line = mutex.line;
      node.leaf = mutex.leaf;
      if (node_index.count(node.name) == 0) {
        node_index[node.name] = graph->nodes.size();
        graph->nodes.push_back(node);
      }
    }
  }

  std::set<std::string> edge_keys;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, size_t line,
                      const std::string& kind) {
    const std::string key = from + "\t" + to;
    if (edge_keys.count(key) > 0) return;
    edge_keys.insert(key);
    graph->edges.push_back({from, to, file, line, kind});
  };

  // ---- Annotation edges: `acquired_after` lists "X comes first". ----
  for (const SourceFile& file : model.files) {
    for (const MutexDecl& mutex : file.mutexes) {
      const std::string self = mutex.class_name.empty()
                                   ? mutex.name
                                   : mutex.class_name + "::" + mutex.name;
      for (const std::string& before : mutex.acquired_after) {
        add_edge(before, self, file.rel_path, mutex.line, "annotation");
      }
    }
  }

  // ---- Nesting edges: MutexLock guards and manual .Lock() calls. ----
  for (const SourceFile& file : model.files) {
    if (file.rel_path == "src/base/thread_annotations.h") {
      continue;  // The primitives themselves, not users of them.
    }
    const std::vector<Token>& tokens = file.tokens;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition || fn.body_end <= fn.body_begin) continue;
      std::vector<HeldLock> held;
      int depth = 0;
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "{") {
          ++depth;
          continue;
        }
        if (t == "}") {
          --depth;
          while (!held.empty() && held.back().depth > depth) {
            held.pop_back();
          }
          continue;
        }
        std::string acquired;
        size_t acquired_line = 0;
        if (t == "MutexLock" && i + 2 < fn.body_end &&
            tokens[i + 1].kind == Token::Kind::kIdent &&
            tokens[i + 2].text == "(") {
          // `MutexLock guard(&expr);`
          size_t close = i + 2;
          int paren = 0;
          for (; close < fn.body_end; ++close) {
            if (tokens[close].text == "(") ++paren;
            if (tokens[close].text == ")" && --paren == 0) break;
          }
          acquired = ResolveLockExpr(model, file, fn, i + 3, close);
          acquired_line = tokens[i].line;
          i = close;
        } else if ((t == "Lock" || t == "Unlock") && i + 1 < fn.body_end &&
                   tokens[i + 1].text == "(" && i > fn.body_begin + 1 &&
                   (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
          // Manual `expr.Lock()` / `expr.Unlock()`: scan the chain left.
          size_t start = i - 1;
          int bracket = 0;
          while (start > fn.body_begin) {
            const std::string& p = tokens[start - 1].text;
            if (p == "]" || p == ")") {
              ++bracket;
              --start;
              continue;
            }
            if (p == "[" || p == "(") {
              if (bracket == 0) break;
              --bracket;
              --start;
              continue;
            }
            if (bracket > 0 || p == "." || p == "->" || p == "::" ||
                tokens[start - 1].kind == Token::Kind::kIdent) {
              --start;
              continue;
            }
            break;
          }
          const std::string name =
              ResolveLockExpr(model, file, fn, start, i - 1);
          if (t == "Unlock") {
            for (size_t h = held.size(); h-- > 0;) {
              if (held[h].name == name) {
                held.erase(held.begin() + static_cast<long>(h));
                break;
              }
            }
            continue;
          }
          acquired = name;
          acquired_line = tokens[i].line;
        }
        if (acquired.empty()) continue;
        if (file.Suppressed(acquired_line, "lock-order")) {
          held.push_back({acquired, depth, acquired_line});
          continue;
        }
        for (const HeldLock& h : held) {
          if (h.name == acquired) {
            Finding f;
            f.rule = "lock-order";
            f.file = file.rel_path;
            f.line = acquired_line;
            f.message = "'" + acquired + "' acquired while already held (" +
                        file.rel_path + ":" + std::to_string(h.line) +
                        "): self-deadlock on a non-reentrant Mutex";
            f.context = fn.name + " self:" + acquired;
            findings->push_back(f);
            continue;
          }
          add_edge(h.name, acquired, file.rel_path, acquired_line, "nesting");
        }
        held.push_back({acquired, depth, acquired_line});
      }
    }
  }

  // Nodes referenced only by edges (locks outside the model, e.g. from
  // fixture snippets) still join the graph so cycles are closed.
  for (const LockGraph::Edge& edge : graph->edges) {
    for (const std::string& name : {edge.from, edge.to}) {
      if (node_index.count(name) == 0) {
        node_index[name] = graph->nodes.size();
        graph->nodes.push_back({name, "", 0, false});
      }
    }
  }

  // ---- Leaf violations: an edge OUT of a lock-leaf lock. ----
  for (const LockGraph::Edge& edge : graph->edges) {
    const LockGraph::Node& from = graph->nodes[node_index[edge.from]];
    if (!from.leaf || edge.kind != "nesting") continue;
    Finding f;
    f.rule = "lock-order";
    f.file = edge.file;
    f.line = edge.line;
    f.message = "'" + edge.to + "' acquired while holding '" + edge.from +
                "', which is annotated lock-leaf (no lock may nest inside "
                "it)";
    f.context = "leaf:" + edge.from + ">" + edge.to;
    findings->push_back(f);
  }

  // ---- Cycle detection (iterative DFS, deterministic order). ----
  std::map<std::string, std::vector<const LockGraph::Edge*>> adj;
  for (const LockGraph::Edge& edge : graph->edges) {
    adj[edge.from].push_back(&edge);
  }
  std::set<std::string> done;
  std::set<std::string> reported_cycles;
  for (const LockGraph::Node& root : graph->nodes) {
    if (done.count(root.name) > 0) continue;
    // Path-based DFS.
    std::vector<std::pair<std::string, size_t>> stack;  // (node, next child)
    std::set<std::string> on_path;
    stack.emplace_back(root.name, 0);
    on_path.insert(root.name);
    while (!stack.empty()) {
      auto& [name, next] = stack.back();
      const std::vector<const LockGraph::Edge*>& out = adj[name];
      if (next >= out.size()) {
        done.insert(name);
        on_path.erase(name);
        stack.pop_back();
        continue;
      }
      const LockGraph::Edge* edge = out[next++];
      if (on_path.count(edge->to) > 0) {
        // Reconstruct the cycle path from the stack.
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto& [n, unused] : stack) {
          if (n == edge->to) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        cycle.push_back(edge->to);
        std::string path;
        for (const std::string& n : cycle) {
          if (!path.empty()) path += " -> ";
          path += n;
        }
        // Canonicalize: report each cycle once regardless of entry point.
        std::vector<std::string> sorted(cycle.begin(), cycle.end() - 1);
        std::sort(sorted.begin(), sorted.end());
        std::string canon;
        for (const std::string& n : sorted) canon += n + "|";
        if (reported_cycles.count(canon) == 0) {
          reported_cycles.insert(canon);
          Finding f;
          f.rule = "lock-order";
          f.file = edge->file.empty() ? "LOCK_ORDER.md" : edge->file;
          f.line = edge->line;
          f.message =
              "lock-order cycle: " + path +
              " — two threads taking these in opposite order deadlock";
          f.context = "cycle:" + canon;
          findings->push_back(f);
        }
        continue;
      }
      if (done.count(edge->to) > 0) continue;
      stack.emplace_back(edge->to, 0);
      on_path.insert(edge->to);
    }
  }

  std::sort(graph->nodes.begin(), graph->nodes.end(),
            [](const LockGraph::Node& a, const LockGraph::Node& b) {
              return a.name < b.name;
            });
  std::sort(graph->edges.begin(), graph->edges.end(),
            [](const LockGraph::Edge& a, const LockGraph::Edge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
}

}  // namespace xicc
