#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/lint_rules.h"
#include "analysis/source_model.h"

namespace xicc {

void AnalyzeIncludeGraph(
    const SourceModel& model,
    std::map<std::string, std::map<std::string, size_t>>* matrix,
    std::vector<Finding>* findings) {
  // ---- Resolve quoted includes to model files; build adjacency. ----
  std::set<std::string> known;
  for (const SourceFile& file : model.files) known.insert(file.rel_path);
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> adj;
  for (const SourceFile& file : model.files) {
    for (const IncludeRef& include : file.includes) {
      if (!include.quoted) continue;
      // Quoted includes are rooted at src/ ("base/arena.h" →
      // "src/base/arena.h"); a same-directory include resolves relative to
      // the including file.
      std::string target = "src/" + include.path;
      if (known.count(target) == 0) {
        const size_t slash = file.rel_path.rfind('/');
        if (slash != std::string::npos) {
          target = file.rel_path.substr(0, slash + 1) + include.path;
        }
      }
      if (known.count(target) == 0) continue;
      adj[file.rel_path].emplace_back(target, include.line);
      const std::string from_dir = file.dir.empty() ? "." : file.dir;
      const std::string to_dir = SourceSrcDir(target);
      (*matrix)[from_dir][to_dir.empty() ? "." : to_dir] += 1;
    }
  }

  // ---- Cycle detection over the file graph (path DFS, deterministic). ----
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const SourceFile& root : model.files) {
    if (done.count(root.rel_path) > 0) continue;
    std::vector<std::pair<std::string, size_t>> stack;  // (file, next edge)
    std::set<std::string> on_path;
    stack.emplace_back(root.rel_path, 0);
    on_path.insert(root.rel_path);
    while (!stack.empty()) {
      auto& [name, next] = stack.back();
      const auto& out = adj[name];
      if (next >= out.size()) {
        done.insert(name);
        on_path.erase(name);
        stack.pop_back();
        continue;
      }
      const auto& [target, line] = out[next++];
      if (on_path.count(target) > 0) {
        std::vector<std::string> cycle;
        bool in_cycle = false;
        for (const auto& [n, unused] : stack) {
          if (n == target) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        cycle.push_back(target);
        std::string path;
        for (const std::string& n : cycle) {
          if (!path.empty()) path += " -> ";
          path += n;
        }
        std::vector<std::string> sorted(cycle.begin(), cycle.end() - 1);
        std::sort(sorted.begin(), sorted.end());
        std::string canon;
        for (const std::string& n : sorted) canon += n + "|";
        if (reported.count(canon) == 0) {
          reported.insert(canon);
          const std::string at_file = cycle.size() >= 2
                                          ? cycle[cycle.size() - 2]
                                          : target;
          const SourceFile* at = model.Find(at_file);
          Finding f;
          f.rule = "include-cycle";
          f.file = at_file;
          f.line = line;
          f.message = "include cycle: " + path +
                      " — break it with a forward declaration or by moving "
                      "the shared piece down a layer";
          f.context = "cycle:" + canon;
          if (at == nullptr || !at->Suppressed(line, "include-cycle")) {
            findings->push_back(f);
          }
        }
        continue;
      }
      if (done.count(target) > 0) continue;
      stack.emplace_back(target, 0);
      on_path.insert(target);
    }
  }
}

}  // namespace xicc
