#pragma once

// The shared source-model pass under xicc_analyze and xicc_lint.
//
// Every analysis in src/analysis/ used to re-read and re-scan the tree per
// rule; this header is the single substrate they now share: one walk of the
// repo, one comment/string digestion, one tokenization, one brace-matched
// block parse per file. The model is deliberately NOT a C++ front end — no
// preprocessing, no name lookup, no templates — it is the checkable fragment
// of the language the repo's style guarantees (one declaration per line,
// RAII locking through MutexLock, Status/Result plumbing by value), exactly
// the paper's move of trading generality for a fragment that can be decided
// mechanically. DESIGN.md §11 documents each consumer's soundness envelope
// on top of this model.
//
// What the model provides per file:
//   - digested lines (comments / string / char literals blanked out of
//     `code`, suppression comments collected),
//   - a token stream with line numbers (preprocessor lines skipped),
//   - quoted / angle includes,
//   - brace-matched function definitions and declarations with enclosing
//     namespace/class scope, return-type text, parameter text, body token
//     ranges, and extracted call sites,
//   - class member declarations (with type text) and, specifically, Mutex
//     members with their lock-order annotations,
//   - `xicc-analyze:` comment annotations by line.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace xicc {

/// One physical line, pre-digested for token rules: `code` has comments,
/// string literals (including raw strings), and char literals blanked out;
/// `raw` is the original text; `allows` the `xicc-lint: allow(...)` rule
/// names present on the line (shared by lint and analyze rules).
struct SourceLine {
  std::string code;
  std::string raw;
  std::set<std::string> allows;
};

/// Splits `content` into digested lines. Preprocessor continuations are NOT
/// special-cased here; the tokenizer skips directive lines itself.
std::vector<SourceLine> DigestLines(const std::string& content);

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  size_t line = 0;  ///< 1-based.
};

struct IncludeRef {
  size_t line = 0;
  std::string path;
  bool quoted = false;  ///< `"..."` (repo-relative) vs `<...>` (system).
};

/// A call site inside a function body: the unqualified callee name (the
/// identifier directly before the '('; `a.b->Foo(x)` records `Foo`).
struct CallSite {
  std::string callee;
  size_t token = 0;  ///< Index of the callee identifier in `tokens`.
  size_t line = 0;
};

struct FunctionInfo {
  std::string name;        ///< Unqualified (`Check`, not `SpecSession::Check`).
  std::string class_name;  ///< Enclosing class/struct, or the `Foo::` scope of
                           ///< an out-of-line definition; "" for free funcs.
  std::string return_type;  ///< Leading declaration tokens joined with ' '
                            ///< ("Result < ConsistencyResult >"); "" for
                            ///< constructors/destructors.
  std::string params;       ///< Parenthesized parameter list text.
  size_t line = 0;          ///< Line of the function name.
  bool is_definition = false;
  /// Token indices of the body's '{' and matching '}' (inclusive);
  /// body_end == 0 for declarations.
  size_t body_begin = 0;
  size_t body_end = 0;
  std::vector<CallSite> calls;  ///< Call sites inside the body (definitions).
};

/// A class/struct member declaration: `std::deque<Task> queue
/// XICC_GUARDED_BY(mu);` records type "std :: deque < Task >", name "queue".
struct MemberDecl {
  std::string class_name;
  std::string type;
  std::string name;
  size_t line = 0;
};

/// A `Mutex foo_;` member (or function-local) with its ordering annotations.
struct MutexDecl {
  std::string class_name;  ///< "" for a function-local mutex.
  std::string name;
  size_t line = 0;
  /// Locks this one may only be acquired AFTER (i.e. they come first in the
  /// global order). Merged from XICC_ACQUIRED_AFTER(...) macro arguments and
  /// `// xicc-analyze: acquired-after(Class::member)` comment annotations.
  std::vector<std::string> acquired_after;
  /// `// xicc-analyze: lock-leaf`: no other lock may be acquired while this
  /// one is held (a terminal node of the lock hierarchy).
  bool leaf = false;
};

struct SourceFile {
  std::string rel_path;  ///< Repo-relative, forward slashes.
  std::string dir;       ///< Top-level src/ subdirectory ("" if outside src/).
  bool is_header = false;
  std::string content;  ///< Raw bytes, kept so fixers can rewrite in place.
  std::vector<SourceLine> lines;
  std::vector<Token> tokens;
  std::vector<IncludeRef> includes;
  std::vector<FunctionInfo> functions;
  std::vector<MemberDecl> members;
  std::vector<MutexDecl> mutexes;
  /// `xicc-analyze: <note>` comment annotations, keyed by 1-based line.
  std::map<size_t, std::vector<std::string>> notes;

  /// True when `rule` is suppressed at `line` (1-based): an allow on the
  /// line itself or on the line directly above (same scope as xicc_lint).
  bool Suppressed(size_t line, const std::string& rule) const;
};

struct SourceModel {
  std::vector<SourceFile> files;

  const SourceFile* Find(const std::string& rel_path) const;
};

/// Top-level directory of a repo-relative "src/..." path, or "" if the file
/// is not under src/.
std::string SourceSrcDir(const std::string& rel_path);

bool SourceIsHeader(const std::string& rel_path);

/// Builds the full per-file model: digestion, tokens, includes, functions,
/// members, mutexes, annotations.
SourceFile BuildSourceFile(const std::string& rel_path,
                           const std::string& content);

/// Builds a model from in-memory (path, content) pairs — the substrate for
/// the synthetic rule fixtures in tests.
SourceModel BuildSourceModelFromContents(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Walks `root`/src for .h/.cc files (sorted, deterministic) and builds the
/// model — the ONE repo walk every rule engine shares. Fails only on I/O
/// errors.
Result<SourceModel> BuildSourceModelFromDisk(const std::string& root);

}  // namespace xicc
