#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_model.h"
#include "base/status.h"

namespace xicc {

/// File-scoped token lint for the repo's soundness invariants — the rules a
/// compiler cannot check but a verdict depends on (see DESIGN.md §6):
///
///   exact-arithmetic   no float/double in src/ilp/ or src/core/ — the
///                      verdict paths must stay in exact BigInt/Rational
///                      arithmetic (one double in a pivot silently breaks
///                      the NP-upper-bound encodings).
///   no-nondeterminism  no rand/srand/random_device/mt19937/system_clock in
///                      src/ilp/ or src/core/: verdicts must be replayable.
///   raw-concurrency    no naked std::mutex / std::thread /
///                      std::condition_variable (or their headers) outside
///                      src/base/ — concurrency goes through the annotated
///                      primitives in base/thread_annotations.h so Clang
///                      thread-safety analysis sees every lock.
///   raw-deserialization  no memcpy-into-struct or reinterpret_cast
///                      decoding outside src/base/serde.{h,cc} — bytes
///                      become structured values only through the
///                      bounds-checked, checksummed serde readers.
///   void-discard       no `(void)Call(...)` swallowing of return values:
///                      Status / Result<T> are [[nodiscard]], and a cast
///                      that mutes the compiler must instead carry an
///                      explicit lint suppression with a reason.
///   pragma-once        headers open with `#pragma once` (fixable: --fix
///                      rewrites a classic #ifndef guard in place).
///   include-layering   quoted includes respect the dependency layering
///                      base ← {xml, ilp, analysis} ← dtd ← constraints ←
///                      {relational, core} ← {workloads, tools}.
///
/// Suppression: a trailing comment `// xicc-lint: allow(rule)` (or
/// `allow(rule-a, rule-b)`) silences those rules on its own line and on the
/// immediately following line, so a standalone comment can cover a long
/// statement. Suppressions are deliberate, greppable exceptions.
///
/// Since the xicc_analyze refactor the rules run over the shared source
/// model (analysis/source_model.h): one digestion and one walk of the repo
/// feeds lint and the semantic engines alike.

struct LintIssue {
  std::string file;  ///< Repo-relative path, forward slashes.
  size_t line = 0;   ///< 1-based.
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" — the tool's diagnostic format.
  std::string ToString() const;
};

struct LintRuleInfo {
  const char* name;
  const char* summary;
  bool fixable;
};

/// Every rule the linter knows, for --list-rules and the tests.
const std::vector<LintRuleInfo>& LintRules();

/// The dependency layering: which src/ directories each directory's quoted
/// includes may name. Shared with the include-graph engine so the pairwise
/// rule and the whole-graph matrix cannot disagree.
const std::map<std::string, std::set<std::string>>& LintLayerMap();

/// Lints one pre-built source-model file.
std::vector<LintIssue> LintSourceFile(const SourceFile& file);

/// Lints one file's contents. `rel_path` (repo-relative, forward slashes)
/// decides which directory-scoped rules apply; files outside src/ only get
/// the path-independent rules.
std::vector<LintIssue> LintFile(const std::string& rel_path,
                                const std::string& content);

/// Applies the mechanical fixes (currently: pragma-once guard rewriting).
/// Returns the fixed content and sets *changed when a rewrite happened.
std::string ApplyLintFixes(const std::string& rel_path,
                           const std::string& content, bool* changed);

struct LintRunReport {
  std::vector<LintIssue> issues;
  size_t files_scanned = 0;
  size_t files_fixed = 0;
};

/// Walks `root`/src via the shared source-model pass and lints each file;
/// with `fix`, rewrites fixable files in place before reporting what
/// remains. Fails only on I/O errors — lint findings are data, not errors.
Result<LintRunReport> RunLint(const std::string& root, bool fix);

}  // namespace xicc
