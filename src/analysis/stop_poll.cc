#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/source_model.h"

namespace xicc {

namespace {

/// Tokens that ARE a cancellation poll when they appear as a call.
const std::set<std::string>& PollIdents() {
  static const std::set<std::string> kPolls = {"ShouldStop", "Cancelled",
                                               "Expired"};
  return kPolls;
}

/// The work anchors: callees that stand for unbounded solver / fan-out work.
/// A loop that transitively reaches one of these must poll. Curated, not
/// inferred — the repo's work entry points are a closed set.
const std::set<std::string>& WorkAnchors() {
  static const std::set<std::string> kAnchors = {
      "SolveIlp",
      "SolveLpFeasibility",
      "ReSolveLpFeasibilityDual",
      "ReSolveLpFeasibilityDualInPlace",
      "CheckConsistency",
      "CheckImplication",
      "CheckDelta",
      "CheckUncached",
      "Explore",
      "RunChunk",
      "CompileDtd",
      "GetOrCompile",
      "Check",
      "Implies",
      "Pivot",
      // src/net: admitting a frame to the worker pool and executing a
      // request are the daemon's fan-out points; every I/O-thread loop that
      // can reach them must observe cancellation (the Dispatch admission
      // path polls the connection's token, so loops calling it inherit the
      // poll).
      "Dispatch",
      "HandleRequest",
      // The fault-injection probes are placed exactly at the unbounded hot
      // sites (pivot iterations, branch-and-bound nodes); a loop that does
      // its work inline — like the simplex pivot loops — calls no solver
      // entry point, but it does carry a probe. Both harnesses mark the
      // same places, so the probe doubles as a work marker here.
      "XICC_FAULT_PROBE",
  };
  return kAnchors;
}

/// A loop annotated `// xicc-analyze: work-loop` (on its own line or the
/// line above) is treated as reaching work regardless of what it calls —
/// the escape hatch for inline-work loops with no probe and no anchor call.
bool WorkLoopAnnotated(const SourceFile& file, size_t line) {
  for (size_t l = (line > 1 ? line - 1 : line); l <= line; ++l) {
    if (l == 0 || l > file.lines.size()) continue;
    if (file.lines[l - 1].raw.find("xicc-analyze: work-loop") !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Statements a loop may run before its first poll. Purely syntactic: the
/// number of ';' tokens between the loop body's '{' and the first poll site.
constexpr size_t kPollWindow = 64;

bool InScope(const SourceFile& file) {
  return file.dir == "ilp" || file.dir == "core" || file.dir == "net";
}

struct LoopSite {
  size_t begin = 0;  ///< Token index of the body '{' (or first stmt token).
  size_t end = 0;    ///< Token index one past the body.
  size_t line = 0;   ///< Line of the loop keyword.
};

/// Finds for/while/do loops in a function body; loops whose body is a single
/// unbraced statement are covered too (body = up to the ';').
std::vector<LoopSite> FindLoops(const SourceFile& file,
                                const FunctionInfo& fn) {
  std::vector<LoopSite> loops;
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const std::string& t = tokens[i].text;
    size_t body_at = 0;
    if ((t == "for" || t == "while") && i + 1 < fn.body_end &&
        tokens[i + 1].text == "(") {
      // `while (...)` after a do-body is the do-loop's tail; the do branch
      // below already covered that body, and a tail `while (...) ;` has an
      // empty body, so skipping it here is harmless either way.
      if (i > fn.body_begin + 1 && tokens[i - 1].text == "}" && t == "while") {
        // Heuristic: genuine `} while (...)` tails end with ';'.
        int paren = 0;
        size_t close = i + 1;
        for (; close < fn.body_end; ++close) {
          if (tokens[close].text == "(") ++paren;
          if (tokens[close].text == ")" && --paren == 0) break;
        }
        if (close + 1 < fn.body_end && tokens[close + 1].text == ";") {
          continue;
        }
      }
      int paren = 0;
      size_t close = i + 1;
      for (; close < fn.body_end; ++close) {
        if (tokens[close].text == "(") ++paren;
        if (tokens[close].text == ")" && --paren == 0) break;
      }
      body_at = close + 1;
    } else if (t == "do" && i + 1 < fn.body_end &&
               tokens[i + 1].text == "{") {
      body_at = i + 1;
    } else {
      continue;
    }
    if (body_at >= fn.body_end) continue;
    LoopSite loop;
    loop.line = tokens[i].line;
    if (tokens[body_at].text == "{") {
      int brace = 0;
      size_t close = body_at;
      for (; close < fn.body_end; ++close) {
        if (tokens[close].text == "{") ++brace;
        if (tokens[close].text == "}" && --brace == 0) break;
      }
      loop.begin = body_at;
      loop.end = close + 1;
    } else {
      size_t close = body_at;
      while (close < fn.body_end && tokens[close].text != ";") ++close;
      loop.begin = body_at;
      loop.end = close + 1;
    }
    loops.push_back(loop);
  }
  return loops;
}

}  // namespace

void AnalyzeStopPoll(const SourceModel& model,
                     std::vector<Finding>* findings) {
  // ---- Pass 1: which function NAMES poll, which reach work anchors. ----
  // Matching is by unqualified callee name — an over-approximation in both
  // directions that DESIGN.md §11 spells out.
  std::set<std::string> polling;   // Function names that (transitively) poll.
  std::set<std::string> reaching;  // Function names that reach an anchor.
  std::map<std::string, std::set<std::string>> callees_of;
  for (const SourceFile& file : model.files) {
    if (!InScope(file)) continue;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition) continue;
      std::set<std::string>& callees = callees_of[fn.name];
      for (const CallSite& call : fn.calls) {
        callees.insert(call.callee);
        if (PollIdents().count(call.callee) > 0) polling.insert(fn.name);
        if (WorkAnchors().count(call.callee) > 0) reaching.insert(fn.name);
      }
    }
  }
  // Transitive closure, bounded depth (call chains deeper than this are
  // outside the checkable fragment).
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (const auto& [name, callees] : callees_of) {
      for (const std::string& callee : callees) {
        if (polling.count(callee) > 0 && polling.insert(name).second) {
          changed = true;
        }
        if (reaching.count(callee) > 0 && reaching.insert(name).second) {
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // ---- Pass 2: every work loop must poll within the window. ----
  for (const SourceFile& file : model.files) {
    if (!InScope(file)) continue;
    const std::vector<Token>& tokens = file.tokens;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition) continue;
      for (const LoopSite& loop : FindLoops(file, fn)) {
        // Does the loop body reach work?
        bool reaches_work = WorkLoopAnnotated(file, loop.line);
        for (size_t i = loop.begin; i < loop.end; ++i) {
          if (tokens[i].kind != Token::Kind::kIdent) continue;
          if (i + 1 >= loop.end || tokens[i + 1].text != "(") continue;
          if (WorkAnchors().count(tokens[i].text) > 0 ||
              reaching.count(tokens[i].text) > 0) {
            reaches_work = true;
            break;
          }
        }
        if (!reaches_work) continue;
        // Find the first poll: a direct poll call or a call into a polling
        // function. Count statements up to it.
        size_t statements_before = 0;
        bool polled = false;
        bool within_window = false;
        for (size_t i = loop.begin; i < loop.end; ++i) {
          const std::string& t = tokens[i].text;
          if (t == ";") {
            ++statements_before;
            continue;
          }
          if (tokens[i].kind != Token::Kind::kIdent) continue;
          const bool is_call = i + 1 < loop.end && tokens[i + 1].text == "(";
          if (!is_call) continue;
          if (PollIdents().count(t) > 0 || polling.count(t) > 0) {
            polled = true;
            within_window = statements_before <= kPollWindow;
            break;
          }
        }
        if (polled && within_window) continue;
        if (file.Suppressed(loop.line, "stop-poll")) continue;
        Finding f;
        f.rule = "stop-poll";
        f.file = file.rel_path;
        f.line = loop.line;
        const std::string where =
            fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
        if (!polled) {
          f.message = "loop in " + where +
                      " reaches solver/fan-out work but never polls the "
                      "StopSignal (ShouldStop/Cancelled): cancellation and "
                      "deadlines cannot reach it";
          f.context = where + " loop-no-poll";
        } else {
          f.message = "loop in " + where + " runs " +
                      std::to_string(statements_before) +
                      " statements before its first StopSignal poll "
                      "(window: " +
                      std::to_string(kPollWindow) +
                      "): move the poll to the top of the body";
          f.context = where + " loop-late-poll";
        }
        findings->push_back(f);
      }
    }
  }
}

}  // namespace xicc
