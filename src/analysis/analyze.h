#pragma once

// xicc_analyze — the semantic analysis engines over the shared source model.
//
// Where xicc_lint checks single lines, these engines check properties that
// only exist across statements, functions, and files:
//
//   lock-order       global lock-acquisition graph from MutexLock nesting
//                    plus ACQUIRED_AFTER / `xicc-analyze:` annotations;
//                    cycles, self-nesting, and leaf violations are findings,
//                    and the inferred hierarchy is emitted as LOCK_ORDER.md.
//   stop-poll        every loop in src/ilp + src/core whose body transitively
//                    reaches solver/fan-out work must poll the cancellation
//                    plumbing (ShouldStop / Cancelled) within a bounded
//                    statement window.
//   status-drop      a bare `Foo(...);` statement whose callee returns
//                    Status/Result drops the error — the dataflow cousin of
//                    [[nodiscard]], catching macro and chain contexts.
//   arena-escape     ArenaVector locals / arena-backed pointers stored into
//                    members or out-params, or returned past the ArenaScope
//                    that owns their memory.
//   include-cycle    full include graph over src/: cycles are findings and
//                    the directory-level edge matrix feeds the JSON report.
//
// Suppression reuses the lint mechanism: `// xicc-lint: allow(rule)` on the
// finding's line or the line above. Each engine's soundness envelope — what
// it can and cannot see on top of the non-preprocessing source model — is
// documented in DESIGN.md §11.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lint_rules.h"
#include "analysis/source_model.h"
#include "base/status.h"

namespace xicc {

/// One analyzer finding. `context` is the line-number-independent part of
/// the identity (function, lock pair, cycle path, ...) so baselines survive
/// unrelated edits.
struct Finding {
  std::string rule;
  std::string file;
  size_t line = 0;
  std::string message;
  std::string context;

  /// Line-independent identity used for baseline matching.
  std::string Key() const;
  /// "file:line: [rule] message" — same diagnostic shape as the lint.
  std::string ToString() const;
};

/// The global lock-acquisition graph.
struct LockGraph {
  struct Node {
    std::string name;  ///< Qualified "Class::member" (or bare member).
    std::string file;
    size_t line = 0;
    bool leaf = false;  ///< Annotated `lock-leaf`.
  };
  /// `from` is acquired (or annotated) BEFORE `to`.
  struct Edge {
    std::string from;
    std::string to;
    std::string file;  ///< Evidence site ("" for pure annotations).
    size_t line = 0;
    std::string kind;  ///< "nesting" or "annotation".
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;
};

struct AnalysisReport {
  std::vector<Finding> findings;  ///< All engines + lint, sorted.
  LockGraph lock_graph;
  /// Directory-level include edge counts: matrix[from][to] = #includes.
  std::map<std::string, std::map<std::string, size_t>> include_matrix;
  size_t files_scanned = 0;
};

/// The semantic rules (the lint rules are listed by LintRules()).
const std::vector<LintRuleInfo>& AnalyzeRules();

/// ---- Individual engines (exposed for the fixture tests). ----
void AnalyzeLockOrder(const SourceModel& model, LockGraph* graph,
                      std::vector<Finding>* findings);
void AnalyzeStopPoll(const SourceModel& model, std::vector<Finding>* findings);
void AnalyzeStatusFlow(const SourceModel& model,
                       std::vector<Finding>* findings);
void AnalyzeArenaEscape(const SourceModel& model,
                        std::vector<Finding>* findings);
void AnalyzeIncludeGraph(
    const SourceModel& model,
    std::map<std::string, std::map<std::string, size_t>>* matrix,
    std::vector<Finding>* findings);

/// Runs every engine plus the migrated lint rules over one model; findings
/// come back sorted by (file, line, rule).
AnalysisReport AnalyzeModel(const SourceModel& model);

/// Renders the inferred lock hierarchy as the committed LOCK_ORDER.md.
std::string RenderLockOrderMd(const LockGraph& graph);

/// Machine-readable report. `new_keys` marks which findings are new vs. the
/// baseline (empty set = everything is new / no baseline given).
std::string RenderFindingsJson(const AnalysisReport& report,
                               const std::set<std::string>& baseline);

/// Baseline files are sorted `rule|file|context` lines; '#' starts a
/// comment.
std::set<std::string> ParseBaseline(const std::string& content);
std::string RenderBaseline(const std::vector<Finding>& findings);

/// Findings whose Key() is not covered by `baseline`.
std::vector<Finding> NewFindings(const std::vector<Finding>& findings,
                                 const std::set<std::string>& baseline);

struct AnalyzeRunReport {
  AnalysisReport analysis;
  /// True when LOCK_ORDER.md on disk matched the rendered hierarchy (always
  /// true after --fix rewrote it).
  bool lock_order_fresh = true;
};

/// Builds the model from `root`, runs AnalyzeModel, and checks the committed
/// LOCK_ORDER.md against the inferred hierarchy (stale ⇒ a lock-order-stale
/// finding). With `fix`, applies the mechanical lint fixes and rewrites
/// LOCK_ORDER.md in place instead.
Result<AnalyzeRunReport> AnalyzeRepo(const std::string& root, bool fix);

}  // namespace xicc
