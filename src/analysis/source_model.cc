#include "analysis/source_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xicc {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Collects every `xicc-lint: allow(a, b)` rule name on the line.
void CollectAllows(SourceLine* line) {
  const std::string tag = "xicc-lint: allow(";
  size_t at = line->raw.find(tag);
  while (at != std::string::npos) {
    const size_t open = at + tag.size();
    const size_t close = line->raw.find(')', open);
    if (close == std::string::npos) break;
    std::string name;
    for (size_t i = open; i <= close; ++i) {
      const char c = line->raw[i];
      if (c == ',' || c == ')') {
        const size_t first = name.find_first_not_of(' ');
        const size_t last = name.find_last_not_of(' ');
        if (first != std::string::npos) {
          line->allows.insert(name.substr(first, last - first + 1));
        }
        name.clear();
      } else {
        name.push_back(c);
      }
    }
    at = line->raw.find(tag, close);
  }
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",       "switch",      "return",
      "sizeof",   "alignof",  "catch",       "do",          "else",
      "case",     "default",  "new",         "delete",      "throw",
      "co_await", "co_return"};
  return kKeywords;
}

const std::set<std::string>& DeclSpecifiers() {
  static const std::set<std::string> kSpecs = {
      "static",   "inline",   "virtual", "explicit", "constexpr",
      "friend",   "mutable",  "extern",  "typename", "const",
      "volatile", "register", "thread_local"};
  return kSpecs;
}

/// Joins tokens with single spaces, except that '::', '<', '>', '*', '&'
/// attach tightly enough to read ("Result < T >" stays readable as-is; we
/// keep the simple space join — consumers match on token membership, and
/// tests pin the rendering).
std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i].text;
  }
  return out;
}

/// Extracts `xicc-analyze: <note>` comment annotations from a raw line.
void CollectNotes(const std::string& raw, size_t line_no,
                  std::map<size_t, std::vector<std::string>>* notes) {
  const std::string tag = "xicc-analyze:";
  size_t at = raw.find(tag);
  while (at != std::string::npos) {
    size_t start = at + tag.size();
    while (start < raw.size() && raw[start] == ' ') ++start;
    // A note runs to the end of the comment text; balanced parens keep
    // `acquired-after(Foo::mu_)` intact.
    size_t end = raw.size();
    std::string note = raw.substr(start, end - start);
    while (!note.empty() && (note.back() == ' ' || note.back() == '\r')) {
      note.pop_back();
    }
    if (!note.empty()) (*notes)[line_no].push_back(note);
    at = raw.find(tag, start);
  }
}

/// The file-scope parser state: a stack of brace scopes.
struct ScopeFrame {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  /// Index into SourceFile::functions for kFunction frames.
  size_t function_index = 0;
  /// Statement accumulator for kClass/kNamespace frames: token indices since
  /// the last statement boundary at this scope's depth. Nested brace groups
  /// collapse to a single "{}" placeholder so member declarations with brace
  /// initializers survive.
  std::vector<size_t> stmt;
};

/// Index of the token after the group that closes the `(`/`<`/`{`/`[` at
/// `open` (or `end` if unmatched). Angle brackets nest naively — good enough
/// for declaration text, never used across comparison operators because
/// consumers only pass '<' from template-looking contexts.
size_t SkipGroup(const std::vector<Token>& tokens, size_t open, size_t end) {
  const std::string& open_text = tokens[open].text;
  std::string close_text;
  if (open_text == "(") close_text = ")";
  else if (open_text == "<") close_text = ">";
  else if (open_text == "{") close_text = "}";
  else if (open_text == "[") close_text = "]";
  else return open + 1;
  size_t depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (tokens[i].text == open_text) ++depth;
    if (tokens[i].text == close_text) {
      if (--depth == 0) return i + 1;
    }
  }
  return end;
}

bool IsXiccMacro(const std::string& text) {
  return text.compare(0, 5, "XICC_") == 0;
}

/// True when the statement `stmt` (token indices into `tokens`) declares or
/// defines a function: it contains a parameter-list `(...)` directly after
/// an identifier, and after the matching `)` only signature-suffix tokens
/// remain. `paren_at` receives the index WITHIN STMT of the '('.
bool LooksLikeFunctionSignature(const std::vector<Token>& tokens,
                                const std::vector<size_t>& stmt,
                                size_t* name_in_stmt, size_t* paren_in_stmt) {
  if (stmt.size() < 3) return false;
  const std::string& first = tokens[stmt[0]].text;
  if (Keywords().count(first) > 0 || first == "using" || first == "typedef" ||
      first == "namespace" || first == "public" || first == "private" ||
      first == "protected" || first == "static_assert" || first == "enum") {
    return false;
  }
  // Find the first '(' preceded by a non-keyword identifier that is not an
  // XICC_ attribute macro (those wrap the DECLARATION, not the name).
  for (size_t k = 1; k < stmt.size(); ++k) {
    if (tokens[stmt[k]].text != "(") continue;
    const Token& prev = tokens[stmt[k - 1]];
    if (prev.kind != Token::Kind::kIdent) return false;
    if (Keywords().count(prev.text) > 0) return false;
    if (IsXiccMacro(prev.text)) {
      // Skip the macro's argument group and keep scanning.
      size_t close = k;
      size_t depth = 0;
      for (; close < stmt.size(); ++close) {
        if (tokens[stmt[close]].text == "(") ++depth;
        if (tokens[stmt[close]].text == ")" && --depth == 0) break;
      }
      k = close;
      continue;
    }
    // `std::function<void()> fn;`-shaped members: the '(' sits inside a
    // template argument list, so an unmatched '<' is open at this point.
    int angle = 0;
    for (size_t j = 0; j < k; ++j) {
      if (tokens[stmt[j]].text == "<") ++angle;
      if (tokens[stmt[j]].text == ">") --angle;
    }
    if (angle > 0) return false;
    *name_in_stmt = k - 1;
    *paren_in_stmt = k;
    return true;
  }
  return false;
}

}  // namespace

std::vector<SourceLine> DigestLines(const std::string& content) {
  std::vector<SourceLine> lines(1);
  enum class State { kCode, kLineComment, kBlockComment, kQuote, kRawString };
  State state = State::kCode;
  char quote = 0;
  bool escaped = false;
  std::string raw_terminator;  // ")delim\"" of the active raw string.
  size_t block_open_at = 0;    // Index of the '/' that opened the comment.
  const size_t n = content.size();

  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      CollectAllows(&lines.back());
      // Line comments and (unterminated) ordinary literals end at newline;
      // block comments and raw strings continue.
      if (state == State::kLineComment || state == State::kQuote) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    SourceLine& cur = lines.back();
    cur.raw.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          cur.code.push_back(' ');
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          block_open_at = i;
          cur.code.push_back(' ');
        } else if (c == '\'' && i > 0 &&
                   std::isdigit(static_cast<unsigned char>(content[i - 1]))) {
          cur.code.push_back(c);  // Digit separator, not a char literal.
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // R"delim( ... )delim" — find the delimiter.
          size_t open = content.find('(', i + 1);
          raw_terminator =
              ")" + content.substr(i + 1, open == std::string::npos
                                              ? 0
                                              : open - i - 1) +
              "\"";
          state = State::kRawString;
          cur.code.push_back('"');
        } else if (c == '"' || c == '\'') {
          state = State::kQuote;
          quote = c;
          escaped = false;
          cur.code.push_back(c);
        } else {
          cur.code.push_back(c);
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        cur.code.push_back(' ');
        if (state == State::kBlockComment && c == '/' && i > 0 &&
            content[i - 1] == '*' && i >= block_open_at + 3) {
          state = State::kCode;
        }
        break;
      case State::kQuote:
        if (escaped) {
          escaped = false;
          cur.code.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          cur.code.push_back(' ');
        } else if (c == quote) {
          state = State::kCode;
          cur.code.push_back(quote);
        } else {
          cur.code.push_back(' ');
        }
        break;
      case State::kRawString:
        cur.code.push_back(' ');
        if (c == '"' &&
            i + 1 >= raw_terminator.size() &&
            content.compare(i + 1 - raw_terminator.size(),
                            raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
        }
        break;
    }
  }
  CollectAllows(&lines.back());
  return lines;
}

bool SourceFile::Suppressed(size_t line, const std::string& rule) const {
  if (line == 0 || line > lines.size()) return false;
  if (lines[line - 1].allows.count(rule) > 0) return true;
  return line >= 2 && lines[line - 2].allows.count(rule) > 0;
}

const SourceFile* SourceModel::Find(const std::string& rel_path) const {
  for (const SourceFile& file : files) {
    if (file.rel_path == rel_path) return &file;
  }
  return nullptr;
}

std::string SourceSrcDir(const std::string& rel_path) {
  const std::string prefix = "src/";
  if (rel_path.compare(0, prefix.size(), prefix) != 0) return "";
  size_t slash = rel_path.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  return rel_path.substr(prefix.size(), slash - prefix.size());
}

bool SourceIsHeader(const std::string& rel_path) {
  return rel_path.size() > 2 &&
         rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

SourceFile BuildSourceFile(const std::string& rel_path,
                           const std::string& content) {
  SourceFile file;
  file.rel_path = rel_path;
  file.dir = SourceSrcDir(rel_path);
  file.is_header = SourceIsHeader(rel_path);
  file.content = content;
  file.lines = DigestLines(content);

  // ---- Includes and comment annotations (from raw lines). ----
  for (size_t k = 0; k < file.lines.size(); ++k) {
    const std::string& raw = file.lines[k].raw;
    CollectNotes(raw, k + 1, &file.notes);
    size_t hash = raw.find_first_not_of(" \t");
    if (hash == std::string::npos || raw[hash] != '#') continue;
    size_t inc = raw.find("include", hash);
    if (inc == std::string::npos) continue;
    size_t open = raw.find_first_of("\"<", inc + 7);
    if (open == std::string::npos) continue;
    const char close_char = raw[open] == '"' ? '"' : '>';
    size_t close = raw.find(close_char, open + 1);
    if (close == std::string::npos) continue;
    IncludeRef ref;
    ref.line = k + 1;
    ref.path = raw.substr(open + 1, close - open - 1);
    ref.quoted = raw[open] == '"';
    file.includes.push_back(ref);
  }

  // ---- Tokenization (preprocessor lines and their continuations skipped,
  // so multi-line macro definitions never unbalance the brace matching). ----
  bool in_directive = false;
  for (size_t k = 0; k < file.lines.size(); ++k) {
    const std::string& code = file.lines[k].code;
    const std::string& raw = file.lines[k].raw;
    const bool continued = !raw.empty() && raw.back() == '\\';
    if (in_directive) {
      in_directive = continued;
      continue;
    }
    const size_t first = code.find_first_not_of(" \t");
    if (first != std::string::npos && code[first] == '#') {
      in_directive = continued;
      continue;
    }
    for (size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (c == ' ' || c == '\t' || c == '"' || c == '\'' || c == '\\') {
        ++i;
        continue;
      }
      Token token;
      token.line = k + 1;
      if (IsIdentStart(c)) {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        token.kind = Token::Kind::kIdent;
        token.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        size_t j = i;
        while (j < code.size() && (IsIdentChar(code[j]) || code[j] == '.' ||
                                   code[j] == '\'')) {
          ++j;
        }
        token.kind = Token::Kind::kNumber;
        token.text = code.substr(i, j - i);
        i = j;
      } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        token.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        token.text = "->";
        i += 2;
      } else {
        token.text = std::string(1, c);
        ++i;
      }
      file.tokens.push_back(std::move(token));
    }
  }

  // ---- Scope / function / member parse. ----
  const std::vector<Token>& tokens = file.tokens;
  std::vector<ScopeFrame> scopes;
  std::vector<size_t> stmt;  // Token indices since the last boundary.

  auto enclosing_class = [&]() -> std::string {
    for (size_t s = scopes.size(); s-- > 0;) {
      if (scopes[s].kind == ScopeFrame::Kind::kClass) return scopes[s].name;
    }
    return "";
  };
  auto at_decl_scope = [&]() {
    return scopes.empty() || scopes.back().kind == ScopeFrame::Kind::kClass ||
           scopes.back().kind == ScopeFrame::Kind::kNamespace;
  };

  /// Parses `stmt` as a member / local declaration and records Mutex decls
  /// (and, in class scope, general members for type resolution).
  auto record_declaration = [&](const std::vector<size_t>& s, bool in_class) {
    if (s.empty()) return;
    const std::string& first = tokens[s[0]].text;
    if (Keywords().count(first) > 0 || first == "using" ||
        first == "typedef" || first == "friend" || first == "template" ||
        first == "static_assert" || first == "public" || first == "private" ||
        first == "protected" || first == "enum" || first == "class" ||
        first == "struct" || first == "namespace") {
      return;
    }
    // Strip trailing XICC_* macro groups, brace-init placeholders, and
    // `= ...` initializers to expose the declared name.
    size_t end = s.size();
    for (;;) {
      if (end == 0) return;
      const std::string& t = tokens[s[end - 1]].text;
      if (t == "}" || t == "{") {  // Collapsed nested group.
        --end;
        continue;
      }
      if (t == ")") {
        // Scan back to the matching '('; if the group is an XICC_* macro,
        // drop it, otherwise this is a paren-init or function — stop.
        size_t depth = 0;
        size_t open = end;
        for (size_t j = end; j-- > 0;) {
          if (tokens[s[j]].text == ")") ++depth;
          if (tokens[s[j]].text == "(" && --depth == 0) {
            open = j;
            break;
          }
        }
        if (open > 0 && IsXiccMacro(tokens[s[open - 1]].text)) {
          end = open - 1;
          continue;
        }
        return;  // Paren-initialized declaration or function-ish: skip.
      }
      break;
    }
    // Drop an `= init` tail (e.g. `uint64_t clock = 0`).
    for (size_t j = 0; j < end; ++j) {
      if (tokens[s[j]].text == "=") {
        end = j;
        break;
      }
    }
    if (end < 2) return;
    const Token& name_tok = tokens[s[end - 1]];
    if (name_tok.kind != Token::Kind::kIdent) return;
    std::string type = JoinTokens(tokens, 0, 0);
    {
      std::vector<Token> type_tokens;
      for (size_t j = 0; j + 1 < end; ++j) type_tokens.push_back(tokens[s[j]]);
      std::string joined;
      for (const Token& t : type_tokens) {
        if (!joined.empty()) joined += ' ';
        joined += t.text;
      }
      type = joined;
    }
    const std::string class_name = in_class ? enclosing_class() : "";
    if (in_class) {
      MemberDecl member;
      member.class_name = class_name;
      member.type = type;
      member.name = name_tok.text;
      member.line = name_tok.line;
      file.members.push_back(member);
    }
    // A lock declaration: type is exactly `Mutex` (modulo `mutable`), never
    // a pointer/reference (those are handles to someone else's lock).
    std::vector<std::string> type_words;
    {
      std::istringstream in(type);
      std::string w;
      while (in >> w) {
        if (w != "mutable" && w != "const") type_words.push_back(w);
      }
    }
    if (type_words.size() == 1 && type_words[0] == "Mutex") {
      MutexDecl mutex;
      mutex.class_name = class_name;
      mutex.name = name_tok.text;
      mutex.line = name_tok.line;
      // Macro annotations on the declaration statement.
      for (size_t j = 0; j + 1 < s.size(); ++j) {
        if (tokens[s[j]].text != "XICC_ACQUIRED_AFTER" ||
            tokens[s[j + 1]].text != "(") {
          continue;
        }
        size_t depth = 0;
        std::string arg;
        for (size_t j2 = j + 1; j2 < s.size(); ++j2) {
          const std::string& t = tokens[s[j2]].text;
          if (t == "(") {
            if (depth++ == 0) continue;
          }
          if (t == ")" && --depth == 0) {
            if (!arg.empty()) mutex.acquired_after.push_back(arg);
            break;
          }
          if (t == "," && depth == 1) {
            if (!arg.empty()) mutex.acquired_after.push_back(arg);
            arg.clear();
            continue;
          }
          arg += t;
        }
      }
      // Comment annotations on the declaration line or the line above.
      for (size_t line = mutex.line >= 1 ? mutex.line - 1 : 0;
           line <= mutex.line; ++line) {
        auto it = file.notes.find(line);
        if (it == file.notes.end()) continue;
        for (const std::string& note : it->second) {
          const std::string after_tag = "acquired-after(";
          if (note.compare(0, after_tag.size(), after_tag) == 0) {
            size_t close = note.find(')', after_tag.size());
            if (close != std::string::npos) {
              std::string arg =
                  note.substr(after_tag.size(), close - after_tag.size());
              std::string tight;
              for (char c : arg) {
                if (c != ' ') tight.push_back(c);
              }
              if (!tight.empty()) mutex.acquired_after.push_back(tight);
            }
          } else if (note.compare(0, 9, "lock-leaf") == 0) {
            mutex.leaf = true;
          }
        }
      }
      file.mutexes.push_back(std::move(mutex));
    }
  };

  /// Emits a FunctionInfo from a signature statement. `paren_in_stmt` is the
  /// parameter-list '('; `definition` says a body follows.
  auto record_function = [&](const std::vector<size_t>& s, size_t name_in_stmt,
                             size_t paren_in_stmt, bool definition) {
    FunctionInfo fn;
    const Token& name_tok = tokens[s[name_in_stmt]];
    fn.name = name_tok.text;
    fn.line = name_tok.line;
    fn.is_definition = definition;
    // Qualified out-of-line definitions: `Class :: Name (` — collect the
    // chain left of the name.
    size_t type_end = name_in_stmt;
    if (name_in_stmt >= 2 && tokens[s[name_in_stmt - 1]].text == "::" &&
        tokens[s[name_in_stmt - 2]].kind == Token::Kind::kIdent) {
      size_t q = name_in_stmt;
      std::vector<std::string> chain;
      while (q >= 2 && tokens[s[q - 1]].text == "::" &&
             tokens[s[q - 2]].kind == Token::Kind::kIdent) {
        chain.push_back(tokens[s[q - 2]].text);
        q -= 2;
      }
      fn.class_name = chain.empty() ? "" : chain.front();
      // Innermost scope left of the name is the class (chain is collected
      // right-to-left, so front() is the token nearest the name).
      type_end = q;
    } else {
      fn.class_name = enclosing_class();
    }
    // Return type: leading declaration tokens minus specifiers.
    size_t type_begin = 0;
    while (type_begin < type_end &&
           DeclSpecifiers().count(tokens[s[type_begin]].text) > 0 &&
           tokens[s[type_begin]].text != "const") {
      ++type_begin;
    }
    {
      std::string joined;
      for (size_t j = type_begin; j < type_end; ++j) {
        if (!joined.empty()) joined += ' ';
        joined += tokens[s[j]].text;
      }
      fn.return_type = joined;
    }
    // Parameter list text.
    {
      size_t depth = 0;
      std::string joined;
      for (size_t j = paren_in_stmt; j < s.size(); ++j) {
        const std::string& t = tokens[s[j]].text;
        if (t == "(") ++depth;
        if (depth > 0) {
          if (!joined.empty()) joined += ' ';
          joined += t;
        }
        if (t == ")" && --depth == 0) break;
      }
      fn.params = joined;
    }
    file.functions.push_back(std::move(fn));
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& text = tokens[i].text;
    if (text == "{") {
      // Decide what scope this brace opens from the pending statement.
      ScopeFrame frame;
      frame.kind = ScopeFrame::Kind::kBlock;
      if (!stmt.empty() && at_decl_scope()) {
        const std::string& first = tokens[stmt[0]].text;
        bool handled = false;
        if (first == "namespace") {
          frame.kind = ScopeFrame::Kind::kNamespace;
          for (size_t j = 1; j < stmt.size(); ++j) {
            if (tokens[stmt[j]].kind == Token::Kind::kIdent) {
              frame.name = tokens[stmt[j]].text;
            }
          }
          handled = true;
        }
        if (!handled) {
          // `class X {` / `struct X : Base {` — but not `enum class X {`.
          for (size_t j = 0; j < stmt.size() && !handled; ++j) {
            const std::string& t = tokens[stmt[j]].text;
            if (t == "enum") break;
            if (t != "class" && t != "struct" && t != "union") continue;
            frame.kind = ScopeFrame::Kind::kClass;
            for (size_t k2 = j + 1; k2 < stmt.size(); ++k2) {
              const Token& cand = tokens[stmt[k2]];
              if (cand.text == ":") break;
              if (cand.kind == Token::Kind::kIdent) {
                if (cand.text == "final") continue;
                if (k2 + 1 < stmt.size() && tokens[stmt[k2 + 1]].text == "(") {
                  // Attribute macro: skip its group.
                  size_t depth = 0;
                  size_t j2 = k2 + 1;
                  for (; j2 < stmt.size(); ++j2) {
                    if (tokens[stmt[j2]].text == "(") ++depth;
                    if (tokens[stmt[j2]].text == ")" && --depth == 0) break;
                  }
                  k2 = j2;
                  continue;
                }
                frame.name = cand.text;
              }
            }
            handled = true;
          }
        }
        if (!handled) {
          size_t name_in_stmt = 0;
          size_t paren_in_stmt = 0;
          if (LooksLikeFunctionSignature(tokens, stmt, &name_in_stmt,
                                         &paren_in_stmt)) {
            record_function(stmt, name_in_stmt, paren_in_stmt,
                            /*definition=*/true);
            frame.kind = ScopeFrame::Kind::kFunction;
            frame.function_index = file.functions.size() - 1;
            file.functions.back().body_begin = i;
          }
        }
      }
      scopes.push_back(std::move(frame));
      stmt.clear();
      continue;
    }
    if (text == "}") {
      if (!scopes.empty()) {
        if (scopes.back().kind == ScopeFrame::Kind::kFunction) {
          file.functions[scopes.back().function_index].body_end = i;
        }
        const bool was_block = scopes.back().kind == ScopeFrame::Kind::kBlock;
        scopes.pop_back();
        if (was_block && at_decl_scope()) {
          // Collapse the nested group so `std::atomic<bool> x{false};`
          // still parses as one member declaration.
          stmt.push_back(i);
          continue;
        }
      }
      stmt.clear();
      continue;
    }
    if (text == ";") {
      if (at_decl_scope() && !stmt.empty()) {
        size_t name_in_stmt = 0;
        size_t paren_in_stmt = 0;
        if (LooksLikeFunctionSignature(tokens, stmt, &name_in_stmt,
                                       &paren_in_stmt)) {
          record_function(stmt, name_in_stmt, paren_in_stmt,
                          /*definition=*/false);
        } else {
          record_declaration(
              stmt, !scopes.empty() &&
                        scopes.back().kind == ScopeFrame::Kind::kClass);
        }
      }
      stmt.clear();
      continue;
    }
    if (text == ":" && at_decl_scope() && stmt.size() == 1 &&
        (tokens[stmt[0]].text == "public" ||
         tokens[stmt[0]].text == "private" ||
         tokens[stmt[0]].text == "protected")) {
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
  }

  // ---- Call extraction per function body. ----
  for (FunctionInfo& fn : file.functions) {
    if (!fn.is_definition || fn.body_end <= fn.body_begin) continue;
    for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (tokens[i].text != "(" || i == 0) continue;
      const Token& callee = tokens[i - 1];
      if (callee.kind != Token::Kind::kIdent) continue;
      if (Keywords().count(callee.text) > 0) continue;
      // `Type name(args)` is a declaration with paren-init, not a call: the
      // token before the callee is then itself an identifier or a
      // type-closing '>' / '*' / '&'.
      if (i >= 2) {
        const Token& before = tokens[i - 2];
        if (before.kind == Token::Kind::kIdent &&
            Keywords().count(before.text) == 0 && before.text != "in" &&
            tokens[i - 2].text != "operator") {
          continue;
        }
        if (before.text == ">" || before.text == "*" || before.text == "&") {
          continue;
        }
      }
      CallSite call;
      call.callee = callee.text;
      call.token = i - 1;
      call.line = callee.line;
      fn.calls.push_back(std::move(call));
    }
  }

  return file;
}

SourceModel BuildSourceModelFromContents(
    const std::vector<std::pair<std::string, std::string>>& files) {
  SourceModel model;
  model.files.reserve(files.size());
  for (const auto& [path, content] : files) {
    model.files.push_back(BuildSourceFile(path, content));
  }
  return model;
}

Result<SourceModel> BuildSourceModelFromDisk(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return Status::InvalidArgument("no src/ directory under '" + root + "'");
  }
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(src, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return Status::Internal("walking '" + src.string() +
                              "': " + ec.message());
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());

  SourceModel model;
  model.files.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Internal("cannot read '" + path.string() + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel =
        fs::relative(path, fs::path(root), ec).generic_string();
    model.files.push_back(BuildSourceFile(rel, buffer.str()));
  }
  return model;
}

}  // namespace xicc
