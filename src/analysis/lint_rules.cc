#include "analysis/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace xicc {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One physical line, pre-digested for the rules.
struct Line {
  std::string code;  ///< Comments, string and char literals blanked out.
  std::string raw;
  std::set<std::string> allows;  ///< Rules suppressed on this line.
};

/// Collects every `xicc-lint: allow(a, b)` rule name on the line.
void CollectAllows(Line* line) {
  const std::string tag = "xicc-lint: allow(";
  size_t at = line->raw.find(tag);
  while (at != std::string::npos) {
    const size_t open = at + tag.size();
    const size_t close = line->raw.find(')', open);
    if (close == std::string::npos) break;
    std::string name;
    for (size_t i = open; i <= close; ++i) {
      const char c = line->raw[i];
      if (c == ',' || c == ')') {
        const size_t first = name.find_first_not_of(' ');
        const size_t last = name.find_last_not_of(' ');
        if (first != std::string::npos) {
          line->allows.insert(name.substr(first, last - first + 1));
        }
        name.clear();
      } else {
        name.push_back(c);
      }
    }
    at = line->raw.find(tag, close);
  }
}

/// Splits `content` into lines with comments, string literals (including
/// multi-line raw strings), and char literals blanked out in `code`;
/// suppressions are collected from the full raw text of each line.
std::vector<Line> Digest(const std::string& content) {
  std::vector<Line> lines(1);
  enum class State { kCode, kLineComment, kBlockComment, kQuote, kRawString };
  State state = State::kCode;
  char quote = 0;
  bool escaped = false;
  std::string raw_terminator;  // ")delim\"" of the active raw string.
  size_t block_open_at = 0;    // Index of the '/' that opened the comment.
  const size_t n = content.size();

  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      CollectAllows(&lines.back());
      // Line comments and (unterminated) ordinary literals end at newline;
      // block comments and raw strings continue.
      if (state == State::kLineComment || state == State::kQuote) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    Line& cur = lines.back();
    cur.raw.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          cur.code.push_back(' ');
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          block_open_at = i;
          cur.code.push_back(' ');
        } else if (c == '\'' && i > 0 &&
                   std::isdigit(static_cast<unsigned char>(content[i - 1]))) {
          cur.code.push_back(c);  // Digit separator, not a char literal.
        } else if (c == '"' && i > 0 && content[i - 1] == 'R') {
          // R"delim( ... )delim" — find the delimiter.
          size_t open = content.find('(', i + 1);
          raw_terminator =
              ")" + content.substr(i + 1, open == std::string::npos
                                              ? 0
                                              : open - i - 1) +
              "\"";
          state = State::kRawString;
          cur.code.push_back('"');
        } else if (c == '"' || c == '\'') {
          state = State::kQuote;
          quote = c;
          escaped = false;
          cur.code.push_back(c);
        } else {
          cur.code.push_back(c);
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        cur.code.push_back(' ');
        if (state == State::kBlockComment && c == '/' && i > 0 &&
            content[i - 1] == '*' && i >= block_open_at + 3) {
          state = State::kCode;
        }
        break;
      case State::kQuote:
        if (escaped) {
          escaped = false;
          cur.code.push_back(' ');
        } else if (c == '\\') {
          escaped = true;
          cur.code.push_back(' ');
        } else if (c == quote) {
          state = State::kCode;
          cur.code.push_back(quote);
        } else {
          cur.code.push_back(' ');
        }
        break;
      case State::kRawString:
        cur.code.push_back(' ');
        if (c == '"' &&
            i + 1 >= raw_terminator.size() &&
            content.compare(i + 1 - raw_terminator.size(),
                            raw_terminator.size(), raw_terminator) == 0) {
          state = State::kCode;
        }
        break;
    }
  }
  CollectAllows(&lines.back());
  return lines;
}

/// True when `code` contains `token` as a whole word (identifier
/// boundaries on both sides; ':' counts as part of qualified names so that
/// "std::mutex" matches exactly and "my_mutex" does not match "mutex").
bool HasToken(const std::string& code, const std::string& token) {
  size_t at = code.find(token);
  while (at != std::string::npos) {
    const bool left_ok =
        at == 0 || (!IsIdentChar(code[at - 1]) && code[at - 1] != ':');
    const size_t end = at + token.size();
    const bool right_ok =
        end >= code.size() || (!IsIdentChar(code[end]) && code[end] != ':');
    if (left_ok && right_ok) return true;
    at = code.find(token, at + 1);
  }
  return false;
}

/// Top-level directory of a repo-relative "src/..." path, or "" if the file
/// is not under src/.
std::string SrcDir(const std::string& rel_path) {
  const std::string prefix = "src/";
  if (rel_path.compare(0, prefix.size(), prefix) != 0) return "";
  size_t slash = rel_path.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  return rel_path.substr(prefix.size(), slash - prefix.size());
}

bool IsHeader(const std::string& rel_path) {
  return rel_path.size() > 2 &&
         rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

/// The dependency layering: which src/ directories each directory's quoted
/// includes may name. Kept in one place so the rule and the docs agree.
const std::map<std::string, std::set<std::string>>& LayerMap() {
  static const std::map<std::string, std::set<std::string>> kLayers = {
      {"base", {"base"}},
      {"analysis", {"base", "analysis"}},
      {"xml", {"base", "xml"}},
      {"ilp", {"base", "ilp"}},
      {"dtd", {"base", "xml", "dtd"}},
      {"constraints", {"base", "xml", "dtd", "constraints"}},
      {"relational", {"base", "xml", "dtd", "constraints", "relational"}},
      {"core", {"base", "xml", "dtd", "constraints", "ilp", "core"}},
      {"workloads",
       {"base", "xml", "dtd", "constraints", "ilp", "core", "workloads"}},
      {"tools",
       {"base", "analysis", "xml", "ilp", "dtd", "constraints", "relational",
        "core", "workloads", "tools"}},
  };
  return kLayers;
}

struct TokenRule {
  const char* rule;
  std::vector<const char*> tokens;
  const char* message;
};

void CheckTokens(const std::vector<Line>& lines, const TokenRule& spec,
                 const std::string& rel_path, std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    if (lines[k].allows.count(spec.rule) > 0) continue;
    if (k > 0 && lines[k - 1].allows.count(spec.rule) > 0) continue;
    for (const char* token : spec.tokens) {
      if (HasToken(lines[k].code, token)) {
        out->push_back({rel_path, k + 1, spec.rule,
                        std::string("'") + token + "' " + spec.message});
        break;
      }
    }
  }
}

bool LineSuppressed(const std::vector<Line>& lines, size_t k,
                    const char* rule) {
  if (lines[k].allows.count(rule) > 0) return true;
  return k > 0 && lines[k - 1].allows.count(rule) > 0;
}

/// Bare `int64_t` in src/ilp/ — the word type tableau coefficients must NOT
/// live in. Coefficient arithmetic belongs in Num (base/num.h), whose small
/// tier overflow-checks every op and promotes to BigInt; a raw int64_t
/// add/mul silently wraps. `static_cast<int64_t>` stays legal: casting a
/// size_t dimension for BigInt construction is bookkeeping, not coefficient
/// arithmetic.
void CheckRawCoefficientWords(const std::vector<Line>& lines,
                              const std::string& rel_path,
                              std::vector<LintIssue>* out) {
  const std::string token = "int64_t";
  for (size_t k = 0; k < lines.size(); ++k) {
    if (LineSuppressed(lines, k, "raw-coefficient-words")) continue;
    const std::string& code = lines[k].code;
    size_t at = code.find(token);
    while (at != std::string::npos) {
      const bool left_ok =
          at == 0 || (!IsIdentChar(code[at - 1]) && code[at - 1] != ':');
      const size_t end = at + token.size();
      const bool right_ok =
          end >= code.size() || (!IsIdentChar(code[end]) && code[end] != ':');
      if (left_ok && right_ok) {
        // Allow `static_cast<int64_t>`: scan left past whitespace for '<'
        // preceded by "static_cast".
        size_t p = at;
        while (p > 0 && code[p - 1] == ' ') --p;
        const std::string cast = "static_cast<";
        const bool is_cast =
            p >= cast.size() && code.compare(p - cast.size(), cast.size(),
                                             cast) == 0;
        if (!is_cast) {
          out->push_back(
              {rel_path, k + 1, "raw-coefficient-words",
               "'int64_t' in src/ilp/: tableau coefficients must use the "
               "overflow-checked two-tier Num (base/num.h), never raw 64-bit "
               "words; static_cast<int64_t> of a dimension is fine"});
          break;
        }
      }
      at = code.find(token, at + 1);
    }
  }
}

/// `(void)Identifier(...)` — a muted call. `(void)param;` (no call) is the
/// accepted unused-parameter idiom and is not flagged.
void CheckVoidDiscard(const std::vector<Line>& lines,
                      const std::string& rel_path,
                      std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    if (LineSuppressed(lines, k, "void-discard")) continue;
    const std::string& code = lines[k].code;
    size_t at = code.find("(void)");
    while (at != std::string::npos) {
      size_t p = at + 6;
      while (p < code.size() && code[p] == ' ') ++p;
      size_t ident_start = p;
      while (p < code.size() &&
             (IsIdentChar(code[p]) || code[p] == ':' || code[p] == '.' ||
              (code[p] == '-' && p + 1 < code.size() && code[p + 1] == '>') ||
              (code[p] == '>' && p > 0 && code[p - 1] == '-'))) {
        ++p;
      }
      if (p > ident_start && p < code.size() && code[p] == '(') {
        out->push_back(
            {rel_path, k + 1, "void-discard",
             "'(void)' discards a call result; handle the Status/Result or "
             "suppress with a reasoned xicc-lint: allow(void-discard)"});
        break;
      }
      at = code.find("(void)", at + 1);
    }
  }
}

void CheckPragmaOnce(const std::vector<Line>& lines,
                     const std::string& rel_path,
                     std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& code = lines[k].code;
    const size_t first = code.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // Blank / comment-only.
    if (code.compare(first, 12, "#pragma once") == 0) return;
    if (LineSuppressed(lines, k, "pragma-once")) return;
    out->push_back({rel_path, k + 1, "pragma-once",
                    "header must open with '#pragma once' (run --fix to "
                    "rewrite an #ifndef guard)"});
    return;
  }
}

void CheckIncludeLayering(const std::vector<Line>& lines,
                          const std::string& dir,
                          const std::string& rel_path,
                          std::vector<LintIssue>* out) {
  auto it = LayerMap().find(dir);
  if (it == LayerMap().end()) return;
  const std::set<std::string>& allowed = it->second;
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& raw = lines[k].raw;
    size_t hash = raw.find_first_not_of(" \t");
    if (hash == std::string::npos || raw[hash] != '#') continue;
    size_t open = raw.find("include \"", hash);
    if (open == std::string::npos) continue;
    size_t start = open + 9;
    size_t close = raw.find('"', start);
    if (close == std::string::npos) continue;
    std::string path = raw.substr(start, close - start);
    size_t slash = path.find('/');
    if (slash == std::string::npos) continue;  // Same-directory include.
    std::string target = path.substr(0, slash);
    if (LayerMap().count(target) == 0) continue;  // Not a src/ layer.
    if (allowed.count(target) > 0) continue;
    if (LineSuppressed(lines, k, "include-layering")) continue;
    out->push_back({rel_path, k + 1, "include-layering",
                    "src/" + dir + "/ must not include \"" + path +
                        "\": layer '" + target +
                        "' is above it (allowed: base ← {xml, ilp, "
                        "analysis} ← dtd ← constraints ← {relational, "
                        "core} ← {workloads, tools})"});
  }
}

}  // namespace

std::string LintIssue::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<LintRuleInfo>& LintRules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"exact-arithmetic",
       "no float/double in src/ilp/ or src/core/ verdict paths "
       "(BigInt/Rational/Num only)",
       false},
      {"raw-coefficient-words",
       "no bare int64_t on src/ilp/ coefficients (use the two-tier Num; "
       "static_cast<int64_t> allowed)",
       false},
      {"no-nondeterminism",
       "no rand/random_device/mt19937/system_clock in src/ilp/ or src/core/",
       false},
      {"raw-concurrency",
       "no naked std::mutex/std::thread outside src/base/ (use "
       "base/thread_annotations.h)",
       false},
      {"raw-blocking",
       "no raw sleeps or unbounded CondVar waits outside the sanctioned "
       "base/ blocking primitives (worksteal, deadline, thread_annotations)",
       false},
      {"raw-deserialization",
       "no memcpy-into-struct or reinterpret_cast decoding outside "
       "base/serde — bytes become values only through its bounds-checked, "
       "checksummed readers",
       false},
      {"void-discard", "no (void) swallowing of call results", false},
      {"pragma-once", "headers open with #pragma once", true},
      {"include-layering", "quoted includes respect the layer order", false},
  };
  return kRules;
}

std::vector<LintIssue> LintFile(const std::string& rel_path,
                                const std::string& content) {
  std::vector<LintIssue> out;
  const std::vector<Line> lines = Digest(content);
  const std::string dir = SrcDir(rel_path);

  if (dir == "ilp" || dir == "core") {
    CheckTokens(lines,
                {"exact-arithmetic",
                 {"float", "double"},
                 "in a verdict path: the ILP/simplex core is exact "
                 "BigInt/Rational/Num (two-tier) arithmetic only"},
                rel_path, &out);
    CheckTokens(lines,
                {"no-nondeterminism",
                 {"rand", "srand", "random_device", "mt19937",
                  "default_random_engine", "system_clock", "std::rand",
                  "std::srand", "std::random_device", "std::mt19937",
                  "std::default_random_engine", "std::chrono::system_clock",
                  "<random>"},
                 "in a verdict path: verdicts must be deterministic and "
                 "replayable"},
                rel_path, &out);
  }
  if (dir == "ilp") {
    CheckRawCoefficientWords(lines, rel_path, &out);
  }
  if (!dir.empty() && dir != "base") {
    CheckTokens(lines,
                {"raw-concurrency",
                 {"std::mutex", "std::thread", "std::condition_variable",
                  "std::condition_variable_any", "std::lock_guard",
                  "std::unique_lock", "std::scoped_lock", "std::shared_mutex",
                  "<mutex>", "<thread>", "<condition_variable>"},
                 "outside src/base/: use the annotated primitives in "
                 "base/thread_annotations.h and base/worksteal.h so the "
                 "thread-safety analysis sees every lock"},
                rel_path, &out);
  }
  // Blocking primitives are quarantined: every sleep or CondVar wait in the
  // codebase must live where cancellation can reach it (the worksteal
  // generation protocol, the cancellable SleepFor, the annotated WaitFor).
  // A raw sleep_for or an unbounded wait anywhere else is a thread a
  // CancelToken cannot wake — the exact shape of the lost-wakeup bugs this
  // rule exists to keep out. HasToken treats ':' as part of a qualified
  // name, so the std::-qualified forms are listed separately.
  if (!dir.empty() && rel_path != "src/base/worksteal.h" &&
      rel_path != "src/base/deadline.h" &&
      rel_path != "src/base/deadline.cc" &&
      rel_path != "src/base/thread_annotations.h") {
    CheckTokens(lines,
                {"raw-blocking",
                 {"sleep_for", "sleep_until", "this_thread",
                  "std::this_thread::sleep_for",
                  "std::this_thread::sleep_until", "usleep", "nanosleep",
                  "CondVar"},
                 "blocks a thread where no CancelToken can wake it: sleep "
                 "with base/deadline.h SleepFor, wait inside "
                 "base/worksteal.h, or bound the wait with CondVar::WaitFor "
                 "in base/"},
                rel_path, &out);
  }
  // Byte reinterpretation is quarantined in base/serde: its Reader/Cursor
  // validate bounds, alignment, and checksums before any typed view is
  // handed out, so a memcpy-into-struct or reinterpret_cast decode anywhere
  // else is an unaudited parser — exactly how a corrupt artifact would turn
  // from a clean kInvalidArgument into UB.
  if (!dir.empty() && rel_path != "src/base/serde.h" &&
      rel_path != "src/base/serde.cc") {
    CheckTokens(lines,
                {"raw-deserialization",
                 {"memcpy", "std::memcpy", "reinterpret_cast"},
                 "outside base/serde: deserialize through serde::Cursor / "
                 "serde::Reader (bounds-checked, checksummed) instead of raw "
                 "byte reinterpretation"},
                rel_path, &out);
  }
  CheckVoidDiscard(lines, rel_path, &out);
  if (IsHeader(rel_path) && !dir.empty()) {
    CheckPragmaOnce(lines, rel_path, &out);
  }
  if (!dir.empty()) {
    CheckIncludeLayering(lines, dir, rel_path, &out);
  }
  std::sort(out.begin(), out.end(), [](const LintIssue& a, const LintIssue& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::string ApplyLintFixes(const std::string& rel_path,
                           const std::string& content, bool* changed) {
  *changed = false;
  if (!IsHeader(rel_path) || SrcDir(rel_path).empty()) return content;

  // Only fix files that actually violate pragma-once.
  bool violates = false;
  for (const LintIssue& issue : LintFile(rel_path, content)) {
    if (issue.rule == "pragma-once") violates = true;
  }
  if (!violates) return content;

  // Rewrite the classic guard:  #ifndef G / #define G ... #endif[comment]
  // becomes  #pragma once ...  — only when the first two directives are the
  // matching guard pair and the last directive is #endif.
  std::vector<std::string> lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  int ifndef_at = -1;
  int define_at = -1;
  std::string guard;
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& line = lines[k];
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 8, "#ifndef ") == 0 && ifndef_at < 0) {
      ifndef_at = static_cast<int>(k);
      guard = line.substr(first + 8);
      while (!guard.empty() && (guard.back() == ' ' || guard.back() == '\r')) {
        guard.pop_back();
      }
      continue;
    }
    if (ifndef_at >= 0) {
      if (line.compare(first, 8, "#define ") == 0) {
        std::string defined = line.substr(first + 8);
        while (!defined.empty() &&
               (defined.back() == ' ' || defined.back() == '\r')) {
          defined.pop_back();
        }
        if (defined == guard) define_at = static_cast<int>(k);
      }
      break;  // Only the directive pair right after #ifndef qualifies.
    }
  }
  int endif_at = -1;
  for (int k = static_cast<int>(lines.size()) - 1; k >= 0; --k) {
    const std::string& line = lines[k];
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 6, "#endif") == 0) endif_at = k;
    break;
  }
  if (ifndef_at < 0 || define_at != ifndef_at + 1 || endif_at <= define_at) {
    return content;  // Not a recognizable guard; leave for a human.
  }

  std::string out;
  for (int k = 0; k < static_cast<int>(lines.size()); ++k) {
    if (k == define_at || k == endif_at) continue;
    if (k == ifndef_at) {
      out += "#pragma once\n";
      continue;
    }
    out += lines[k];
    out += '\n';
  }
  // Drop a trailing blank line left behind by the removed #endif.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  *changed = true;
  return out;
}

Result<LintRunReport> RunLint(const std::string& root, bool fix) {
  namespace fs = std::filesystem;
  LintRunReport report;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return Status::InvalidArgument("no src/ directory under '" + root + "'");
  }

  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(src, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return Status::Internal("walking '" + src.string() +
                              "': " + ec.message());
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Internal("cannot read '" + path.string() + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    ++report.files_scanned;

    const std::string rel =
        fs::relative(path, fs::path(root), ec).generic_string();
    if (fix) {
      bool changed = false;
      std::string fixed = ApplyLintFixes(rel, content, &changed);
      if (changed) {
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        if (!outf) {
          return Status::Internal("cannot rewrite '" + path.string() + "'");
        }
        outf << fixed;
        content = std::move(fixed);
        ++report.files_fixed;
      }
    }
    std::vector<LintIssue> issues = LintFile(rel, content);
    report.issues.insert(report.issues.end(), issues.begin(), issues.end());
  }
  return report;
}

}  // namespace xicc
