#include "analysis/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/source_model.h"

namespace xicc {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `code` contains `token` as a whole word (identifier
/// boundaries on both sides; ':' counts as part of qualified names so that
/// "std::mutex" matches exactly and "my_mutex" does not match "mutex").
bool HasToken(const std::string& code, const std::string& token) {
  size_t at = code.find(token);
  while (at != std::string::npos) {
    const bool left_ok =
        at == 0 || (!IsIdentChar(code[at - 1]) && code[at - 1] != ':');
    const size_t end = at + token.size();
    const bool right_ok =
        end >= code.size() || (!IsIdentChar(code[end]) && code[end] != ':');
    if (left_ok && right_ok) return true;
    at = code.find(token, at + 1);
  }
  return false;
}

struct TokenRule {
  const char* rule;
  std::vector<const char*> tokens;
  const char* message;
};

void CheckTokens(const std::vector<SourceLine>& lines, const TokenRule& spec,
                 const std::string& rel_path, std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    if (lines[k].allows.count(spec.rule) > 0) continue;
    if (k > 0 && lines[k - 1].allows.count(spec.rule) > 0) continue;
    for (const char* token : spec.tokens) {
      if (HasToken(lines[k].code, token)) {
        out->push_back({rel_path, k + 1, spec.rule,
                        std::string("'") + token + "' " + spec.message});
        break;
      }
    }
  }
}

bool LineSuppressed(const std::vector<SourceLine>& lines, size_t k,
                    const char* rule) {
  if (lines[k].allows.count(rule) > 0) return true;
  return k > 0 && lines[k - 1].allows.count(rule) > 0;
}

/// Bare `int64_t` in src/ilp/ — the word type tableau coefficients must NOT
/// live in. Coefficient arithmetic belongs in Num (base/num.h), whose small
/// tier overflow-checks every op and promotes to BigInt; a raw int64_t
/// add/mul silently wraps. `static_cast<int64_t>` stays legal: casting a
/// size_t dimension for BigInt construction is bookkeeping, not coefficient
/// arithmetic.
void CheckRawCoefficientWords(const std::vector<SourceLine>& lines,
                              const std::string& rel_path,
                              std::vector<LintIssue>* out) {
  const std::string token = "int64_t";
  for (size_t k = 0; k < lines.size(); ++k) {
    if (LineSuppressed(lines, k, "raw-coefficient-words")) continue;
    const std::string& code = lines[k].code;
    size_t at = code.find(token);
    while (at != std::string::npos) {
      const bool left_ok =
          at == 0 || (!IsIdentChar(code[at - 1]) && code[at - 1] != ':');
      const size_t end = at + token.size();
      const bool right_ok =
          end >= code.size() || (!IsIdentChar(code[end]) && code[end] != ':');
      if (left_ok && right_ok) {
        // Allow `static_cast<int64_t>`: scan left past whitespace for '<'
        // preceded by "static_cast".
        size_t p = at;
        while (p > 0 && code[p - 1] == ' ') --p;
        const std::string cast = "static_cast<";
        const bool is_cast =
            p >= cast.size() && code.compare(p - cast.size(), cast.size(),
                                             cast) == 0;
        if (!is_cast) {
          out->push_back(
              {rel_path, k + 1, "raw-coefficient-words",
               "'int64_t' in src/ilp/: tableau coefficients must use the "
               "overflow-checked two-tier Num (base/num.h), never raw 64-bit "
               "words; static_cast<int64_t> of a dimension is fine"});
          break;
        }
      }
      at = code.find(token, at + 1);
    }
  }
}

/// `(void)Identifier(...)` — a muted call. `(void)param;` (no call) is the
/// accepted unused-parameter idiom and is not flagged.
void CheckVoidDiscard(const std::vector<SourceLine>& lines,
                      const std::string& rel_path,
                      std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    if (LineSuppressed(lines, k, "void-discard")) continue;
    const std::string& code = lines[k].code;
    size_t at = code.find("(void)");
    while (at != std::string::npos) {
      size_t p = at + 6;
      while (p < code.size() && code[p] == ' ') ++p;
      size_t ident_start = p;
      while (p < code.size() &&
             (IsIdentChar(code[p]) || code[p] == ':' || code[p] == '.' ||
              (code[p] == '-' && p + 1 < code.size() && code[p + 1] == '>') ||
              (code[p] == '>' && p > 0 && code[p - 1] == '-'))) {
        ++p;
      }
      if (p > ident_start && p < code.size() && code[p] == '(') {
        out->push_back(
            {rel_path, k + 1, "void-discard",
             "'(void)' discards a call result; handle the Status/Result or "
             "suppress with a reasoned xicc-lint: allow(void-discard)"});
        break;
      }
      at = code.find("(void)", at + 1);
    }
  }
}

void CheckPragmaOnce(const std::vector<SourceLine>& lines,
                     const std::string& rel_path,
                     std::vector<LintIssue>* out) {
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& code = lines[k].code;
    const size_t first = code.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // Blank / comment-only.
    if (code.compare(first, 12, "#pragma once") == 0) return;
    if (LineSuppressed(lines, k, "pragma-once")) return;
    out->push_back({rel_path, k + 1, "pragma-once",
                    "header must open with '#pragma once' (run --fix to "
                    "rewrite an #ifndef guard)"});
    return;
  }
}

void CheckIncludeLayering(const std::vector<SourceLine>& lines,
                          const std::string& dir,
                          const std::string& rel_path,
                          std::vector<LintIssue>* out) {
  auto it = LintLayerMap().find(dir);
  if (it == LintLayerMap().end()) return;
  const std::set<std::string>& allowed = it->second;
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& raw = lines[k].raw;
    size_t hash = raw.find_first_not_of(" \t");
    if (hash == std::string::npos || raw[hash] != '#') continue;
    size_t open = raw.find("include \"", hash);
    if (open == std::string::npos) continue;
    size_t start = open + 9;
    size_t close = raw.find('"', start);
    if (close == std::string::npos) continue;
    std::string path = raw.substr(start, close - start);
    size_t slash = path.find('/');
    if (slash == std::string::npos) continue;  // Same-directory include.
    std::string target = path.substr(0, slash);
    if (LintLayerMap().count(target) == 0) continue;  // Not a src/ layer.
    if (allowed.count(target) > 0) continue;
    if (LineSuppressed(lines, k, "include-layering")) continue;
    out->push_back({rel_path, k + 1, "include-layering",
                    "src/" + dir + "/ must not include \"" + path +
                        "\": layer '" + target +
                        "' is above it (allowed: base ← {xml, ilp, "
                        "analysis} ← dtd ← constraints ← {relational, "
                        "core} ← {workloads, tools})"});
  }
}

}  // namespace

std::string LintIssue::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<LintRuleInfo>& LintRules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"exact-arithmetic",
       "no float/double in src/ilp/ or src/core/ verdict paths "
       "(BigInt/Rational/Num only)",
       false},
      {"raw-coefficient-words",
       "no bare int64_t on src/ilp/ coefficients (use the two-tier Num; "
       "static_cast<int64_t> allowed)",
       false},
      {"no-nondeterminism",
       "no rand/random_device/mt19937/system_clock in src/ilp/ or src/core/",
       false},
      {"raw-concurrency",
       "no naked std::mutex/std::thread outside src/base/ (use "
       "base/thread_annotations.h)",
       false},
      {"raw-blocking",
       "no raw sleeps or unbounded CondVar waits outside the sanctioned "
       "base/ blocking primitives (worksteal, deadline, thread_annotations)",
       false},
      {"raw-deserialization",
       "no memcpy-into-struct or reinterpret_cast decoding outside "
       "base/serde — bytes become values only through its bounds-checked, "
       "checksummed readers",
       false},
      {"void-discard", "no (void) swallowing of call results", false},
      {"pragma-once", "headers open with #pragma once", true},
      {"include-layering", "quoted includes respect the layer order", false},
  };
  return kRules;
}

const std::map<std::string, std::set<std::string>>& LintLayerMap() {
  static const std::map<std::string, std::set<std::string>> kLayers = {
      {"base", {"base"}},
      {"analysis", {"base", "analysis"}},
      {"xml", {"base", "xml"}},
      {"ilp", {"base", "ilp"}},
      {"dtd", {"base", "xml", "dtd"}},
      {"constraints", {"base", "xml", "dtd", "constraints"}},
      {"relational", {"base", "xml", "dtd", "constraints", "relational"}},
      {"core", {"base", "xml", "dtd", "constraints", "ilp", "core"}},
      {"net", {"base", "xml", "dtd", "constraints", "ilp", "core", "net"}},
      {"workloads",
       {"base", "xml", "dtd", "constraints", "ilp", "core", "workloads"}},
      {"tools",
       {"base", "analysis", "xml", "ilp", "dtd", "constraints", "relational",
        "core", "net", "workloads", "tools"}},
  };
  return kLayers;
}

std::vector<LintIssue> LintSourceFile(const SourceFile& file) {
  std::vector<LintIssue> out;
  const std::vector<SourceLine>& lines = file.lines;
  const std::string& rel_path = file.rel_path;
  const std::string& dir = file.dir;

  if (dir == "ilp" || dir == "core") {
    CheckTokens(lines,
                {"exact-arithmetic",
                 {"float", "double"},
                 "in a verdict path: the ILP/simplex core is exact "
                 "BigInt/Rational/Num (two-tier) arithmetic only"},
                rel_path, &out);
    CheckTokens(lines,
                {"no-nondeterminism",
                 {"rand", "srand", "random_device", "mt19937",
                  "default_random_engine", "system_clock", "std::rand",
                  "std::srand", "std::random_device", "std::mt19937",
                  "std::default_random_engine", "std::chrono::system_clock",
                  "<random>"},
                 "in a verdict path: verdicts must be deterministic and "
                 "replayable"},
                rel_path, &out);
  }
  if (dir == "ilp") {
    CheckRawCoefficientWords(lines, rel_path, &out);
  }
  if (!dir.empty() && dir != "base") {
    CheckTokens(lines,
                {"raw-concurrency",
                 {"std::mutex", "std::thread", "std::condition_variable",
                  "std::condition_variable_any", "std::lock_guard",
                  "std::unique_lock", "std::scoped_lock", "std::shared_mutex",
                  "<mutex>", "<thread>", "<condition_variable>"},
                 "outside src/base/: use the annotated primitives in "
                 "base/thread_annotations.h and base/worksteal.h so the "
                 "thread-safety analysis sees every lock"},
                rel_path, &out);
  }
  // Blocking primitives are quarantined: every sleep or CondVar wait in the
  // codebase must live where cancellation can reach it (the worksteal
  // generation protocol, the cancellable SleepFor, the annotated WaitFor).
  // A raw sleep_for or an unbounded wait anywhere else is a thread a
  // CancelToken cannot wake — the exact shape of the lost-wakeup bugs this
  // rule exists to keep out. HasToken treats ':' as part of a qualified
  // name, so the std::-qualified forms are listed separately.
  if (!dir.empty() && rel_path != "src/base/worksteal.h" &&
      rel_path != "src/base/deadline.h" &&
      rel_path != "src/base/deadline.cc" &&
      rel_path != "src/base/thread_annotations.h") {
    CheckTokens(lines,
                {"raw-blocking",
                 {"sleep_for", "sleep_until", "this_thread",
                  "std::this_thread::sleep_for",
                  "std::this_thread::sleep_until", "usleep", "nanosleep",
                  "CondVar"},
                 "blocks a thread where no CancelToken can wake it: sleep "
                 "with base/deadline.h SleepFor, wait inside "
                 "base/worksteal.h, or bound the wait with CondVar::WaitFor "
                 "in base/"},
                rel_path, &out);
  }
  // Raw socket syscalls are quarantined in base/socket.*: its wrappers are
  // where EINTR retries live, where EAGAIN becomes a first-class result,
  // and where the XICC_FAULTS net probes are planted — a bare ::recv or
  // ::poll anywhere else is an I/O wait that cancellation, shutdown, and
  // fault injection cannot reach.
  if (!dir.empty() && rel_path != "src/base/socket.h" &&
      rel_path != "src/base/socket.cc") {
    CheckTokens(lines,
                {"raw-blocking",
                 {"::socket", "::accept", "::accept4", "::recv", "::send",
                  "::connect", "::bind", "::listen", "::setsockopt",
                  "::getsockopt", "::getsockname", "::shutdown", "::poll"},
                 "raw socket syscall outside base/socket.*: go through the "
                 "EINTR-safe, fault-probed wrappers (Fd, ReadSome/WriteSome, "
                 "AcceptOne, PollFds) so every network wait stays bounded "
                 "and injectable"},
                rel_path, &out);
  }
  // Byte reinterpretation is quarantined in base/serde: its Reader/Cursor
  // validate bounds, alignment, and checksums before any typed view is
  // handed out, so a memcpy-into-struct or reinterpret_cast decode anywhere
  // else is an unaudited parser — exactly how a corrupt artifact would turn
  // from a clean kInvalidArgument into UB.
  if (!dir.empty() && rel_path != "src/base/serde.h" &&
      rel_path != "src/base/serde.cc") {
    CheckTokens(lines,
                {"raw-deserialization",
                 {"memcpy", "std::memcpy", "reinterpret_cast"},
                 "outside base/serde: deserialize through serde::Cursor / "
                 "serde::Reader (bounds-checked, checksummed) instead of raw "
                 "byte reinterpretation"},
                rel_path, &out);
  }
  CheckVoidDiscard(lines, rel_path, &out);
  if (file.is_header && !dir.empty()) {
    CheckPragmaOnce(lines, rel_path, &out);
  }
  if (!dir.empty()) {
    CheckIncludeLayering(lines, dir, rel_path, &out);
  }
  std::sort(out.begin(), out.end(), [](const LintIssue& a, const LintIssue& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<LintIssue> LintFile(const std::string& rel_path,
                                const std::string& content) {
  return LintSourceFile(BuildSourceFile(rel_path, content));
}

std::string ApplyLintFixes(const std::string& rel_path,
                           const std::string& content, bool* changed) {
  *changed = false;
  if (!SourceIsHeader(rel_path) || SourceSrcDir(rel_path).empty()) {
    return content;
  }

  // Only fix files that actually violate pragma-once.
  bool violates = false;
  for (const LintIssue& issue : LintFile(rel_path, content)) {
    if (issue.rule == "pragma-once") violates = true;
  }
  if (!violates) return content;

  // Rewrite the classic guard:  #ifndef G / #define G ... #endif[comment]
  // becomes  #pragma once ...  — only when the first two directives are the
  // matching guard pair and the last directive is #endif.
  std::vector<std::string> lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  int ifndef_at = -1;
  int define_at = -1;
  std::string guard;
  for (size_t k = 0; k < lines.size(); ++k) {
    const std::string& line = lines[k];
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 8, "#ifndef ") == 0 && ifndef_at < 0) {
      ifndef_at = static_cast<int>(k);
      guard = line.substr(first + 8);
      while (!guard.empty() && (guard.back() == ' ' || guard.back() == '\r')) {
        guard.pop_back();
      }
      continue;
    }
    if (ifndef_at >= 0) {
      if (line.compare(first, 8, "#define ") == 0) {
        std::string defined = line.substr(first + 8);
        while (!defined.empty() &&
               (defined.back() == ' ' || defined.back() == '\r')) {
          defined.pop_back();
        }
        if (defined == guard) define_at = static_cast<int>(k);
      }
      break;  // Only the directive pair right after #ifndef qualifies.
    }
  }
  int endif_at = -1;
  for (int k = static_cast<int>(lines.size()) - 1; k >= 0; --k) {
    const std::string& line = lines[k];
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 6, "#endif") == 0) endif_at = k;
    break;
  }
  if (ifndef_at < 0 || define_at != ifndef_at + 1 || endif_at <= define_at) {
    return content;  // Not a recognizable guard; leave for a human.
  }

  std::string out;
  for (int k = 0; k < static_cast<int>(lines.size()); ++k) {
    if (k == define_at || k == endif_at) continue;
    if (k == ifndef_at) {
      out += "#pragma once\n";
      continue;
    }
    out += lines[k];
    out += '\n';
  }
  // Drop a trailing blank line left behind by the removed #endif.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  *changed = true;
  return out;
}

Result<LintRunReport> RunLint(const std::string& root, bool fix) {
  namespace fs = std::filesystem;
  LintRunReport report;
  XICC_ASSIGN_OR_RETURN(SourceModel model, BuildSourceModelFromDisk(root));

  for (SourceFile& file : model.files) {
    ++report.files_scanned;
    if (fix) {
      bool changed = false;
      std::string fixed = ApplyLintFixes(file.rel_path, file.content, &changed);
      if (changed) {
        const fs::path path = fs::path(root) / file.rel_path;
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        if (!outf) {
          return Status::Internal("cannot rewrite '" + path.string() + "'");
        }
        outf << fixed;
        file = BuildSourceFile(file.rel_path, fixed);
        ++report.files_fixed;
      }
    }
    std::vector<LintIssue> issues = LintSourceFile(file);
    report.issues.insert(report.issues.end(), issues.begin(), issues.end());
  }
  return report;
}

}  // namespace xicc
