#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/source_model.h"

namespace xicc {

namespace {

bool TypeMentionsArena(const std::string& type) {
  return type.find("ArenaVector") != std::string::npos ||
         type.find("ArenaAllocator") != std::string::npos;
}

}  // namespace

void AnalyzeArenaEscape(const SourceModel& model,
                        std::vector<Finding>* findings) {
  // ---- Members: arena-backed containers in a class outlive every
  // ArenaScope by construction. ----
  for (const SourceFile& file : model.files) {
    if (file.rel_path == "src/base/arena.h") continue;  // The primitives.
    for (const MemberDecl& member : file.members) {
      if (!TypeMentionsArena(member.type)) continue;
      if (file.Suppressed(member.line, "arena-escape")) continue;
      Finding f;
      f.rule = "arena-escape";
      f.file = file.rel_path;
      f.line = member.line;
      f.message = "member '" + member.class_name + "::" + member.name +
                  "' is arena-backed (" + member.type +
                  "): it outlives any ArenaScope, so its memory is rewound "
                  "out from under it";
      f.context = "member " + member.class_name + "::" + member.name;
      findings->push_back(f);
    }
  }

  // ---- Locals: ArenaVector / Allocate results escaping the function that
  // owns the ArenaScope via `return` or stores into members / out-params.
  for (const SourceFile& file : model.files) {
    if (file.rel_path == "src/base/arena.h") continue;
    const std::vector<Token>& tokens = file.tokens;
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition || fn.body_end <= fn.body_begin) continue;
      // Does this function own a scope? Only then is the function boundary
      // the lifetime boundary.
      bool owns_scope = false;
      std::set<std::string> arena_vars;
      for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
        if (tokens[i].text == "ArenaScope" &&
            tokens[i + 1].kind == Token::Kind::kIdent) {
          owns_scope = true;
        }
        if (tokens[i].text == "ArenaVector") {
          // `ArenaVector < T > name` — the name follows the template group.
          size_t p = i + 1;
          if (p < fn.body_end && tokens[p].text == "<") {
            int angle = 0;
            for (; p < fn.body_end; ++p) {
              if (tokens[p].text == "<") ++angle;
              if (tokens[p].text == ">" && --angle == 0) break;
            }
            ++p;
          }
          if (p < fn.body_end && tokens[p].kind == Token::Kind::kIdent) {
            arena_vars.insert(tokens[p].text);
          }
        }
        // `auto* p = arena.Allocate...` / `= ThisThreadArena().Allocate`:
        // the declared name left of '=' joins the arena set.
        if (tokens[i].text == "Allocate" && i + 1 < fn.body_end &&
            tokens[i + 1].text == "(") {
          for (size_t q = i; q > fn.body_begin; --q) {
            if (tokens[q].text == "=") {
              if (tokens[q - 1].kind == Token::Kind::kIdent) {
                arena_vars.insert(tokens[q - 1].text);
              }
              break;
            }
            if (tokens[q].text == ";" || tokens[q].text == "{") break;
          }
        }
      }
      if (!owns_scope || arena_vars.empty()) continue;

      // Statement scan for escapes.
      size_t stmt_begin = fn.body_begin + 1;
      for (size_t i = fn.body_begin + 1; i <= fn.body_end; ++i) {
        const std::string& t = tokens[i].text;
        if (t != ";" && t != "{" && t != "}") continue;
        const size_t begin = stmt_begin;
        const size_t end = i;
        stmt_begin = i + 1;
        if (t != ";" || begin >= end) continue;

        auto rhs_mentions_arena = [&](size_t from, size_t to) -> std::string {
          for (size_t p = from; p < to; ++p) {
            if (tokens[p].kind == Token::Kind::kIdent &&
                arena_vars.count(tokens[p].text) > 0) {
              // `var.size()` etc. produce values, not aliases; `var`,
              // `var.data()`, `&var` alias arena memory.
              if (p + 2 < to && tokens[p + 1].text == "." &&
                  tokens[p + 2].text == "size") {
                continue;
              }
              return tokens[p].text;
            }
          }
          return "";
        };

        Finding f;
        f.rule = "arena-escape";
        f.file = file.rel_path;
        const std::string where =
            fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;

        // `return <arena-var> ...;`
        if (tokens[begin].text == "return") {
          const std::string var = rhs_mentions_arena(begin + 1, end);
          if (var.empty()) continue;
          const size_t line = tokens[begin].line;
          if (file.Suppressed(line, "arena-escape")) continue;
          f.line = line;
          f.message = "'" + var + "' is arena-backed and returned from " +
                      where +
                      ", whose ArenaScope rewinds that memory on exit";
          f.context = where + " returns " + var;
          findings->push_back(f);
          continue;
        }

        // Assignment whose LHS outlives the scope: `member_ = ...`,
        // `out->field = ...`, `*out = ...` with an arena var on the RHS.
        size_t eq = begin;
        int depth = 0;
        for (; eq < end; ++eq) {
          const std::string& e = tokens[eq].text;
          if (e == "(" || e == "[") ++depth;
          if (e == ")" || e == "]") --depth;
          if (depth == 0 && e == "=" &&
              (eq + 1 >= end || tokens[eq + 1].text != "=") &&
              (eq == begin || tokens[eq - 1].text != "!" )) {
            break;
          }
        }
        if (eq >= end || eq == begin) continue;
        const std::string var = rhs_mentions_arena(eq + 1, end);
        if (var.empty()) continue;
        // Judge the LHS: a member (trailing underscore), a deref'd
        // out-param, or a pointer chain store escapes the frame.
        bool escapes = false;
        std::string lhs_desc;
        for (size_t p = begin; p < eq; ++p) {
          const std::string& e = tokens[p].text;
          if (tokens[p].kind == Token::Kind::kIdent && !e.empty() &&
              e.back() == '_') {
            escapes = true;
          }
          if (e == "->" || (p == begin && e == "*")) escapes = true;
          if (!lhs_desc.empty()) lhs_desc += ' ';
          lhs_desc += e;
        }
        // A declaration (`Type x = ...`) introduces a local alias, which is
        // fine: two leading identifiers before the name mean a type is
        // present.
        if (eq >= begin + 3 && tokens[begin].kind == Token::Kind::kIdent &&
            tokens[eq - 1].kind == Token::Kind::kIdent &&
            tokens[begin].text != tokens[eq - 1].text && !escapes) {
          continue;
        }
        if (!escapes) continue;
        const size_t line = tokens[begin].line;
        if (file.Suppressed(line, "arena-escape")) continue;
        f.line = line;
        f.message = "'" + var + "' is arena-backed but stored into '" +
                    lhs_desc + "' in " + where +
                    ", which outlives the ArenaScope that owns the memory";
        f.context = where + " stores " + var;
        findings->push_back(f);
      }
    }
  }
}

}  // namespace xicc
