#pragma once

#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "xml/tree.h"

namespace xicc {

/// One reason a tree fails a constraint. For a key violation, `node` and
/// `other` are the two clashing elements; for an inclusion violation, `node`
/// is the dangling element; for failed negations (which assert existence)
/// both are kInvalidNode.
struct ConstraintViolation {
  ConstraintViolation(const Constraint& c, NodeId node_in, NodeId other_in,
                      std::string message_in)
      : constraint(c),
        node(node_in),
        other(other_in),
        message(std::move(message_in)) {}

  Constraint constraint;
  NodeId node = kInvalidNode;
  NodeId other = kInvalidNode;
  std::string message;
};

struct EvaluationReport {
  bool satisfied = true;
  std::vector<ConstraintViolation> violations;

  std::string ToString() const;
};

/// Dynamic validation: checks T ⊨ φ per the satisfaction definitions of
/// Section 2.2, with two notions of equality — string equality on attribute
/// values and node identity on elements. Elements missing a referenced
/// attribute (possible only on DTD-invalid trees) are reported as
/// violations.
EvaluationReport Evaluate(const XmlTree& tree, const Constraint& constraint);

/// Checks T ⊨ Σ; collects violations across all constraints.
EvaluationReport Evaluate(const XmlTree& tree, const ConstraintSet& set);

}  // namespace xicc
