#include "constraints/evaluator.h"

#include <map>
#include <optional>

#include "base/strings.h"

namespace xicc {

namespace {

/// x[X]: the tuple of X-attribute values of `node`, or nullopt if any
/// attribute is missing.
std::optional<std::vector<std::string>> TupleOf(
    const XmlTree& tree, NodeId node, const std::vector<std::string>& attrs) {
  std::vector<std::string> tuple;
  tuple.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    auto value = tree.AttributeValue(node, attr);
    if (!value.has_value()) return std::nullopt;
    tuple.emplace_back(*value);
  }
  return tuple;
}

std::string RenderTuple(const std::vector<std::string>& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + tuple[i] + "\"";
  }
  return out + ")";
}

void CheckMissing(const XmlTree& tree, const Constraint& c,
                  const std::string& type,
                  const std::vector<std::string>& attrs,
                  EvaluationReport* report) {
  for (NodeId node : tree.ExtOfType(type)) {
    if (!TupleOf(tree, node, attrs).has_value()) {
      report->satisfied = false;
      report->violations.emplace_back(
          c, node, kInvalidNode,
          "element '" + type + "' lacks an attribute referenced by " +
              c.ToString());
    }
  }
}

void EvaluateKey(const XmlTree& tree, const Constraint& c,
                 EvaluationReport* report) {
  CheckMissing(tree, c, c.type1, c.attrs1, report);
  std::map<std::vector<std::string>, NodeId> seen;
  for (NodeId node : tree.ExtOfType(c.type1)) {
    auto tuple = TupleOf(tree, node, c.attrs1);
    if (!tuple.has_value()) continue;
    auto [it, inserted] = seen.emplace(*tuple, node);
    if (!inserted) {
      report->satisfied = false;
      report->violations.emplace_back(
          c, node, it->second,
          "two '" + c.type1 + "' elements share key value " +
              RenderTuple(*tuple));
    }
  }
}

void EvaluateInclusion(const XmlTree& tree, const Constraint& c,
                       EvaluationReport* report) {
  CheckMissing(tree, c, c.type1, c.attrs1, report);
  std::map<std::vector<std::string>, NodeId> targets;
  for (NodeId node : tree.ExtOfType(c.type2)) {
    auto tuple = TupleOf(tree, node, c.attrs2);
    if (tuple.has_value()) targets.emplace(*tuple, node);
  }
  for (NodeId node : tree.ExtOfType(c.type1)) {
    auto tuple = TupleOf(tree, node, c.attrs1);
    if (!tuple.has_value()) continue;
    if (targets.find(*tuple) == targets.end()) {
      report->satisfied = false;
      report->violations.emplace_back(
          c, node, kInvalidNode,
          "value " + RenderTuple(*tuple) + " of '" + c.type1 +
              "' has no matching '" + c.type2 + "' element");
    }
  }
}

void EvaluateNegKey(const XmlTree& tree, const Constraint& c,
                    EvaluationReport* report) {
  std::map<std::vector<std::string>, NodeId> seen;
  for (NodeId node : tree.ExtOfType(c.type1)) {
    auto tuple = TupleOf(tree, node, c.attrs1);
    if (!tuple.has_value()) continue;
    auto [it, inserted] = seen.emplace(*tuple, node);
    if (!inserted) return;  // Witness pair exists: negation satisfied.
  }
  report->satisfied = false;
  report->violations.emplace_back(
      c, kInvalidNode, kInvalidNode,
      "no two '" + c.type1 + "' elements share a value; " + c.ToString() +
          " requires a clash");
}

void EvaluateNegInclusion(const XmlTree& tree, const Constraint& c,
                          EvaluationReport* report) {
  std::map<std::vector<std::string>, NodeId> targets;
  for (NodeId node : tree.ExtOfType(c.type2)) {
    auto tuple = TupleOf(tree, node, c.attrs2);
    if (tuple.has_value()) targets.emplace(*tuple, node);
  }
  for (NodeId node : tree.ExtOfType(c.type1)) {
    auto tuple = TupleOf(tree, node, c.attrs1);
    if (!tuple.has_value()) continue;
    if (targets.find(*tuple) == targets.end()) return;  // Witness exists.
  }
  report->satisfied = false;
  report->violations.emplace_back(
      c, kInvalidNode, kInvalidNode,
      "every '" + c.type1 + "' value occurs among '" + c.type2 + "'; " +
          c.ToString() + " requires a dangling value");
}

}  // namespace

std::string EvaluationReport::ToString() const {
  if (satisfied) return "satisfied";
  std::vector<std::string> lines;
  lines.reserve(violations.size());
  for (const ConstraintViolation& v : violations) {
    lines.push_back(v.message);
  }
  return Join(lines, "\n");
}

EvaluationReport Evaluate(const XmlTree& tree, const Constraint& constraint) {
  EvaluationReport report;
  switch (constraint.kind) {
    case ConstraintKind::kKey:
      EvaluateKey(tree, constraint, &report);
      break;
    case ConstraintKind::kInclusion:
      EvaluateInclusion(tree, constraint, &report);
      break;
    case ConstraintKind::kForeignKey: {
      EvaluateInclusion(tree, constraint, &report);
      Constraint key = Constraint::Key(constraint.type2, constraint.attrs2);
      EvaluateKey(tree, key, &report);
      break;
    }
    case ConstraintKind::kNegKey:
      EvaluateNegKey(tree, constraint, &report);
      break;
    case ConstraintKind::kNegInclusion:
      EvaluateNegInclusion(tree, constraint, &report);
      break;
  }
  return report;
}

EvaluationReport Evaluate(const XmlTree& tree, const ConstraintSet& set) {
  EvaluationReport report;
  for (const Constraint& constraint : set.constraints()) {
    EvaluationReport one = Evaluate(tree, constraint);
    if (!one.satisfied) {
      report.satisfied = false;
      report.violations.insert(report.violations.end(),
                               one.violations.begin(), one.violations.end());
    }
  }
  return report;
}

}  // namespace xicc
