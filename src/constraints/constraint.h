#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "dtd/dtd.h"

namespace xicc {

/// The constraint forms of Section 2.2. A foreign key is *represented* as an
/// inclusion constraint flagged `requires_key`: the paper defines
/// τ1[X] ⊆ τ2[Y], τ2[Y] → τ2 as the combination of an inclusion constraint
/// and a key, and the flag records that the key component is part of the
/// foreign key (ConstraintSet::Normalize materializes it).
enum class ConstraintKind {
  kKey,           ///< τ[X] → τ.
  kInclusion,     ///< τ1[X] ⊆ τ2[Y].
  kForeignKey,    ///< τ1[X] ⊆ τ2[Y] together with τ2[Y] → τ2.
  kNegKey,        ///< τ[X] ↛ τ   (only unary negations appear in the paper).
  kNegInclusion,  ///< τ1[X] ⊄ τ2[Y].
};

/// A single integrity constraint over a DTD.
struct Constraint {
  ConstraintKind kind;
  /// Key / negated key: the keyed element type. Inclusion-like forms: τ1.
  std::string type1;
  /// X — attribute set (keys) or list (inclusions). Nonempty.
  std::vector<std::string> attrs1;
  /// Inclusion-like forms: τ2. Empty for keys.
  std::string type2;
  /// Y — same length as attrs1 for inclusion-like forms.
  std::vector<std::string> attrs2;

  static Constraint Key(std::string type, std::vector<std::string> attrs);
  static Constraint Inclusion(std::string type1,
                              std::vector<std::string> attrs1,
                              std::string type2,
                              std::vector<std::string> attrs2);
  static Constraint ForeignKey(std::string type1,
                               std::vector<std::string> attrs1,
                               std::string type2,
                               std::vector<std::string> attrs2);
  static Constraint NegKey(std::string type, std::vector<std::string> attrs);
  static Constraint NegInclusion(std::string type1,
                                 std::vector<std::string> attrs1,
                                 std::string type2,
                                 std::vector<std::string> attrs2);

  /// Single-attribute on every side.
  bool IsUnary() const;
  /// True for kNegKey / kNegInclusion.
  bool IsNegation() const;

  /// Paper-style rendering, e.g. "teacher.name -> teacher",
  /// "subject.taught_by <= teacher.name", "enroll[sid,dept] <= ...".
  std::string ToString() const;

  friend bool operator==(const Constraint& a, const Constraint& b) = default;
};

/// The constraint classes whose consistency/implication problems the paper
/// separates (Figure 5).
enum class ConstraintClass {
  kEmpty,          ///< No constraints: DTD validity only (Thm 3.5(1)).
  kKeysOnly,       ///< C_K — keys only (Thm 3.5(2,3)): linear time.
  kUnaryKeyFk,     ///< C^unary_{K,FK} ∪ unary ICs (C^unary_{K,IC}): NP.
  kUnaryWithNegKey,///< C^unary_{K¬,IC}: + negated unary keys: NP (Cor 4.9).
  kUnaryWithNegIc, ///< C^unary_{K¬,IC¬}: + negated unary ICs: NP (Thm 5.1).
  kMultiAttribute, ///< C_{K,FK} with some multi-attribute FK/IC: undecidable.
};

const char* ConstraintClassName(ConstraintClass c);

/// An ordered collection of constraints with class detection and per-DTD
/// well-formedness checking.
class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::vector<Constraint> constraints)
      : constraints_(std::move(constraints)) {}

  void Add(Constraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  const std::vector<Constraint>& constraints() const { return constraints_; }
  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// Verifies every constraint refers to declared element types and
  /// attributes of `dtd`, and that inclusion sides have equal arity.
  Status CheckAgainst(const Dtd& dtd) const;

  /// The smallest Figure-5 class containing this set. Multi-attribute *keys*
  /// alone still classify as kKeysOnly (they are linear-time); any
  /// multi-attribute inclusion/foreign-key forces kMultiAttribute.
  ConstraintClass Classify() const;

  /// Expands foreign keys into inclusion + key pairs and deduplicates.
  /// The result contains only kKey/kInclusion/kNegKey/kNegInclusion.
  ConstraintSet Normalize() const;

  /// True if at most one key per element type is declared (keys arising from
  /// foreign keys included) — the primary-key restriction of Corollary 4.8.
  bool SatisfiesPrimaryKeyRestriction() const;

  /// One constraint per line.
  std::string ToString() const;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace xicc
