#include "constraints/constraint.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/strings.h"

namespace xicc {

Constraint Constraint::Key(std::string type, std::vector<std::string> attrs) {
  Constraint c;
  c.kind = ConstraintKind::kKey;
  c.type1 = std::move(type);
  c.attrs1 = std::move(attrs);
  return c;
}

Constraint Constraint::Inclusion(std::string type1,
                                 std::vector<std::string> attrs1,
                                 std::string type2,
                                 std::vector<std::string> attrs2) {
  Constraint c;
  c.kind = ConstraintKind::kInclusion;
  c.type1 = std::move(type1);
  c.attrs1 = std::move(attrs1);
  c.type2 = std::move(type2);
  c.attrs2 = std::move(attrs2);
  return c;
}

Constraint Constraint::ForeignKey(std::string type1,
                                  std::vector<std::string> attrs1,
                                  std::string type2,
                                  std::vector<std::string> attrs2) {
  Constraint c = Inclusion(std::move(type1), std::move(attrs1),
                           std::move(type2), std::move(attrs2));
  c.kind = ConstraintKind::kForeignKey;
  return c;
}

Constraint Constraint::NegKey(std::string type,
                              std::vector<std::string> attrs) {
  Constraint c = Key(std::move(type), std::move(attrs));
  c.kind = ConstraintKind::kNegKey;
  return c;
}

Constraint Constraint::NegInclusion(std::string type1,
                                    std::vector<std::string> attrs1,
                                    std::string type2,
                                    std::vector<std::string> attrs2) {
  Constraint c = Inclusion(std::move(type1), std::move(attrs1),
                           std::move(type2), std::move(attrs2));
  c.kind = ConstraintKind::kNegInclusion;
  return c;
}

bool Constraint::IsUnary() const {
  return attrs1.size() == 1 && attrs2.size() <= 1;
}

bool Constraint::IsNegation() const {
  return kind == ConstraintKind::kNegKey ||
         kind == ConstraintKind::kNegInclusion;
}

namespace {

std::string AttrList(const std::string& type,
                     const std::vector<std::string>& attrs) {
  if (attrs.size() == 1) return type + "." + attrs[0];
  std::string out = type + "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs[i];
  }
  out += "]";
  return out;
}

}  // namespace

std::string Constraint::ToString() const {
  switch (kind) {
    case ConstraintKind::kKey:
      return AttrList(type1, attrs1) + " -> " + type1;
    case ConstraintKind::kNegKey:
      return AttrList(type1, attrs1) + " -/-> " + type1;
    case ConstraintKind::kInclusion:
      return AttrList(type1, attrs1) + " <= " + AttrList(type2, attrs2);
    case ConstraintKind::kForeignKey:
      return AttrList(type1, attrs1) + " <= " + AttrList(type2, attrs2) +
             ", " + AttrList(type2, attrs2) + " -> " + type2;
    case ConstraintKind::kNegInclusion:
      return AttrList(type1, attrs1) + " </= " + AttrList(type2, attrs2);
  }
  return "?";
}

const char* ConstraintClassName(ConstraintClass c) {
  switch (c) {
    case ConstraintClass::kEmpty:
      return "empty";
    case ConstraintClass::kKeysOnly:
      return "keys-only";
    case ConstraintClass::kUnaryKeyFk:
      return "unary-keys-fks";
    case ConstraintClass::kUnaryWithNegKey:
      return "unary-with-neg-keys";
    case ConstraintClass::kUnaryWithNegIc:
      return "unary-with-neg-inclusions";
    case ConstraintClass::kMultiAttribute:
      return "multi-attribute";
  }
  return "unknown";
}

Status ConstraintSet::CheckAgainst(const Dtd& dtd) const {
  for (const Constraint& c : constraints_) {
    auto check_side = [&](const std::string& type,
                          const std::vector<std::string>& attrs) -> Status {
      if (!dtd.HasElement(type)) {
        return Status::InvalidArgument("constraint '" + c.ToString() +
                                       "' refers to undeclared element type '" +
                                       type + "'");
      }
      if (attrs.empty()) {
        return Status::InvalidArgument("constraint '" + c.ToString() +
                                       "' has an empty attribute list");
      }
      std::set<std::string> seen;
      for (const std::string& attr : attrs) {
        if (!dtd.HasAttribute(type, attr)) {
          return Status::InvalidArgument(
              "constraint '" + c.ToString() + "' uses attribute '" + attr +
              "' not defined for element type '" + type + "'");
        }
        if (!seen.insert(attr).second) {
          return Status::InvalidArgument("constraint '" + c.ToString() +
                                         "' repeats attribute '" + attr +
                                         "'");
        }
      }
      return Status::Ok();
    };

    XICC_RETURN_IF_ERROR(check_side(c.type1, c.attrs1));
    if (c.kind == ConstraintKind::kInclusion ||
        c.kind == ConstraintKind::kForeignKey ||
        c.kind == ConstraintKind::kNegInclusion) {
      XICC_RETURN_IF_ERROR(check_side(c.type2, c.attrs2));
      if (c.attrs1.size() != c.attrs2.size()) {
        return Status::InvalidArgument(
            "constraint '" + c.ToString() +
            "' has sides of different arity");
      }
    }
  }
  return Status::Ok();
}

ConstraintClass ConstraintSet::Classify() const {
  if (constraints_.empty()) return ConstraintClass::kEmpty;

  bool keys_only = true;
  bool has_neg_key = false;
  bool has_neg_ic = false;
  for (const Constraint& c : constraints_) {
    switch (c.kind) {
      case ConstraintKind::kKey:
        break;
      case ConstraintKind::kInclusion:
      case ConstraintKind::kForeignKey:
        keys_only = false;
        // A multi-attribute inclusion makes the whole set C_{K,FK}-general.
        if (!c.IsUnary()) return ConstraintClass::kMultiAttribute;
        break;
      case ConstraintKind::kNegKey:
        keys_only = false;
        has_neg_key = true;
        if (!c.IsUnary()) return ConstraintClass::kMultiAttribute;
        break;
      case ConstraintKind::kNegInclusion:
        keys_only = false;
        has_neg_ic = true;
        if (!c.IsUnary()) return ConstraintClass::kMultiAttribute;
        break;
    }
  }
  if (keys_only) return ConstraintClass::kKeysOnly;
  // Inclusion-like constraints present; unary ones only from here on. A
  // *key* over multiple attributes alongside unary inclusions falls outside
  // every unary class, so classify as multi-attribute.
  for (const Constraint& c : constraints_) {
    if (c.kind == ConstraintKind::kKey && !c.IsUnary()) {
      return ConstraintClass::kMultiAttribute;
    }
  }
  if (has_neg_ic) return ConstraintClass::kUnaryWithNegIc;
  if (has_neg_key) return ConstraintClass::kUnaryWithNegKey;
  return ConstraintClass::kUnaryKeyFk;
}

ConstraintSet ConstraintSet::Normalize() const {
  std::vector<Constraint> out;
  std::set<std::string> seen;  // Keyed by rendering, which is injective.
  auto push_unique = [&](Constraint c) {
    if (seen.insert(c.ToString()).second) {
      out.push_back(std::move(c));
    }
  };
  for (const Constraint& c : constraints_) {
    if (c.kind == ConstraintKind::kForeignKey) {
      push_unique(Constraint::Inclusion(c.type1, c.attrs1, c.type2, c.attrs2));
      push_unique(Constraint::Key(c.type2, c.attrs2));
    } else {
      push_unique(c);
    }
  }
  return ConstraintSet(std::move(out));
}

bool ConstraintSet::SatisfiesPrimaryKeyRestriction() const {
  // Collect the distinct key attribute-sets declared per element type.
  std::map<std::string, std::set<std::vector<std::string>>> keys_per_type;
  for (const Constraint& c : constraints_) {
    if (c.kind == ConstraintKind::kKey) {
      std::vector<std::string> sorted = c.attrs1;
      std::sort(sorted.begin(), sorted.end());
      keys_per_type[c.type1].insert(sorted);
    } else if (c.kind == ConstraintKind::kForeignKey) {
      std::vector<std::string> sorted = c.attrs2;
      std::sort(sorted.begin(), sorted.end());
      keys_per_type[c.type2].insert(sorted);
    }
  }
  for (const auto& [type, keys] : keys_per_type) {
    if (keys.size() > 1) return false;
  }
  return true;
}

std::string ConstraintSet::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(constraints_.size());
  for (const Constraint& c : constraints_) lines.push_back(c.ToString());
  return Join(lines, "\n");
}

}  // namespace xicc
