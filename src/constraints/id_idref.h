#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint.h"
#include "dtd/dtd.h"

namespace xicc {

/// Translation of a DTD's ID/IDREF attribute declarations into the paper's
/// constraint language.
///
/// Footnote 1 of the paper sets DTD id-constraints aside because of their
/// well-known limitations; this module makes those limitations concrete:
///
///  - An ID attribute `l` on element type τ yields the unary key τ.l → τ.
///    XML IDs are additionally unique *across* element types, which the
///    constraint language cannot express when several types carry IDs; the
///    translation then notes the approximation.
///  - An IDREF attribute is *unscoped*: it may point at any ID in the
///    document. When exactly one element type carries an ID, the reference
///    is effectively scoped and translates to the foreign key
///    τ'.l' ⊆ τ.l, τ.l → τ. With several ID-bearing types there is no
///    C_{K,FK} equivalent — precisely the critique of Buneman et al. and
///    Fan & Siméon that the paper cites — and the translation fails with an
///    explanatory error listing the candidate targets.
struct IdConstraintTranslation {
  ConstraintSet constraints;
  /// Human-readable caveats (e.g. cross-type ID uniqueness not captured).
  std::vector<std::string> notes;
};

Result<IdConstraintTranslation> DeriveIdConstraints(const Dtd& dtd);

}  // namespace xicc
