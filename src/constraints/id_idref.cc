#include "constraints/id_idref.h"

namespace xicc {

Result<IdConstraintTranslation> DeriveIdConstraints(const Dtd& dtd) {
  IdConstraintTranslation out;

  // Collect ID and IDREF attribute pairs in declaration order.
  std::vector<std::pair<std::string, std::string>> ids;
  std::vector<std::pair<std::string, std::string>> idrefs;
  for (const auto& [element, attr] : dtd.AllAttributePairs()) {
    switch (dtd.AttributeKind(element, attr)) {
      case AttrKind::kId:
        ids.emplace_back(element, attr);
        break;
      case AttrKind::kIdref:
        idrefs.emplace_back(element, attr);
        break;
      default:
        break;
    }
  }

  // Every ID is a unary key of its element type.
  for (const auto& [element, attr] : ids) {
    out.constraints.Add(Constraint::Key(element, {attr}));
  }
  if (ids.size() > 1) {
    std::string note =
        "XML IDs are unique across the whole document, but the constraint "
        "language expresses per-element-type keys only; cross-type "
        "disjointness of";
    for (const auto& [element, attr] : ids) {
      note += " " + element + "." + attr;
    }
    note += " is not captured";
    out.notes.push_back(std::move(note));
  }

  if (idrefs.empty()) return out;

  if (ids.empty()) {
    return Status::InvalidArgument(
        "the DTD declares IDREF attributes but no ID attribute; the "
        "references cannot point anywhere");
  }
  if (ids.size() > 1) {
    std::string targets;
    for (const auto& [element, attr] : ids) {
      if (!targets.empty()) targets += ", ";
      targets += element + "." + attr;
    }
    return Status::InvalidArgument(
        "IDREF attributes are unscoped: they may reference any of {" +
        targets +
        "}, and no C_{K,FK} constraint expresses a union-typed reference. "
        "This is the footnote-1 limitation the paper sets DTD "
        "id-constraints aside for; scope the reference by keeping a single "
        "ID-bearing element type, or write explicit fk constraints.");
  }

  // Exactly one ID-bearing type: every IDREF is a scoped foreign key.
  const auto& [id_element, id_attr] = ids.front();
  for (const auto& [element, attr] : idrefs) {
    out.constraints.Add(
        Constraint::ForeignKey(element, {attr}, id_element, {id_attr}));
  }
  return out;
}

}  // namespace xicc
