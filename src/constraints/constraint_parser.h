#pragma once

#include <string_view>

#include "base/status.h"
#include "constraints/constraint.h"

namespace xicc {

/// Parses the textual constraint language, one constraint per line:
///
///   key      teacher(name)
///   key      course(dept, course_no)
///   inclusion enroll(student_id) <= student(student_id)
///   fk       enroll(dept, course_no) => course(dept, course_no)
///   !key     teacher(name)
///   !inclusion a(x) <= b(y)
///
/// Blank lines and `#`-comments are skipped. `fk p(X) => q(Y)` is the
/// foreign key p[X] ⊆ q[Y], q[Y] → q.
Result<ConstraintSet> ParseConstraints(std::string_view input);

/// Parses a single constraint (no comments / newlines).
Result<Constraint> ParseConstraint(std::string_view line);

}  // namespace xicc
