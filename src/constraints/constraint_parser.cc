#include "constraints/constraint_parser.h"

#include <string>
#include <vector>

#include "base/strings.h"

namespace xicc {

namespace {

/// Parses "type(attr1, attr2, ...)" from the front of `s`, advancing it.
Status ParseSide(std::string_view* s, std::string* type,
                 std::vector<std::string>* attrs) {
  *s = StripWhitespace(*s);
  size_t open = s->find('(');
  if (open == std::string_view::npos) {
    return Status::ParseError("expected 'type(attrs)' in constraint near '" +
                              std::string(*s) + "'");
  }
  std::string_view name = StripWhitespace(s->substr(0, open));
  if (!IsValidName(name)) {
    return Status::ParseError("invalid element type name '" +
                              std::string(name) + "'");
  }
  size_t close = s->find(')', open);
  if (close == std::string_view::npos) {
    return Status::ParseError("missing ')' in constraint");
  }
  *type = std::string(name);
  attrs->clear();
  for (const std::string& piece :
       Split(s->substr(open + 1, close - open - 1), ',')) {
    std::string_view attr = StripWhitespace(piece);
    if (!IsValidName(attr)) {
      return Status::ParseError("invalid attribute name '" +
                                std::string(attr) + "'");
    }
    attrs->push_back(std::string(attr));
  }
  if (attrs->empty()) {
    return Status::ParseError("empty attribute list in constraint");
  }
  *s = s->substr(close + 1);
  return Status::Ok();
}

}  // namespace

Result<Constraint> ParseConstraint(std::string_view line) {
  std::string_view s = StripWhitespace(line);

  auto take_keyword = [&](std::string_view keyword) {
    if (!StartsWith(s, keyword)) return false;
    // Keyword must end at a word boundary.
    if (s.size() > keyword.size() && IsNameChar(s[keyword.size()])) {
      return false;
    }
    s = StripWhitespace(s.substr(keyword.size()));
    return true;
  };

  bool negated = false;
  if (!s.empty() && s[0] == '!') {
    negated = true;
    s = StripWhitespace(s.substr(1));
  }

  std::string type1, type2;
  std::vector<std::string> attrs1, attrs2;

  if (take_keyword("key")) {
    XICC_RETURN_IF_ERROR(ParseSide(&s, &type1, &attrs1));
    if (!StripWhitespace(s).empty()) {
      return Status::ParseError("trailing input after key constraint: '" +
                                std::string(s) + "'");
    }
    return negated ? Constraint::NegKey(type1, attrs1)
                   : Constraint::Key(type1, attrs1);
  }

  bool is_fk = false;
  if (take_keyword("inclusion")) {
    is_fk = false;
  } else if (take_keyword("fk")) {
    is_fk = true;
  } else {
    return Status::ParseError(
        "expected 'key', 'inclusion' or 'fk' in constraint: '" +
        std::string(line) + "'");
  }
  if (is_fk && negated) {
    return Status::ParseError(
        "negated foreign keys are not a form of the paper; negate the "
        "inclusion or the key separately");
  }

  XICC_RETURN_IF_ERROR(ParseSide(&s, &type1, &attrs1));
  s = StripWhitespace(s);
  std::string_view arrow = is_fk ? "=>" : "<=";
  if (!StartsWith(s, arrow)) {
    return Status::ParseError("expected '" + std::string(arrow) +
                              "' in constraint: '" + std::string(line) + "'");
  }
  s = s.substr(arrow.size());
  XICC_RETURN_IF_ERROR(ParseSide(&s, &type2, &attrs2));
  if (!StripWhitespace(s).empty()) {
    return Status::ParseError("trailing input after constraint: '" +
                              std::string(s) + "'");
  }
  if (attrs1.size() != attrs2.size()) {
    return Status::ParseError("sides of '" + std::string(line) +
                              "' have different arity");
  }
  if (is_fk) return Constraint::ForeignKey(type1, attrs1, type2, attrs2);
  return negated ? Constraint::NegInclusion(type1, attrs1, type2, attrs2)
                 : Constraint::Inclusion(type1, attrs1, type2, attrs2);
}

Result<ConstraintSet> ParseConstraints(std::string_view input) {
  // Constraint files are hand-written, one constraint per line; 16 MiB is
  // far beyond any legitimate Σ and bounds what a hostile input can make
  // Split materialize.
  constexpr size_t kMaxInputBytes = 16 * 1024 * 1024;
  if (input.size() > kMaxInputBytes) {
    return Status::InvalidArgument(
        "constraints input of " + std::to_string(input.size()) +
        " bytes exceeds the limit of " + std::to_string(kMaxInputBytes));
  }
  ConstraintSet out;
  int line_number = 0;
  for (const std::string& raw : Split(input, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    auto constraint = ParseConstraint(line);
    if (!constraint.ok()) {
      return Status::ParseError("constraints:" + std::to_string(line_number) +
                                ": " + constraint.status().message());
    }
    out.Add(std::move(constraint).value());
  }
  return out;
}

}  // namespace xicc
