#include "dtd/dtd.h"

#include <functional>

#include "base/strings.h"

namespace xicc {

const std::vector<std::string>& Dtd::AttributesOf(
    const std::string& name) const {
  static const std::vector<std::string> kEmpty;
  auto it = attributes_.find(name);
  return it == attributes_.end() ? kEmpty : it->second;
}

bool Dtd::HasAttribute(const std::string& element,
                       const std::string& attr) const {
  auto it = attributes_.find(element);
  if (it == attributes_.end()) return false;
  for (const std::string& a : it->second) {
    if (a == attr) return true;
  }
  return false;
}

AttrKind Dtd::AttributeKind(const std::string& element,
                            const std::string& attr) const {
  auto it = attr_kinds_.find({element, attr});
  return it == attr_kinds_.end() ? AttrKind::kCdata : it->second;
}

size_t Dtd::Size() const {
  size_t size = elements_.size();
  for (const auto& [name, content] : content_) size += content->Size();
  for (const auto& [name, attrs] : attributes_) size += attrs.size();
  return size;
}

std::vector<std::pair<std::string, std::string>> Dtd::AllAttributePairs()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& element : elements_) {
    for (const std::string& attr : AttributesOf(element)) {
      out.emplace_back(element, attr);
    }
  }
  return out;
}

std::string Dtd::ToString() const {
  std::string out;
  for (const std::string& element : elements_) {
    out += "<!ELEMENT " + element + " ";
    const RegexPtr& content = content_.at(element);
    switch (content->kind()) {
      case Regex::Kind::kString:
        out += "(#PCDATA)";
        break;
      case Regex::Kind::kElement:
        // Bare names are not valid DTD content syntax; wrap them.
        out += "(" + content->ToString() + ")";
        break;
      default:
        out += content->ToString();
    }
    out += ">\n";
    const auto& attrs = AttributesOf(element);
    if (!attrs.empty()) {
      out += "<!ATTLIST " + element;
      for (const std::string& attr : attrs) {
        const char* type = "CDATA";
        switch (AttributeKind(element, attr)) {
          case AttrKind::kId:
            type = "ID";
            break;
          case AttrKind::kIdref:
            type = "IDREF";
            break;
          default:
            break;
        }
        out += " " + attr + " " + type + " #REQUIRED";
      }
      out += ">\n";
    }
  }
  return out;
}

DtdBuilder& DtdBuilder::AddElement(const std::string& name, RegexPtr content) {
  if (content_.emplace(name, content).second) {
    order_.push_back(name);
  } else {
    content_[name] = std::move(content);
  }
  return *this;
}

DtdBuilder& DtdBuilder::AddAttribute(const std::string& name,
                                     const std::string& attr, AttrKind kind) {
  attributes_[name].insert(attr);
  if (kind != AttrKind::kCdata) attr_kinds_[{name, attr}] = kind;
  return *this;
}

DtdBuilder& DtdBuilder::SetRoot(const std::string& name) {
  root_ = name;
  return *this;
}

Result<Dtd> DtdBuilder::Build() const {
  if (order_.empty()) {
    return Status::InvalidArgument("DTD declares no element types");
  }
  std::string root = root_.empty() ? order_.front() : root_;
  if (content_.find(root) == content_.end()) {
    return Status::InvalidArgument("root element type '" + root +
                                   "' is not declared");
  }

  // Validate names and content-model references; detect root occurrences.
  for (const std::string& name : order_) {
    if (!IsValidName(name)) {
      return Status::InvalidArgument("invalid element type name '" + name +
                                     "'");
    }
  }
  Status deferred = Status::Ok();
  std::function<void(const Regex&, const std::string&)> visit =
      [&](const Regex& node, const std::string& owner) {
        if (!deferred.ok()) return;
        switch (node.kind()) {
          case Regex::Kind::kElement:
            if (content_.find(node.name()) == content_.end()) {
              deferred = Status::InvalidArgument(
                  "content model of '" + owner +
                  "' references undeclared element type '" + node.name() +
                  "'");
            } else if (node.name() == root) {
              deferred = Status::InvalidArgument(
                  "root element type '" + root +
                  "' occurs in the content model of '" + owner +
                  "' (the model requires the root to be top-level only)");
            }
            break;
          case Regex::Kind::kUnion:
          case Regex::Kind::kConcat:
            visit(*node.left(), owner);
            visit(*node.right(), owner);
            break;
          case Regex::Kind::kStar:
            visit(*node.child(), owner);
            break;
          case Regex::Kind::kEpsilon:
          case Regex::Kind::kString:
            break;
        }
      };
  for (const auto& [name, content] : content_) visit(*content, name);
  if (!deferred.ok()) return deferred;

  for (const auto& [element, attrs] : attributes_) {
    if (content_.find(element) == content_.end()) {
      return Status::InvalidArgument(
          "attributes declared for undeclared element type '" + element +
          "'");
    }
    for (const std::string& attr : attrs) {
      if (!IsValidName(attr)) {
        return Status::InvalidArgument("invalid attribute name '" + attr +
                                       "' on element type '" + element + "'");
      }
    }
  }

  Dtd dtd;
  dtd.root_ = std::move(root);
  dtd.elements_ = order_;
  dtd.content_ = content_;
  for (const auto& [element, attrs] : attributes_) {
    dtd.attributes_[element] =
        std::vector<std::string>(attrs.begin(), attrs.end());
  }
  dtd.attr_kinds_ = attr_kinds_;
  return dtd;
}

}  // namespace xicc
