#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "dtd/regex.h"

namespace xicc {

/// Word membership for content-model regular expressions via the Glushkov
/// (position) automaton.
///
/// Construction is the classic first/last/follow computation: each kString /
/// kElement leaf becomes a position; the automaton has one state per position
/// plus an initial state and is ε-free. Matching simulates the NFA over
/// position sets, memoizing the subset construction lazily, so repeated
/// validation against the same content model amortizes to DFA speed.
class ContentModelMatcher {
 public:
  explicit ContentModelMatcher(const RegexPtr& regex);

  /// True iff the label word (element-type names, with "S" for text nodes)
  /// is in the language of the content model.
  bool Matches(const std::vector<std::string>& word) const;

  /// Materializes the full subset construction eagerly, up to `max_states`
  /// DFA states. Returns true on success; the matcher is then immutable and
  /// every const method is safe to call from multiple threads concurrently
  /// (the lazy path mutates memo tables on first sight and is NOT). The
  /// closure only needs transitions over the symbols that actually occur as
  /// positions — any other symbol steps to the dead state without a lookup
  /// miss being recorded. On failure (state blowup past the cap) the matcher
  /// stays in its lazy, single-threaded mode and keeps working.
  bool Freeze(size_t max_states = 4096);
  bool frozen() const { return frozen_; }

  /// Stepwise interface for streaming validation. States are small ints:
  /// kStartState before any symbol, kDeadState once no run survives,
  /// otherwise a lazily-created DFA state.
  static constexpr int kStartState = -2;
  static constexpr int kDeadState = -1;
  /// Consumes one symbol; returns the successor state (possibly dead).
  int Step(int state, const std::string& symbol) const;
  /// True iff the word consumed so far is in the language.
  bool AcceptsAt(int state) const;

  /// Number of positions (NFA states minus the initial state).
  size_t PositionCount() const { return symbols_.size(); }

  /// Dense export of a frozen automaton for artifact serialization
  /// (core/artifact): `transitions` is row-major [num_states x
  /// alphabet.size()], column j steps on alphabet[j], kDeadState (-1)
  /// encodes death; `start_row` is the start state's row. Requires
  /// frozen(); works for both map-backed and flat-loaded matchers.
  struct DenseFrozen {
    std::vector<std::string> symbols;    // Position symbols (PositionCount).
    std::vector<std::string> alphabet;   // Sorted distinct symbols.
    std::vector<int32_t> start_row;      // [alphabet.size()]
    std::vector<int32_t> transitions;    // [num_states * alphabet.size()]
    size_t num_states = 0;
    std::vector<bool> accepting;         // [num_states]
    bool nullable = false;
  };
  DenseFrozen ExportFrozen() const;

  /// A frozen automaton whose transition tables live in externally owned
  /// memory — the zero-copy view a mmap'd artifact hands out. `backing`
  /// keeps that memory alive for the matcher's lifetime; when it is null
  /// the tables are copied instead of referenced.
  struct FrozenView {
    std::vector<std::string> symbols;
    std::vector<std::string> alphabet;
    const int32_t* start_row = nullptr;   // [alphabet.size()]
    const int32_t* transitions = nullptr; // [num_states * alphabet.size()]
    size_t num_states = 0;
    std::vector<bool> accepting;
    bool nullable = false;
    std::shared_ptr<const void> backing;
  };

  /// Reconstructs a frozen matcher from a deserialized view, validating
  /// every state id is in [kDeadState, num_states) so a corrupt (but
  /// checksum-colliding) table can never index out of bounds. The result is
  /// immutable and thread-safe like any frozen matcher.
  static Result<std::shared_ptr<const ContentModelMatcher>> FromFrozenView(
      FrozenView view);

  /// True for matchers rebuilt by FromFrozenView (flat transition tables,
  /// possibly borrowing artifact memory).
  bool frozen_flat() const { return flat_; }

 private:
  ContentModelMatcher() = default;

  using PositionSet = std::set<int>;

  /// DFA state id for a position set, creating it on first sight.
  int StateFor(const PositionSet& positions) const;

  std::vector<std::string> symbols_;       // Symbol at each position.
  PositionSet first_;                      // Positions reachable first.
  std::set<int> last_;                     // Accepting positions.
  std::vector<PositionSet> follow_;        // follow(p).
  bool nullable_ = false;

  // Lazy subset construction; read-only once frozen_ is set.
  mutable std::map<PositionSet, int> state_ids_;
  mutable std::vector<PositionSet> states_;
  mutable std::vector<bool> accepting_;
  mutable std::vector<std::map<std::string, int>> transitions_;
  std::map<std::string, int> frozen_start_;  // Start transitions, frozen only.
  bool frozen_ = false;

  // Flat frozen representation (FromFrozenView): dense row-major tables,
  // symbol resolved to a column via flat_col_. Null in matchers built from
  // a regex. When owned_tables_ is empty the pointers borrow from backing_.
  bool flat_ = false;
  std::map<std::string, int> flat_col_;
  const int32_t* flat_start_ = nullptr;
  const int32_t* flat_transitions_ = nullptr;
  size_t flat_num_states_ = 0;
  std::vector<int32_t> owned_tables_;
  std::shared_ptr<const void> backing_;
};

}  // namespace xicc
