#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dtd/regex.h"

namespace xicc {

/// Word membership for content-model regular expressions via the Glushkov
/// (position) automaton.
///
/// Construction is the classic first/last/follow computation: each kString /
/// kElement leaf becomes a position; the automaton has one state per position
/// plus an initial state and is ε-free. Matching simulates the NFA over
/// position sets, memoizing the subset construction lazily, so repeated
/// validation against the same content model amortizes to DFA speed.
class ContentModelMatcher {
 public:
  explicit ContentModelMatcher(const RegexPtr& regex);

  /// True iff the label word (element-type names, with "S" for text nodes)
  /// is in the language of the content model.
  bool Matches(const std::vector<std::string>& word) const;

  /// Materializes the full subset construction eagerly, up to `max_states`
  /// DFA states. Returns true on success; the matcher is then immutable and
  /// every const method is safe to call from multiple threads concurrently
  /// (the lazy path mutates memo tables on first sight and is NOT). The
  /// closure only needs transitions over the symbols that actually occur as
  /// positions — any other symbol steps to the dead state without a lookup
  /// miss being recorded. On failure (state blowup past the cap) the matcher
  /// stays in its lazy, single-threaded mode and keeps working.
  bool Freeze(size_t max_states = 4096);
  bool frozen() const { return frozen_; }

  /// Stepwise interface for streaming validation. States are small ints:
  /// kStartState before any symbol, kDeadState once no run survives,
  /// otherwise a lazily-created DFA state.
  static constexpr int kStartState = -2;
  static constexpr int kDeadState = -1;
  /// Consumes one symbol; returns the successor state (possibly dead).
  int Step(int state, const std::string& symbol) const;
  /// True iff the word consumed so far is in the language.
  bool AcceptsAt(int state) const;

  /// Number of positions (NFA states minus the initial state).
  size_t PositionCount() const { return symbols_.size(); }

 private:
  using PositionSet = std::set<int>;

  /// DFA state id for a position set, creating it on first sight.
  int StateFor(const PositionSet& positions) const;

  std::vector<std::string> symbols_;       // Symbol at each position.
  PositionSet first_;                      // Positions reachable first.
  std::set<int> last_;                     // Accepting positions.
  std::vector<PositionSet> follow_;        // follow(p).
  bool nullable_ = false;

  // Lazy subset construction; read-only once frozen_ is set.
  mutable std::map<PositionSet, int> state_ids_;
  mutable std::vector<PositionSet> states_;
  mutable std::vector<bool> accepting_;
  mutable std::vector<std::map<std::string, int>> transitions_;
  std::map<std::string, int> frozen_start_;  // Start transitions, frozen only.
  bool frozen_ = false;
};

}  // namespace xicc
