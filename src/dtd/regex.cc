#include "dtd/regex.h"

#include <cassert>

namespace xicc {

namespace {
// shared_ptr factory with access to the private constructor.
struct RegexFactory : Regex {};
}  // namespace

RegexPtr Regex::Epsilon() {
  static const RegexPtr kInstance(new Regex(Kind::kEpsilon));
  return kInstance;
}

RegexPtr Regex::Str() {
  static const RegexPtr kInstance(new Regex(Kind::kString));
  return kInstance;
}

RegexPtr Regex::Elem(std::string name) {
  auto* node = new Regex(Kind::kElement);
  node->name_ = std::move(name);
  return RegexPtr(node);
}

RegexPtr Regex::Union(RegexPtr left, RegexPtr right) {
  assert(left && right);
  auto* node = new Regex(Kind::kUnion);
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return RegexPtr(node);
}

RegexPtr Regex::Concat(RegexPtr left, RegexPtr right) {
  assert(left && right);
  auto* node = new Regex(Kind::kConcat);
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return RegexPtr(node);
}

RegexPtr Regex::Star(RegexPtr child) {
  assert(child);
  auto* node = new Regex(Kind::kStar);
  node->left_ = std::move(child);
  return RegexPtr(node);
}

RegexPtr Regex::ConcatAll(std::vector<RegexPtr> parts) {
  if (parts.empty()) return Epsilon();
  RegexPtr out = parts.back();
  for (size_t i = parts.size() - 1; i-- > 0;) {
    out = Concat(parts[i], std::move(out));
  }
  return out;
}

RegexPtr Regex::UnionAll(std::vector<RegexPtr> parts) {
  assert(!parts.empty());
  RegexPtr out = parts.back();
  for (size_t i = parts.size() - 1; i-- > 0;) {
    out = Union(parts[i], std::move(out));
  }
  return out;
}

RegexPtr Regex::Optional(RegexPtr child) {
  return Union(std::move(child), Epsilon());
}

RegexPtr Regex::Plus(RegexPtr child) {
  RegexPtr star = Star(child);
  return Concat(std::move(child), std::move(star));
}

bool Regex::Nullable() const {
  switch (kind_) {
    case Kind::kEpsilon:
    case Kind::kStar:
      return true;
    case Kind::kString:
    case Kind::kElement:
      return false;
    case Kind::kUnion:
      return left_->Nullable() || right_->Nullable();
    case Kind::kConcat:
      return left_->Nullable() && right_->Nullable();
  }
  return false;
}

size_t Regex::Size() const {
  switch (kind_) {
    case Kind::kEpsilon:
    case Kind::kString:
    case Kind::kElement:
      return 1;
    case Kind::kUnion:
    case Kind::kConcat:
      return 1 + left_->Size() + right_->Size();
    case Kind::kStar:
      return 1 + left_->Size();
  }
  return 1;
}

std::string Regex::ToString() const {
  switch (kind_) {
    case Kind::kEpsilon:
      return "EMPTY";
    case Kind::kString:
      return "#PCDATA";
    case Kind::kElement:
      return name_;
    case Kind::kUnion:
      // ε-branches render as '?', the only nested form ParseDtd accepts
      // ("EMPTY" is a whole content spec, not an atom) — keeps
      // Dtd::ToString() round-trippable through the parser.
      if (right_->kind_ == Kind::kEpsilon) {
        return "(" + left_->ToString() + ")?";
      }
      if (left_->kind_ == Kind::kEpsilon) {
        return "(" + right_->ToString() + ")?";
      }
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case Kind::kConcat:
      if (left_->kind_ == Kind::kEpsilon) {
        return "(" + right_->ToString() + ")";
      }
      if (right_->kind_ == Kind::kEpsilon) {
        return "(" + left_->ToString() + ")";
      }
      return "(" + left_->ToString() + ", " + right_->ToString() + ")";
    case Kind::kStar:
      return "(" + left_->ToString() + ")*";
  }
  return "?";
}

bool Regex::Equal(const Regex& a, const Regex& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Kind::kEpsilon:
    case Kind::kString:
      return true;
    case Kind::kElement:
      return a.name_ == b.name_;
    case Kind::kUnion:
    case Kind::kConcat:
      return Equal(*a.left_, *b.left_) && Equal(*a.right_, *b.right_);
    case Kind::kStar:
      return Equal(*a.left_, *b.left_);
  }
  return false;
}

}  // namespace xicc
