#pragma once

#include <set>
#include <string>

#include "base/status.h"
#include "dtd/dtd.h"

namespace xicc {

/// The simplified DTD D_N of Section 4.1: same trees up to the insertion of
/// synthetic intermediate elements, but every production has one of the
/// five simple forms
///
///   τ → τ1,τ2   τ → τ1|τ2   τ → τ1   τ → S   τ → ε
///
/// where τ1, τ2 range over E ∪ N ∪ {S}. Lemma 4.3: an XML tree valid w.r.t.
/// D satisfying Σ exists iff one valid w.r.t. D_N satisfying Σ exists, and
/// |ext(τ)| / ext(τ.l) agree for every original type τ.
struct SimplifiedDtd {
  Dtd dtd;
  /// N: the fresh element types introduced; they carry no attributes.
  std::set<std::string> synthetic;

  bool IsSynthetic(const std::string& type) const {
    return synthetic.count(type) > 0;
  }
};

/// True iff every production of `dtd` already has a simple form.
bool IsSimpleDtd(const Dtd& dtd);

/// Runs the rewriting of Section 4.1 (linear time, linear output size):
///   α1,α2 / α1|α2  → binary nodes over atoms, fresh types for non-atoms;
///   α*             → fresh τ1 with τ1 → ε | (α, τ1), recursively simplified.
/// Synthetic names are derived from the owning element type and are
/// guaranteed fresh.
Result<SimplifiedDtd> SimplifyDtd(const Dtd& dtd);

}  // namespace xicc
