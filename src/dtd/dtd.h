#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "dtd/regex.h"

namespace xicc {

/// Declared type of an attribute. The paper's model treats every attribute
/// as string-valued and required; the kinds are retained so the ID/IDREF
/// sublanguage of DTDs can be translated into constraints (see
/// constraints/id_idref.h and footnote 1 of the paper).
enum class AttrKind {
  kCdata,  ///< Plain string (the model's native notion).
  kId,     ///< XML ID: document-wide unique.
  kIdref,  ///< XML IDREF: must match some ID in the document.
  kOther,  ///< Enumerations, NMTOKEN, IDREFS, … — treated as strings.
};

/// A DTD D = (E, A, P, R, r) per Definition 2.1:
///  - E: element types, in declaration order;
///  - A: attributes (the union of all R(τ));
///  - P: element type definitions (content-model regexes);
///  - R: attributes defined for each element type;
///  - r: the root element type.
///
/// Invariants established by DtdBuilder::Build:
///  - every element type mentioned in a content model is declared;
///  - the root is declared and occurs in no content model (the paper's
///    standing assumption);
///  - names are valid XML names.
class Dtd {
 public:
  const std::string& root() const { return root_; }
  /// E, in declaration order.
  const std::vector<std::string>& elements() const { return elements_; }
  bool HasElement(const std::string& name) const {
    return content_.count(name) > 0;
  }
  /// P(τ). τ must be declared.
  const RegexPtr& ContentOf(const std::string& name) const {
    return content_.at(name);
  }
  /// R(τ), sorted. τ must be declared.
  const std::vector<std::string>& AttributesOf(const std::string& name) const;
  bool HasAttribute(const std::string& element,
                    const std::string& attr) const;
  /// Declared kind of (element, attr); kCdata when undeclared.
  AttrKind AttributeKind(const std::string& element,
                         const std::string& attr) const;

  /// |D|: the size measure used in the complexity results — element count
  /// plus total content-model AST size plus attribute count.
  size_t Size() const;

  /// All (τ, l) pairs with l ∈ R(τ), in deterministic order.
  std::vector<std::pair<std::string, std::string>> AllAttributePairs() const;

  /// Renders as `<!ELEMENT ...>` / `<!ATTLIST ...>` declarations.
  std::string ToString() const;

 private:
  friend class DtdBuilder;

  std::string root_;
  std::vector<std::string> elements_;
  std::map<std::string, RegexPtr> content_;
  std::map<std::string, std::vector<std::string>> attributes_;
  std::map<std::pair<std::string, std::string>, AttrKind> attr_kinds_;
};

/// Incremental construction of a Dtd with validation at Build time.
class DtdBuilder {
 public:
  /// Declares element type `name` with content model `content`. Redeclaring
  /// a name overwrites its content model.
  DtdBuilder& AddElement(const std::string& name, RegexPtr content);
  /// Declares attribute `attr` for element type `name` (idempotent; a
  /// redeclaration may upgrade the kind).
  DtdBuilder& AddAttribute(const std::string& name, const std::string& attr,
                           AttrKind kind = AttrKind::kCdata);
  /// Sets the root element type. Defaults to the first declared element.
  DtdBuilder& SetRoot(const std::string& name);

  /// Validates and produces the Dtd. Fails if a content model references an
  /// undeclared element type, the root is missing or occurs in a content
  /// model, an attribute is declared for an undeclared element, or a name is
  /// not a valid XML name.
  Result<Dtd> Build() const;

 private:
  std::string root_;
  std::vector<std::string> order_;
  std::map<std::string, RegexPtr> content_;
  std::map<std::string, std::set<std::string>> attributes_;
  std::map<std::pair<std::string, std::string>, AttrKind> attr_kinds_;
};

}  // namespace xicc
