#include "dtd/compiled.h"

namespace xicc {

DtdFacts ComputeDtdFacts(const Dtd& dtd) {
  DtdFacts facts;
  facts.productive = ProductiveElements(dtd);
  facts.reachable = ReachableElements(dtd);
  facts.has_valid_tree = DtdHasValidTree(dtd);
  for (const std::string& type : dtd.elements()) {
    facts.multiplicity[type] = MaxMultiplicity(dtd, type);
  }
  return facts;
}

CompiledContentModels CompiledContentModels::Build(const Dtd& dtd,
                                                   size_t max_states) {
  CompiledContentModels out;
  for (const std::string& type : dtd.elements()) {
    auto matcher = std::make_shared<ContentModelMatcher>(dtd.ContentOf(type));
    if (matcher->Freeze(max_states)) {
      out.matchers_.emplace(type, std::move(matcher));
    }
  }
  return out;
}

void CompiledContentModels::InsertLoaded(
    const std::string& type,
    std::shared_ptr<const ContentModelMatcher> matcher) {
  matchers_.insert_or_assign(type, std::move(matcher));
}

const ContentModelMatcher* CompiledContentModels::MatcherFor(
    const std::string& type) const {
  auto it = matchers_.find(type);
  return it == matchers_.end() ? nullptr : it->second.get();
}

}  // namespace xicc
