#pragma once

#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "xml/tree.h"

namespace xicc {

/// One validity defect found while checking a tree against a DTD.
struct DtdViolation {
  NodeId node;
  std::string message;
};

struct ValidationReport {
  bool valid = true;
  std::vector<DtdViolation> violations;

  /// All messages joined with newlines ("valid" when empty).
  std::string ToString() const;
};

struct ValidateOptions {
  /// Treat an element with no children whose content model requires exactly
  /// one text child (P(τ) accepts the word "S") as carrying an empty text
  /// node. Parsers commonly drop empty/whitespace text, so this is on by
  /// default.
  bool implicit_empty_text = true;
};

class CompiledContentModels;

/// Checks T |= D per Definition 2.2: every element's type is declared, its
/// child label word is in L(P(τ)), and it carries exactly the attributes
/// R(τ). Collects all violations rather than stopping at the first.
ValidationReport ValidateXml(const XmlTree& tree, const Dtd& dtd,
                             const ValidateOptions& options = {});

/// Same check, but content models are matched through `models` (the frozen
/// Glushkov DFAs of a CompiledDtd) where available instead of rebuilding the
/// automata per call. `models` may be null (plain fallback) and must have
/// been built from a DTD with identical content models. Thread-safe for
/// concurrent calls sharing one `models`.
ValidationReport ValidateXml(const XmlTree& tree, const Dtd& dtd,
                             const CompiledContentModels* models,
                             const ValidateOptions& options);

}  // namespace xicc
