#include "dtd/simplify.h"

#include <functional>
#include <map>

namespace xicc {

namespace {

bool IsAtom(const Regex& node) {
  return node.kind() == Regex::Kind::kElement ||
         node.kind() == Regex::Kind::kString;
}

}  // namespace

bool IsSimpleDtd(const Dtd& dtd) {
  for (const std::string& type : dtd.elements()) {
    const Regex& content = *dtd.ContentOf(type);
    switch (content.kind()) {
      case Regex::Kind::kEpsilon:
      case Regex::Kind::kString:
      case Regex::Kind::kElement:
        break;
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat:
        if (!IsAtom(*content.left()) || !IsAtom(*content.right())) {
          return false;
        }
        break;
      case Regex::Kind::kStar:
        return false;
    }
  }
  return true;
}

Result<SimplifiedDtd> SimplifyDtd(const Dtd& dtd) {
  DtdBuilder builder;
  std::set<std::string> synthetic;
  std::map<std::string, int> counters;  // Fresh-name counters per owner.

  auto fresh_name = [&](const std::string& owner) {
    for (;;) {
      int n = ++counters[owner];
      std::string name = "_" + owner + "." + std::to_string(n);
      if (!dtd.HasElement(name) && synthetic.count(name) == 0) return name;
    }
  };

  // process(name, α) installs a simple production for `name`, introducing
  // fresh types for non-atomic operands. `owner` tracks the original element
  // type for fresh-name generation.
  std::function<void(const std::string&, const RegexPtr&, const std::string&)>
      process = [&](const std::string& name, const RegexPtr& alpha,
                    const std::string& owner) {
        // operand(): an atom stays inline; anything else becomes a fresh
        // element type processed recursively.
        auto operand = [&](const RegexPtr& part) -> RegexPtr {
          if (IsAtom(*part)) return part;
          std::string sub = fresh_name(owner);
          synthetic.insert(sub);
          process(sub, part, owner);
          return Regex::Elem(sub);
        };

        switch (alpha->kind()) {
          case Regex::Kind::kEpsilon:
          case Regex::Kind::kString:
          case Regex::Kind::kElement:
            builder.AddElement(name, alpha);
            break;
          case Regex::Kind::kUnion:
            builder.AddElement(
                name, Regex::Union(operand(alpha->left()),
                                   operand(alpha->right())));
            break;
          case Regex::Kind::kConcat:
            builder.AddElement(
                name, Regex::Concat(operand(alpha->left()),
                                    operand(alpha->right())));
            break;
          case Regex::Kind::kStar: {
            // τ → α*  becomes  τ → τ1 with τ1 → ε | (α, τ1). When `name` is
            // itself synthetic it can serve as the recursion variable τ1
            // directly (no constraint mentions it, and its ext counts are
            // internal), which matches the paper's worked example D_N1.
            if (synthetic.count(name) > 0) {
              RegexPtr unrolled = Regex::Union(
                  Regex::Epsilon(),
                  Regex::Concat(alpha->child(), Regex::Elem(name)));
              process(name, unrolled, owner);
            } else {
              std::string tau1 = fresh_name(owner);
              synthetic.insert(tau1);
              builder.AddElement(name, Regex::Elem(tau1));
              RegexPtr unrolled = Regex::Union(
                  Regex::Epsilon(),
                  Regex::Concat(alpha->child(), Regex::Elem(tau1)));
              process(tau1, unrolled, owner);
            }
            break;
          }
        }
      };

  for (const std::string& type : dtd.elements()) {
    process(type, dtd.ContentOf(type), type);
    for (const std::string& attr : dtd.AttributesOf(type)) {
      builder.AddAttribute(type, attr);
    }
  }
  builder.SetRoot(dtd.root());

  XICC_ASSIGN_OR_RETURN(Dtd simple, builder.Build());
  SimplifiedDtd out;
  out.dtd = std::move(simple);
  out.synthetic = std::move(synthetic);
  return out;
}

}  // namespace xicc
