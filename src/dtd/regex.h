#pragma once

#include <memory>
#include <string>
#include <vector>

namespace xicc {

class Regex;
/// Content-model expressions are immutable and freely shared.
using RegexPtr = std::shared_ptr<const Regex>;

/// Content-model regular expression over element types, per Definition 2.1:
///
///   α ::= S | τ' | ε | α|α | α,α | α*
///
/// where S is the string type and τ' ranges over element types. Union and
/// concatenation are binary (the DTD parser folds longer sequences into
/// right-nested binaries), which matches the grammar the simplification of
/// Section 4.1 is defined on.
class Regex {
 public:
  enum class Kind {
    kEpsilon,  ///< ε — the empty word.
    kString,   ///< S — string type (#PCDATA).
    kElement,  ///< τ' — a single element type.
    kUnion,    ///< α1 | α2.
    kConcat,   ///< α1 , α2.
    kStar,     ///< α1* — Kleene closure.
  };

  static RegexPtr Epsilon();
  static RegexPtr Str();
  static RegexPtr Elem(std::string name);
  static RegexPtr Union(RegexPtr left, RegexPtr right);
  static RegexPtr Concat(RegexPtr left, RegexPtr right);
  static RegexPtr Star(RegexPtr child);

  /// Right-folds a list into nested binary concats; empty list is ε,
  /// singleton is the element itself.
  static RegexPtr ConcatAll(std::vector<RegexPtr> parts);
  /// Right-folds a list into nested binary unions; must be nonempty.
  static RegexPtr UnionAll(std::vector<RegexPtr> parts);
  /// α? desugars to (α | ε).
  static RegexPtr Optional(RegexPtr child);
  /// α+ desugars to (α, α*).
  static RegexPtr Plus(RegexPtr child);

  Kind kind() const { return kind_; }
  /// Element-type name; only for kElement.
  const std::string& name() const { return name_; }
  /// Left operand of kUnion/kConcat.
  const RegexPtr& left() const { return left_; }
  /// Right operand of kUnion/kConcat.
  const RegexPtr& right() const { return right_; }
  /// Operand of kStar.
  const RegexPtr& child() const { return left_; }

  /// True if the language of this expression contains the empty word.
  bool Nullable() const;

  /// Number of AST nodes; the size measure used for complexity accounting.
  size_t Size() const;

  /// DTD-flavored rendering: "EMPTY", "#PCDATA", "(a,b)", "(a|b)", "(a)*".
  std::string ToString() const;

  /// Structural equality.
  static bool Equal(const Regex& a, const Regex& b);

 private:
  explicit Regex(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  RegexPtr left_;
  RegexPtr right_;
};

}  // namespace xicc
