#pragma once

#include <string_view>

#include "base/status.h"
#include "dtd/dtd.h"

namespace xicc {

/// Parses DTD markup declarations into a Dtd.
///
/// Accepted input is a sequence of `<!ELEMENT name content>` and
/// `<!ATTLIST name (attr TYPE DEFAULT)*>` declarations, optionally wrapped in
/// `<!DOCTYPE root [ ... ]>` (which also fixes the root element type;
/// otherwise the first declared element is the root). Comments are skipped.
///
/// Content models follow XML syntax: EMPTY, (#PCDATA), element names,
/// sequences `(a, b)`, choices `(a | b)`, and the occurrence operators
/// `?`, `*`, `+`. Mixed content `(#PCDATA | a | b)*` is accepted. `ANY` is
/// rejected — the paper's model (Definition 2.1) has no ANY.
///
/// Attribute declarations: the attribute type and default tokens (CDATA,
/// #REQUIRED, quoted defaults, enumerations) are accepted and ignored —
/// in the paper's model every declared attribute is required and
/// string-valued. ID/IDREF attributes are treated as plain attributes
/// (the paper explicitly sets DTD id-constraints aside; see footnote 1).
Result<Dtd> ParseDtd(std::string_view input);

}  // namespace xicc
