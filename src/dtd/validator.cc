#include "dtd/validator.h"

#include <map>

#include "base/strings.h"
#include "dtd/compiled.h"
#include "dtd/glushkov.h"

namespace xicc {

std::string ValidationReport::ToString() const {
  if (valid) return "valid";
  std::vector<std::string> lines;
  lines.reserve(violations.size());
  for (const DtdViolation& v : violations) {
    lines.push_back("node " + std::to_string(v.node) + ": " + v.message);
  }
  return Join(lines, "\n");
}

ValidationReport ValidateXml(const XmlTree& tree, const Dtd& dtd,
                             const ValidateOptions& options) {
  return ValidateXml(tree, dtd, /*models=*/nullptr, options);
}

ValidationReport ValidateXml(const XmlTree& tree, const Dtd& dtd,
                             const CompiledContentModels* models,
                             const ValidateOptions& options) {
  ValidationReport report;
  auto add = [&](NodeId node, std::string message) {
    report.valid = false;
    report.violations.push_back({node, std::move(message)});
  };

  if (tree.label(tree.root()) != dtd.root()) {
    add(tree.root(), "root is <" + tree.label(tree.root()) +
                         ">, DTD requires <" + dtd.root() + ">");
  }

  // One matcher per element type: the caller's frozen DFA when compiled,
  // a call-private lazy matcher otherwise.
  std::map<std::string, ContentModelMatcher> matchers;
  auto matcher_for = [&](const std::string& type) -> const ContentModelMatcher& {
    if (models != nullptr) {
      const ContentModelMatcher* compiled = models->MatcherFor(type);
      if (compiled != nullptr) return *compiled;
    }
    auto it = matchers.find(type);
    if (it == matchers.end()) {
      it = matchers.emplace(type, ContentModelMatcher(dtd.ContentOf(type)))
               .first;
    }
    return it->second;
  };

  for (NodeId node = 0; node < tree.size(); ++node) {
    if (!tree.IsElement(node)) continue;
    const std::string& type = tree.label(node);
    if (!dtd.HasElement(type)) {
      add(node, "element type '" + type + "' is not declared in the DTD");
      continue;
    }

    // Content model check.
    std::vector<std::string> word = tree.ChildLabelWord(node);
    const ContentModelMatcher& matcher = matcher_for(type);
    bool matches = matcher.Matches(word);
    if (!matches && options.implicit_empty_text && word.empty()) {
      matches = matcher.Matches({"S"});
    }
    if (!matches) {
      std::string rendered = word.empty() ? "(empty)" : Join(word, " ");
      add(node, "children of '" + type + "' are [" + rendered +
                    "], not in L(" + dtd.ContentOf(type)->ToString() + ")");
    }

    // Attribute check: exactly R(τ), each single-valued (guaranteed by the
    // tree representation).
    for (const std::string& required : dtd.AttributesOf(type)) {
      if (!tree.AttributeValue(node, required).has_value()) {
        add(node, "element '" + type + "' is missing required attribute '" +
                      required + "'");
      }
    }
    for (const auto& [name, value] : tree.attributes(node)) {
      if (!dtd.HasAttribute(type, name)) {
        add(node, "element '" + type + "' carries undeclared attribute '" +
                      name + "'");
      }
    }
  }
  return report;
}

}  // namespace xicc
