#include "dtd/dtd_parser.h"

#include <string>
#include <vector>

#include "base/strings.h"

namespace xicc {

namespace {

/// Content-model groups recurse one C++ frame per nesting level; bounding
/// the level turns `((((...))))` bombs into kInvalidArgument instead of a
/// stack overflow. Deeper nesting than this has no modelling value — the
/// Section 4.1 simplification flattens to depth ≤ 2 anyway.
constexpr size_t kMaxGroupDepth = 256;
/// DTDs are hand-written schemas, not documents; 16 MiB is far beyond any
/// legitimate one.
constexpr size_t kMaxInputBytes = 16 * 1024 * 1024;

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Dtd> Parse() {
    if (input_.size() > kMaxInputBytes) {
      return Status::InvalidArgument(
          "dtd input of " + std::to_string(input_.size()) +
          " bytes exceeds the limit of " + std::to_string(kMaxInputBytes));
    }
    SkipMisc();
    if (Consume("<!DOCTYPE")) {
      SkipSpace();
      XICC_ASSIGN_OR_RETURN(std::string root, ParseName());
      builder_.SetRoot(root);
      have_root_ = true;
      SkipSpace();
      if (!Consume("[")) return Error("expected '[' after DOCTYPE name");
      XICC_RETURN_IF_ERROR(ParseDeclarations(/*in_subset=*/true));
      if (!Consume("]")) return Error("expected ']' closing DOCTYPE subset");
      SkipSpace();
      if (!Consume(">")) return Error("expected '>' closing DOCTYPE");
    } else {
      XICC_RETURN_IF_ERROR(ParseDeclarations(/*in_subset=*/false));
    }
    SkipMisc();
    if (!AtEnd()) return Error("unexpected content after declarations");
    return builder_.Build();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("dtd:" + std::to_string(line_) + ":" +
                              std::to_string(column_) + ": " + message);
  }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      Advance();
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else {
        return;
      }
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  Status ParseDeclarations(bool in_subset) {
    for (;;) {
      SkipMisc();
      if (AtEnd()) return Status::Ok();
      if (in_subset && Peek() == ']') return Status::Ok();
      if (Consume("<!ELEMENT")) {
        XICC_RETURN_IF_ERROR(ParseElementDecl());
      } else if (Consume("<!ATTLIST")) {
        XICC_RETURN_IF_ERROR(ParseAttlistDecl());
      } else if (Consume("<!ENTITY") || Consume("<!NOTATION")) {
        // Accepted and ignored: entities/notations have no counterpart in
        // the paper's model.
        while (!AtEnd() && !Consume(">")) Advance();
      } else {
        return Error("expected a markup declaration");
      }
    }
  }

  Status ParseElementDecl() {
    SkipSpace();
    XICC_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipSpace();
    XICC_ASSIGN_OR_RETURN(RegexPtr content, ParseContentSpec());
    SkipSpace();
    if (!Consume(">")) return Error("expected '>' closing <!ELEMENT>");
    builder_.AddElement(name, std::move(content));
    if (!have_root_) {
      builder_.SetRoot(name);
      have_root_ = true;
    }
    return Status::Ok();
  }

  Result<RegexPtr> ParseContentSpec() {
    if (Consume("EMPTY")) return Regex::Epsilon();
    if (Consume("ANY")) {
      return Error("ANY content is outside the model of the paper");
    }
    if (AtEnd() || Peek() != '(') return Error("expected content model");
    return ParseGroupOrAtom(/*depth=*/1);
  }

  /// cp ::= (name | group) ('?' | '*' | '+')?
  Result<RegexPtr> ParseCp(size_t depth) {
    SkipSpace();
    RegexPtr base;
    if (!AtEnd() && Peek() == '(') {
      XICC_ASSIGN_OR_RETURN(base, ParseGroupOrAtom(depth + 1));
    } else if (Consume("#PCDATA")) {
      base = Regex::Str();
    } else {
      XICC_ASSIGN_OR_RETURN(std::string name, ParseName());
      base = Regex::Elem(std::move(name));
    }
    return ApplyOccurrence(std::move(base));
  }

  Result<RegexPtr> ApplyOccurrence(RegexPtr base) {
    if (!AtEnd()) {
      if (Peek() == '?') {
        Advance();
        return Regex::Optional(std::move(base));
      }
      if (Peek() == '*') {
        Advance();
        return Regex::Star(std::move(base));
      }
      if (Peek() == '+') {
        Advance();
        return Regex::Plus(std::move(base));
      }
    }
    return base;
  }

  /// group ::= '(' cp ((',' cp)* | ('|' cp)*) ')' occurrence?
  Result<RegexPtr> ParseGroupOrAtom(size_t depth) {
    if (depth > kMaxGroupDepth) {
      return Status::InvalidArgument(
          "content-model group nesting exceeds the depth limit of " +
          std::to_string(kMaxGroupDepth));
    }
    if (!Consume("(")) return Error("expected '('");
    SkipSpace();
    std::vector<RegexPtr> parts;
    XICC_ASSIGN_OR_RETURN(RegexPtr first, ParseCp(depth));
    parts.push_back(std::move(first));
    SkipSpace();
    char sep = '\0';
    while (!AtEnd() && (Peek() == ',' || Peek() == '|')) {
      if (sep == '\0') {
        sep = Peek();
      } else if (Peek() != sep) {
        return Error("cannot mix ',' and '|' in one group");
      }
      Advance();
      XICC_ASSIGN_OR_RETURN(RegexPtr next, ParseCp(depth));
      parts.push_back(std::move(next));
      SkipSpace();
    }
    if (!Consume(")")) return Error("expected ')' closing group");
    RegexPtr group = sep == '|' ? Regex::UnionAll(std::move(parts))
                                : Regex::ConcatAll(std::move(parts));
    return ApplyOccurrence(std::move(group));
  }

  Status ParseAttlistDecl() {
    SkipSpace();
    XICC_ASSIGN_OR_RETURN(std::string element, ParseName());
    for (;;) {
      SkipSpace();
      if (Consume(">")) return Status::Ok();
      if (AtEnd()) return Error("unterminated <!ATTLIST>");
      XICC_ASSIGN_OR_RETURN(std::string attr, ParseName());
      // Attribute type: a name (CDATA/ID/IDREF/...) or an enumeration.
      // ID/IDREF kinds are recorded so they can be translated into
      // constraints (constraints/id_idref.h); everything else is a string.
      AttrKind kind = AttrKind::kCdata;
      SkipSpace();
      if (!AtEnd() && Peek() == '(') {
        while (!AtEnd() && !Consume(")")) Advance();
        kind = AttrKind::kOther;
      } else {
        XICC_ASSIGN_OR_RETURN(std::string type, ParseName());
        if (type == "ID") {
          kind = AttrKind::kId;
        } else if (type == "IDREF") {
          kind = AttrKind::kIdref;
        } else if (type != "CDATA") {
          kind = AttrKind::kOther;
        }
      }
      builder_.AddAttribute(element, attr, kind);
      // Skip the default declaration.
      SkipSpace();
      if (Consume("#REQUIRED") || Consume("#IMPLIED")) {
        // Nothing further.
      } else {
        Consume("#FIXED");
        SkipSpace();
        if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) {
          char quote = Peek();
          Advance();
          while (!AtEnd() && Peek() != quote) Advance();
          if (AtEnd()) return Error("unterminated default value");
          Advance();
        }
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  DtdBuilder builder_;
  bool have_root_ = false;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view input) {
  Parser parser(input);
  return parser.Parse();
}

}  // namespace xicc
