#include "dtd/glushkov.h"

#include <utility>

namespace xicc {

namespace {

/// first/last/nullable computed bottom-up over the AST; positions are
/// assigned to leaves in left-to-right order.
struct BuildResult {
  std::set<int> first;
  std::set<int> last;
  bool nullable;
};

class Builder {
 public:
  Builder(std::vector<std::string>* symbols, std::vector<std::set<int>>* follow)
      : symbols_(symbols), follow_(follow) {}

  BuildResult Visit(const Regex& node) {
    switch (node.kind()) {
      case Regex::Kind::kEpsilon:
        return {{}, {}, true};
      case Regex::Kind::kString:
        return Leaf("S");
      case Regex::Kind::kElement:
        return Leaf(node.name());
      case Regex::Kind::kUnion: {
        BuildResult a = Visit(*node.left());
        BuildResult b = Visit(*node.right());
        a.first.insert(b.first.begin(), b.first.end());
        a.last.insert(b.last.begin(), b.last.end());
        a.nullable = a.nullable || b.nullable;
        return a;
      }
      case Regex::Kind::kConcat: {
        BuildResult a = Visit(*node.left());
        BuildResult b = Visit(*node.right());
        for (int p : a.last) {
          (*follow_)[p].insert(b.first.begin(), b.first.end());
        }
        BuildResult out;
        out.first = a.first;
        if (a.nullable) out.first.insert(b.first.begin(), b.first.end());
        out.last = b.last;
        if (b.nullable) out.last.insert(a.last.begin(), a.last.end());
        out.nullable = a.nullable && b.nullable;
        return out;
      }
      case Regex::Kind::kStar: {
        BuildResult a = Visit(*node.child());
        for (int p : a.last) {
          (*follow_)[p].insert(a.first.begin(), a.first.end());
        }
        a.nullable = true;
        return a;
      }
    }
    return {{}, {}, true};
  }

 private:
  BuildResult Leaf(const std::string& symbol) {
    int pos = static_cast<int>(symbols_->size());
    symbols_->push_back(symbol);
    follow_->emplace_back();
    return {{pos}, {pos}, false};
  }

  std::vector<std::string>* symbols_;
  std::vector<std::set<int>>* follow_;
};

}  // namespace

ContentModelMatcher::ContentModelMatcher(const RegexPtr& regex) {
  Builder builder(&symbols_, &follow_);
  BuildResult root = builder.Visit(*regex);
  first_ = std::move(root.first);
  last_ = std::move(root.last);
  nullable_ = root.nullable;
}

int ContentModelMatcher::StateFor(const PositionSet& positions) const {
  auto [it, inserted] = state_ids_.emplace(positions, states_.size());
  if (inserted) {
    states_.push_back(positions);
    bool accept = false;
    for (int p : positions) {
      if (last_.count(p) > 0) {
        accept = true;
        break;
      }
    }
    accepting_.push_back(accept);
    transitions_.emplace_back();
  }
  return it->second;
}

int ContentModelMatcher::Step(int state, const std::string& symbol) const {
  // A DFA state is the set of *occupied* positions — positions whose symbol
  // was just consumed; from the start state the enterable positions are
  // `first`, afterwards the union of `follow`.
  if (state == kDeadState) return kDeadState;
  if (flat_) {
    // Flat-loaded matcher: dense row lookup, pure reads. A symbol with no
    // column has no position anywhere in the model and always dies; a
    // column hit implies the tables are non-empty (FromFrozenView checks).
    auto it = flat_col_.find(symbol);
    if (it == flat_col_.end()) return kDeadState;
    if (state == kStartState) return flat_start_[it->second];
    return flat_transitions_[static_cast<size_t>(state) * flat_col_.size() +
                             static_cast<size_t>(it->second)];
  }
  if (frozen_) {
    // Every reachable (state, position-symbol) transition was materialized
    // by Freeze(); a lookup miss can only mean a symbol with no position,
    // which always dies. Pure reads — safe under concurrent use.
    if (state == kStartState) {
      auto it = frozen_start_.find(symbol);
      return it == frozen_start_.end() ? kDeadState : it->second;
    }
    auto it = transitions_[state].find(symbol);
    return it == transitions_[state].end() ? kDeadState : it->second;
  }
  PositionSet next;
  if (state == kStartState) {
    for (int p : first_) {
      if (symbols_[p] == symbol) next.insert(p);
    }
  } else {
    auto it = transitions_[state].find(symbol);
    if (it != transitions_[state].end()) return it->second;
    for (int q : states_[state]) {
      for (int p : follow_[q]) {
        if (symbols_[p] == symbol) next.insert(p);
      }
    }
  }
  int next_state = next.empty() ? kDeadState : StateFor(next);
  if (state != kStartState) transitions_[state][symbol] = next_state;
  return next_state;
}

bool ContentModelMatcher::Freeze(size_t max_states) {
  if (frozen_) return true;
  // The only symbols that can lead anywhere are the position symbols; every
  // other symbol's successor set is empty (dead) and needs no table entry.
  std::set<std::string> alphabet(symbols_.begin(), symbols_.end());
  std::map<std::string, int> start;
  for (const std::string& symbol : alphabet) {
    int next = Step(kStartState, symbol);
    if (next != kDeadState) start[symbol] = next;
  }
  // BFS over the lazily numbered states: states_ grows monotonically as
  // Step discovers successors, so a simple index sweep reaches closure.
  for (size_t id = 0; id < states_.size(); ++id) {
    if (states_.size() > max_states) return false;
    for (const std::string& symbol : alphabet) {
      Step(static_cast<int>(id), symbol);
    }
  }
  if (states_.size() > max_states) return false;
  frozen_start_ = std::move(start);
  frozen_ = true;
  return true;
}

bool ContentModelMatcher::AcceptsAt(int state) const {
  if (state == kStartState) return nullable_;
  if (state == kDeadState) return false;
  return accepting_[state];
}

ContentModelMatcher::DenseFrozen ContentModelMatcher::ExportFrozen() const {
  DenseFrozen out;
  out.symbols = symbols_;
  out.nullable = nullable_;
  if (flat_) {
    out.alphabet.reserve(flat_col_.size());
    for (const auto& [symbol, col] : flat_col_) {
      (void)col;  // flat_col_ maps the sorted alphabet to 0..n-1 in order.
      out.alphabet.push_back(symbol);
    }
    out.num_states = flat_num_states_;
    out.accepting.assign(accepting_.begin(), accepting_.end());
    out.start_row.assign(flat_start_, flat_start_ + out.alphabet.size());
    out.transitions.assign(
        flat_transitions_,
        flat_transitions_ + flat_num_states_ * out.alphabet.size());
    return out;
  }
  // Map-backed frozen matcher: densify. Columns are the sorted distinct
  // position symbols (the same alphabet Freeze closed over); any symbol
  // outside it steps to the dead state and needs no column.
  const std::set<std::string> alphabet(symbols_.begin(), symbols_.end());
  out.alphabet.assign(alphabet.begin(), alphabet.end());
  out.num_states = states_.size();
  out.accepting.assign(accepting_.begin(), accepting_.end());
  out.start_row.reserve(out.alphabet.size());
  for (const std::string& symbol : out.alphabet) {
    auto it = frozen_start_.find(symbol);
    out.start_row.push_back(it == frozen_start_.end()
                                ? kDeadState
                                : static_cast<int32_t>(it->second));
  }
  out.transitions.reserve(out.num_states * out.alphabet.size());
  for (size_t state = 0; state < out.num_states; ++state) {
    for (const std::string& symbol : out.alphabet) {
      auto it = transitions_[state].find(symbol);
      out.transitions.push_back(it == transitions_[state].end()
                                    ? kDeadState
                                    : static_cast<int32_t>(it->second));
    }
  }
  return out;
}

Result<std::shared_ptr<const ContentModelMatcher>>
ContentModelMatcher::FromFrozenView(FrozenView view) {
  const size_t cols = view.alphabet.size();
  // The caps are far above anything Freeze(4096) can produce; they exist so
  // the size product below cannot overflow on hostile counts.
  constexpr size_t kMaxDim = size_t{1} << 24;
  if (view.num_states > kMaxDim || cols > kMaxDim) {
    return Status::InvalidArgument("frozen view dimensions implausible");
  }
  // Columns are identified positionally; the canonical order is sorted, and
  // accepting anything else would let one automaton have two encodings.
  for (size_t i = 1; i < cols; ++i) {
    if (view.alphabet[i - 1] >= view.alphabet[i]) {
      return Status::InvalidArgument("frozen view alphabet not sorted");
    }
  }
  const size_t cells = view.num_states * cols;
  if (cols > 0 && view.start_row == nullptr) {
    return Status::InvalidArgument("frozen view missing start row");
  }
  if (cells > 0 && view.transitions == nullptr) {
    return Status::InvalidArgument("frozen view missing transition table");
  }
  if (view.accepting.size() != view.num_states) {
    return Status::InvalidArgument("frozen view accepting/state count skew");
  }
  // Range-check every state id so a decoded table can never index out of
  // bounds, whatever the file contained.
  const auto in_range = [&](int32_t s) {
    return s >= kDeadState && s < static_cast<int32_t>(view.num_states);
  };
  for (size_t i = 0; i < cols; ++i) {
    if (!in_range(view.start_row[i])) {
      return Status::InvalidArgument("frozen view start state out of range");
    }
  }
  for (size_t i = 0; i < cells; ++i) {
    if (!in_range(view.transitions[i])) {
      return Status::InvalidArgument("frozen view transition out of range");
    }
  }

  auto matcher = std::shared_ptr<ContentModelMatcher>(
      new ContentModelMatcher());
  matcher->symbols_ = std::move(view.symbols);
  matcher->nullable_ = view.nullable;
  matcher->accepting_.assign(view.accepting.begin(), view.accepting.end());
  matcher->flat_ = true;
  matcher->frozen_ = true;
  matcher->flat_num_states_ = view.num_states;
  int col = 0;
  for (const std::string& symbol : view.alphabet) {
    auto [it, inserted] = matcher->flat_col_.emplace(symbol, col++);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("frozen view has duplicate alphabet");
    }
  }
  if (view.backing != nullptr) {
    // Zero-copy: borrow the artifact mapping and keep it alive.
    matcher->backing_ = std::move(view.backing);
    matcher->flat_start_ = view.start_row;
    matcher->flat_transitions_ = view.transitions;
  } else {
    // No owner to borrow from — copy the tables into the matcher.
    matcher->owned_tables_.reserve(cols + cells);
    matcher->owned_tables_.assign(view.start_row, view.start_row + cols);
    matcher->owned_tables_.insert(matcher->owned_tables_.end(),
                                  view.transitions,
                                  view.transitions + cells);
    matcher->flat_start_ = matcher->owned_tables_.data();
    matcher->flat_transitions_ = matcher->owned_tables_.data() + cols;
  }
  return std::shared_ptr<const ContentModelMatcher>(std::move(matcher));
}

bool ContentModelMatcher::Matches(const std::vector<std::string>& word) const {
  int state = kStartState;
  for (const std::string& symbol : word) {
    state = Step(state, symbol);
    if (state == kDeadState) return false;
  }
  return AcceptsAt(state);
}

}  // namespace xicc
