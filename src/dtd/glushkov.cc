#include "dtd/glushkov.h"

#include <utility>

namespace xicc {

namespace {

/// first/last/nullable computed bottom-up over the AST; positions are
/// assigned to leaves in left-to-right order.
struct BuildResult {
  std::set<int> first;
  std::set<int> last;
  bool nullable;
};

class Builder {
 public:
  Builder(std::vector<std::string>* symbols, std::vector<std::set<int>>* follow)
      : symbols_(symbols), follow_(follow) {}

  BuildResult Visit(const Regex& node) {
    switch (node.kind()) {
      case Regex::Kind::kEpsilon:
        return {{}, {}, true};
      case Regex::Kind::kString:
        return Leaf("S");
      case Regex::Kind::kElement:
        return Leaf(node.name());
      case Regex::Kind::kUnion: {
        BuildResult a = Visit(*node.left());
        BuildResult b = Visit(*node.right());
        a.first.insert(b.first.begin(), b.first.end());
        a.last.insert(b.last.begin(), b.last.end());
        a.nullable = a.nullable || b.nullable;
        return a;
      }
      case Regex::Kind::kConcat: {
        BuildResult a = Visit(*node.left());
        BuildResult b = Visit(*node.right());
        for (int p : a.last) {
          (*follow_)[p].insert(b.first.begin(), b.first.end());
        }
        BuildResult out;
        out.first = a.first;
        if (a.nullable) out.first.insert(b.first.begin(), b.first.end());
        out.last = b.last;
        if (b.nullable) out.last.insert(a.last.begin(), a.last.end());
        out.nullable = a.nullable && b.nullable;
        return out;
      }
      case Regex::Kind::kStar: {
        BuildResult a = Visit(*node.child());
        for (int p : a.last) {
          (*follow_)[p].insert(a.first.begin(), a.first.end());
        }
        a.nullable = true;
        return a;
      }
    }
    return {{}, {}, true};
  }

 private:
  BuildResult Leaf(const std::string& symbol) {
    int pos = static_cast<int>(symbols_->size());
    symbols_->push_back(symbol);
    follow_->emplace_back();
    return {{pos}, {pos}, false};
  }

  std::vector<std::string>* symbols_;
  std::vector<std::set<int>>* follow_;
};

}  // namespace

ContentModelMatcher::ContentModelMatcher(const RegexPtr& regex) {
  Builder builder(&symbols_, &follow_);
  BuildResult root = builder.Visit(*regex);
  first_ = std::move(root.first);
  last_ = std::move(root.last);
  nullable_ = root.nullable;
}

int ContentModelMatcher::StateFor(const PositionSet& positions) const {
  auto [it, inserted] = state_ids_.emplace(positions, states_.size());
  if (inserted) {
    states_.push_back(positions);
    bool accept = false;
    for (int p : positions) {
      if (last_.count(p) > 0) {
        accept = true;
        break;
      }
    }
    accepting_.push_back(accept);
    transitions_.emplace_back();
  }
  return it->second;
}

int ContentModelMatcher::Step(int state, const std::string& symbol) const {
  // A DFA state is the set of *occupied* positions — positions whose symbol
  // was just consumed; from the start state the enterable positions are
  // `first`, afterwards the union of `follow`.
  if (state == kDeadState) return kDeadState;
  if (frozen_) {
    // Every reachable (state, position-symbol) transition was materialized
    // by Freeze(); a lookup miss can only mean a symbol with no position,
    // which always dies. Pure reads — safe under concurrent use.
    if (state == kStartState) {
      auto it = frozen_start_.find(symbol);
      return it == frozen_start_.end() ? kDeadState : it->second;
    }
    auto it = transitions_[state].find(symbol);
    return it == transitions_[state].end() ? kDeadState : it->second;
  }
  PositionSet next;
  if (state == kStartState) {
    for (int p : first_) {
      if (symbols_[p] == symbol) next.insert(p);
    }
  } else {
    auto it = transitions_[state].find(symbol);
    if (it != transitions_[state].end()) return it->second;
    for (int q : states_[state]) {
      for (int p : follow_[q]) {
        if (symbols_[p] == symbol) next.insert(p);
      }
    }
  }
  int next_state = next.empty() ? kDeadState : StateFor(next);
  if (state != kStartState) transitions_[state][symbol] = next_state;
  return next_state;
}

bool ContentModelMatcher::Freeze(size_t max_states) {
  if (frozen_) return true;
  // The only symbols that can lead anywhere are the position symbols; every
  // other symbol's successor set is empty (dead) and needs no table entry.
  std::set<std::string> alphabet(symbols_.begin(), symbols_.end());
  std::map<std::string, int> start;
  for (const std::string& symbol : alphabet) {
    int next = Step(kStartState, symbol);
    if (next != kDeadState) start[symbol] = next;
  }
  // BFS over the lazily numbered states: states_ grows monotonically as
  // Step discovers successors, so a simple index sweep reaches closure.
  for (size_t id = 0; id < states_.size(); ++id) {
    if (states_.size() > max_states) return false;
    for (const std::string& symbol : alphabet) {
      Step(static_cast<int>(id), symbol);
    }
  }
  if (states_.size() > max_states) return false;
  frozen_start_ = std::move(start);
  frozen_ = true;
  return true;
}

bool ContentModelMatcher::AcceptsAt(int state) const {
  if (state == kStartState) return nullable_;
  if (state == kDeadState) return false;
  return accepting_[state];
}

bool ContentModelMatcher::Matches(const std::vector<std::string>& word) const {
  int state = kStartState;
  for (const std::string& symbol : word) {
    state = Step(state, symbol);
    if (state == kDeadState) return false;
  }
  return AcceptsAt(state);
}

}  // namespace xicc
