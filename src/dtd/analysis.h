#pragma once

#include <set>
#include <string>

#include "dtd/dtd.h"

namespace xicc {

/// Linear-time grammar analyses underlying Theorem 3.5 and Lemma 3.6. A DTD
/// is an extended context-free grammar (element types as nonterminals, S as
/// a terminal); these are the classic emptiness-style fixpoints, run with a
/// worklist over the and/or dependency graph of the content-model ASTs so the
/// total work is linear in |D|.

/// Element types τ that can derive a finite tree (the grammar's "productive"
/// nonterminals).
std::set<std::string> ProductiveElements(const Dtd& dtd);

/// Theorem 3.5(1): does any finite XML tree conform to `dtd`? Equivalent to
/// the root being productive. E.g. false for D2 = { db → foo, foo → foo }.
bool DtdHasValidTree(const Dtd& dtd);

/// Element types reachable from the root through content models (without
/// regard to productivity).
std::set<std::string> ReachableElements(const Dtd& dtd);

/// How many τ-elements a single valid tree can contain, saturated at 2:
enum class Multiplicity {
  kNone,        ///< No valid tree contains a τ element (or no valid tree at all).
  kExactlyOne,  ///< Some valid tree has one; none has two or more.
  kAtLeastTwo,  ///< Some valid tree has ≥ 2 τ elements (Lemma 3.6).
};

/// Lemma 3.6: decides in linear time whether some T |= D has |ext(τ)| > 1,
/// with the one/zero cases distinguished for free.
Multiplicity MaxMultiplicity(const Dtd& dtd, const std::string& type);

/// Convenience wrapper: true iff some valid tree has |ext(type)| > 1.
bool CanHaveTwo(const Dtd& dtd, const std::string& type);

/// True iff every valid tree contains at least one `type` element, i.e. the
/// root cannot derive a tree avoiding `type`. Used by the consistency checker
/// to decide whether a constraint's scope is vacuously empty. Returns false
/// when the DTD has no valid tree at all.
bool TypeIsUnavoidable(const Dtd& dtd, const std::string& type);

}  // namespace xicc
