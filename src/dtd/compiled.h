#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "dtd/analysis.h"
#include "dtd/dtd.h"
#include "dtd/glushkov.h"

namespace xicc {

/// The linear-time grammar facts of Section 3, computed once per DTD and
/// shared read-only across queries and threads (Theorem 3.5(1), Lemma 3.6).
struct DtdFacts {
  std::set<std::string> productive;
  std::set<std::string> reachable;
  bool has_valid_tree = false;
  /// Lemma 3.6 multiplicity per declared element type.
  std::map<std::string, Multiplicity> multiplicity;
};

DtdFacts ComputeDtdFacts(const Dtd& dtd);

/// One Glushkov matcher per element type, frozen into an immutable DFA so a
/// single instance can serve concurrent validations. Content models whose
/// subset construction blows past the state cap are simply not cached —
/// MatcherFor returns nullptr and the caller builds a private lazy matcher.
class CompiledContentModels {
 public:
  CompiledContentModels() = default;

  /// Builds and freezes a matcher for every element type of `dtd`.
  /// `max_states` caps the eager subset construction per content model.
  static CompiledContentModels Build(const Dtd& dtd, size_t max_states = 4096);

  /// The frozen matcher for `type`, or nullptr when the type is unknown or
  /// its DFA exceeded the freeze cap. Never returns an unfrozen matcher.
  const ContentModelMatcher* MatcherFor(const std::string& type) const;

  size_t size() const { return matchers_.size(); }

  /// Artifact-load hook (core/artifact): installs an already-frozen matcher
  /// for `type`, as Build would have. The matcher must be frozen; types the
  /// artifact omits (freeze-cap overflows at compile time) simply stay
  /// absent, preserving MatcherFor's nullptr contract.
  void InsertLoaded(const std::string& type,
                    std::shared_ptr<const ContentModelMatcher> matcher);

  /// Iteration for artifact serialization, in deterministic (sorted) order.
  const std::map<std::string, std::shared_ptr<const ContentModelMatcher>>&
  matchers() const {
    return matchers_;
  }

 private:
  // shared_ptr so CompiledContentModels itself stays cheaply copyable while
  // the (large) frozen DFAs are built exactly once.
  std::map<std::string, std::shared_ptr<const ContentModelMatcher>> matchers_;
};

}  // namespace xicc
