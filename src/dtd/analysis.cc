#include "dtd/analysis.h"

#include <deque>
#include <functional>
#include <map>
#include <vector>

namespace xicc {

namespace {

/// Worklist propagation over the and/or graph formed by the content-model
/// ASTs: a regex node is *derivable* when it can produce some word over
/// productive symbols; an element type is *productive* when its content root
/// is derivable. `banned` types are treated as never-productive (used to
/// decide avoidability in TypeIsUnavoidable).
std::set<std::string> ProductiveImpl(const Dtd& dtd,
                                     const std::string& banned) {
  struct AstNode {
    Regex::Kind kind;
    int left = -1;   // AST child ids for union/concat.
    int right = -1;
    std::string elem;        // For kElement: referenced type.
    int parent = -1;         // Dependent AST node.
    std::string owner;       // Element type whose P(τ) this AST belongs to.
    bool is_content_root = false;
    bool derivable = false;
    int pending = 0;  // For kConcat: children still unknown.
  };

  std::vector<AstNode> nodes;
  std::map<std::string, std::vector<int>> elem_leaves;  // type -> leaf ids.
  std::map<std::string, int> content_root;              // type -> root id.

  std::function<int(const Regex&, const std::string&)> build =
      [&](const Regex& regex, const std::string& owner) -> int {
    int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[id].kind = regex.kind();
    nodes[id].owner = owner;
    switch (regex.kind()) {
      case Regex::Kind::kElement:
        nodes[id].elem = regex.name();
        elem_leaves[regex.name()].push_back(id);
        break;
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat: {
        int left = build(*regex.left(), owner);
        int right = build(*regex.right(), owner);
        nodes[id].left = left;
        nodes[id].right = right;
        nodes[left].parent = id;
        nodes[right].parent = id;
        nodes[id].pending = 2;
        break;
      }
      case Regex::Kind::kStar: {
        // Star derives ε regardless of its child; the child subtree is
        // built only so ids stay consistent, but contributes nothing here.
        break;
      }
      case Regex::Kind::kEpsilon:
      case Regex::Kind::kString:
        break;
    }
    return id;
  };

  for (const std::string& type : dtd.elements()) {
    int root = build(*dtd.ContentOf(type), type);
    nodes[root].is_content_root = true;
    content_root[type] = root;
  }

  std::set<std::string> productive;
  std::deque<int> queue;

  auto mark_derivable = [&](int id) {
    if (nodes[id].derivable) return;
    nodes[id].derivable = true;
    queue.push_back(id);
  };

  // Seeds: ε, S, and α* derive words immediately.
  for (size_t id = 0; id < nodes.size(); ++id) {
    Regex::Kind kind = nodes[id].kind;
    if (kind == Regex::Kind::kEpsilon || kind == Regex::Kind::kString ||
        kind == Regex::Kind::kStar) {
      mark_derivable(static_cast<int>(id));
    }
  }

  auto on_type_productive = [&](const std::string& type) {
    if (type == banned) return;
    if (!productive.insert(type).second) return;
    auto it = elem_leaves.find(type);
    if (it == elem_leaves.end()) return;
    for (int leaf : it->second) mark_derivable(leaf);
  };

  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    const AstNode& node = nodes[id];
    if (node.is_content_root) on_type_productive(node.owner);
    int parent = node.parent;
    if (parent < 0) continue;
    if (nodes[parent].kind == Regex::Kind::kUnion) {
      mark_derivable(parent);
    } else {  // kConcat
      if (--nodes[parent].pending == 0) mark_derivable(parent);
    }
  }
  return productive;
}

}  // namespace

std::set<std::string> ProductiveElements(const Dtd& dtd) {
  return ProductiveImpl(dtd, /*banned=*/"");
}

bool DtdHasValidTree(const Dtd& dtd) {
  return ProductiveElements(dtd).count(dtd.root()) > 0;
}

std::set<std::string> ReachableElements(const Dtd& dtd) {
  std::set<std::string> reachable;
  std::deque<std::string> queue;
  reachable.insert(dtd.root());
  queue.push_back(dtd.root());

  std::function<void(const Regex&, std::deque<std::string>*,
                     std::set<std::string>*)>
      visit = [&](const Regex& node, std::deque<std::string>* q,
                  std::set<std::string>* seen) {
        switch (node.kind()) {
          case Regex::Kind::kElement:
            if (seen->insert(node.name()).second) q->push_back(node.name());
            break;
          case Regex::Kind::kUnion:
          case Regex::Kind::kConcat:
            visit(*node.left(), q, seen);
            visit(*node.right(), q, seen);
            break;
          case Regex::Kind::kStar:
            visit(*node.child(), q, seen);
            break;
          default:
            break;
        }
      };

  while (!queue.empty()) {
    std::string type = queue.front();
    queue.pop_front();
    visit(*dtd.ContentOf(type), &queue, &reachable);
  }
  return reachable;
}

namespace {

/// Lattice for occurrence counting: kBottom (< 0) means "derives no tree";
/// otherwise the max number of `target` elements in one derivable tree,
/// saturated at 2.
constexpr int kBottom = -1;

int SatAdd(int a, int b) {
  if (a == kBottom || b == kBottom) return kBottom;
  return std::min(2, a + b);
}

}  // namespace

Multiplicity MaxMultiplicity(const Dtd& dtd, const std::string& type) {
  // Worklist fixpoint over element values: elem_val(σ) = [σ == type] +
  // val(P(σ)), with regex values per the lattice kBottom < 0 < 1 < 2.
  // Values only increase and are drawn from a 4-element chain, so the total
  // number of recomputations is linear in |D| — this is what keeps the
  // Lemma 3.6 / Theorem 3.5(3) analyses linear on deep grammars.
  struct AstNode {
    Regex::Kind kind;
    int left = -1;
    int right = -1;
    std::string elem;
    int parent = -1;
    std::string owner;
    bool is_content_root = false;
    int value = kBottom;
  };

  std::vector<AstNode> nodes;
  std::map<std::string, std::vector<int>> elem_leaves;
  std::map<std::string, int> elem_val;
  for (const std::string& e : dtd.elements()) elem_val[e] = kBottom;

  std::function<int(const Regex&, const std::string&)> build =
      [&](const Regex& regex, const std::string& owner) -> int {
    int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[id].kind = regex.kind();
    nodes[id].owner = owner;
    switch (regex.kind()) {
      case Regex::Kind::kElement:
        nodes[id].elem = regex.name();
        elem_leaves[regex.name()].push_back(id);
        break;
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat: {
        int left = build(*regex.left(), owner);
        int right = build(*regex.right(), owner);
        nodes[id].left = left;
        nodes[id].right = right;
        nodes[left].parent = id;
        nodes[right].parent = id;
        break;
      }
      case Regex::Kind::kStar: {
        int child = build(*regex.child(), owner);
        nodes[id].left = child;
        nodes[child].parent = id;
        break;
      }
      default:
        break;
    }
    return id;
  };
  std::map<std::string, int> content_root;
  for (const std::string& e : dtd.elements()) {
    int root = build(*dtd.ContentOf(e), e);
    nodes[root].is_content_root = true;
    content_root[e] = root;
  }

  std::deque<int> queue;
  // Recomputes a node's value from its inputs; enqueues on increase.
  auto refresh = [&](int id) {
    AstNode& node = nodes[id];
    int value = node.value;
    switch (node.kind) {
      case Regex::Kind::kEpsilon:
      case Regex::Kind::kString:
        value = 0;
        break;
      case Regex::Kind::kElement:
        value = elem_val[node.elem];
        break;
      case Regex::Kind::kUnion:
        value = std::max(nodes[node.left].value, nodes[node.right].value);
        break;
      case Regex::Kind::kConcat:
        value = SatAdd(nodes[node.left].value, nodes[node.right].value);
        break;
      case Regex::Kind::kStar:
        value = nodes[node.left].value >= 1 ? 2 : 0;
        break;
    }
    if (value > node.value) {
      node.value = value;
      queue.push_back(id);
    }
  };
  for (size_t id = 0; id < nodes.size(); ++id) {
    refresh(static_cast<int>(id));
  }

  auto on_type_update = [&](const std::string& e) {
    int root_value = nodes[content_root[e]].value;
    int value = root_value == kBottom
                    ? kBottom
                    : SatAdd(root_value, e == type ? 1 : 0);
    if (value > elem_val[e]) {
      elem_val[e] = value;
      auto it = elem_leaves.find(e);
      if (it != elem_leaves.end()) {
        for (int leaf : it->second) refresh(leaf);
      }
    }
  };

  while (!queue.empty()) {
    int id = queue.front();
    queue.pop_front();
    if (nodes[id].is_content_root) on_type_update(nodes[id].owner);
    if (nodes[id].parent >= 0) refresh(nodes[id].parent);
  }

  int result = elem_val[dtd.root()];
  if (result <= 0) return Multiplicity::kNone;
  if (result == 1) return Multiplicity::kExactlyOne;
  return Multiplicity::kAtLeastTwo;
}

bool CanHaveTwo(const Dtd& dtd, const std::string& type) {
  return MaxMultiplicity(dtd, type) == Multiplicity::kAtLeastTwo;
}

bool TypeIsUnavoidable(const Dtd& dtd, const std::string& type) {
  if (!DtdHasValidTree(dtd)) return false;
  // The root derives a type-free tree iff the root is productive in the
  // grammar where `type` is banned.
  std::set<std::string> avoiding = ProductiveImpl(dtd, type);
  return avoiding.count(dtd.root()) == 0;
}

}  // namespace xicc
